#!/usr/bin/env python
"""Prove the streaming replay's O(live objects) memory claim under ulimit.

The CI streaming job runs this script.  It manufactures one large cfrac
trace, measures the address-space peak of three child processes — one
replaying the v3 file through :func:`repro.runtime.tracefile.
open_trace_stream`, one replaying through the sharded
:class:`~repro.runtime.shard.ShardedTraceSource` (``jobs=2``), and one
materializing with :func:`load_trace` first — and then derives a hard
``RLIMIT_AS`` cap *between* the streamed and materialized peaks
(midpoint above the larger streamed figure).  Under that cap both
streamed replays must succeed and the materialized replay must die: the
cap is sized below the materialized footprint, so only replays that
never hold the whole trace can fit.  This is the sharded path's memory
proof — its O(live objects + jobs chunks) model must stay on the
streaming side of the cap, not drift toward materializing.

The cap is self-calibrated rather than hard-coded because the
interpreter's baseline address space varies across Python builds; the
``--margin-kb`` floor on the streaming/materialized separation is what
keeps the proof honest (if the two peaks ever converge, the run fails
loudly instead of testing nothing).

``RLIMIT_AS`` bounds *virtual* address space, so the children report
``VmPeak`` from ``/proc/self/status`` (the quantity the limit acts on)
alongside ``ru_maxrss`` for the metrics artifact.  Linux-only; elsewhere
the script exits 0 with a notice so local runs on other platforms do not
fail spuriously.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

#: Minimum required separation between the streaming and materialized
#: address-space peaks.  Well under the ~40 MB a scale-20 cfrac trace's
#: arrays cost, well over measurement noise.
DEFAULT_MARGIN_KB = 8 * 1024

DEFAULT_SCALE = 20.0

#: Chunk size for the smoke trace.  Smaller than the writer's default so
#: the sharded reader's in-flight window (``jobs + 1`` chunks) stays far
#: below the midpoint cap — the proof should bound the *model*, not be
#: won or lost on one chunk-size constant.
SMOKE_CHUNK_EVENTS = 8192

#: Worker count for the sharded replay child.
SHARD_JOBS = 2


def vm_peak_kb() -> int:
    """This process's peak virtual size in KB, from /proc/self/status."""
    with open("/proc/self/status", encoding="ascii") as fh:
        for line in fh:
            if line.startswith("VmPeak:"):
                return int(line.split()[1])
    raise RuntimeError("no VmPeak in /proc/self/status")


def child(mode: str, trace_path: str, limit_bytes: int) -> int:
    """Replay ``trace_path`` (streamed or materialized) and report peaks."""
    import resource

    if limit_bytes:
        resource.setrlimit(resource.RLIMIT_AS, (limit_bytes, limit_bytes))

    from repro.alloc.firstfit import FirstFitAllocator
    from repro.analysis.simulate import replay
    from repro.obs.metrics import peak_rss_kb
    from repro.runtime.tracefile import load_trace, open_trace_stream

    if mode == "stream":
        source = open_trace_stream(trace_path)
        replay(source, FirstFitAllocator())
    elif mode == "shard":
        from repro.runtime.shard import ShardedTraceSource

        replay(ShardedTraceSource(trace_path, jobs=SHARD_JOBS),
               FirstFitAllocator())
    else:
        replay(load_trace(trace_path), FirstFitAllocator())
    print(json.dumps(
        {"vm_peak_kb": vm_peak_kb(), "peak_rss_kb": peak_rss_kb()}
    ))
    return 0


def run_child(mode: str, trace_path: Path, limit_bytes: int = 0):
    """Run one measured replay child; returns (exit code, peaks or None).

    ``MALLOC_ARENA_MAX=1`` pins glibc to one malloc arena in every
    child: the process pool's helper threads would otherwise trigger
    ~64 MB virtual arena *reservations* per thread, which RLIMIT_AS
    counts even though no page is ever touched — drowning the data
    footprint the proof is about.  Applied uniformly so all three
    modes calibrate on the same allocator configuration.
    """
    proc = subprocess.run(
        [sys.executable, __file__, "--child", mode,
         "--trace", str(trace_path), "--limit-bytes", str(limit_bytes)],
        capture_output=True,
        text=True,
        env={**os.environ, "PYTHONPATH": str(SRC),
             "MALLOC_ARENA_MAX": "1"},
    )
    peaks = None
    if proc.returncode == 0:
        peaks = json.loads(proc.stdout.strip().splitlines()[-1])
    return proc.returncode, peaks, proc.stderr


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--program", default="cfrac")
    parser.add_argument("--dataset", default="test")
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    parser.add_argument("--margin-kb", type=int, default=DEFAULT_MARGIN_KB,
                        help="required streaming/materialized VmPeak "
                             f"separation (default {DEFAULT_MARGIN_KB})")
    parser.add_argument("--artifact", default=None, metavar="PATH",
                        help="write the measured peaks here as JSON")
    # Internal: re-exec modes for the measured children.
    parser.add_argument("--child", choices=["stream", "shard", "load"],
                        default=None)
    parser.add_argument("--trace", default=None)
    parser.add_argument("--limit-bytes", type=int, default=0)
    args = parser.parse_args()

    if args.child:
        return child(args.child, args.trace, args.limit_bytes)

    if not sys.platform.startswith("linux"):
        print("streaming smoke: requires /proc and RLIMIT_AS; skipping "
              f"on {sys.platform}")
        return 0

    from repro.runtime.stream.protocol import TraceEventSource
    from repro.runtime.stream.v3 import write_trace_v3
    from repro.workloads.registry import run_workload

    with tempfile.TemporaryDirectory(prefix="streaming-smoke-") as tmp:
        trace_path = Path(tmp) / "smoke.rtr3"
        print(f"tracing {args.program}/{args.dataset} at scale "
              f"{args.scale:g} ...")
        trace = run_workload(args.program, args.dataset, scale=args.scale)
        write_trace_v3(TraceEventSource(trace), trace_path,
                       chunk_events=SMOKE_CHUNK_EVENTS)
        size_kb = trace_path.stat().st_size // 1024
        print(f"  {trace.total_objects} objects, {trace.event_count} "
              f"events -> {trace_path.name} ({size_kb} KB)")

        # Calibration: the three replays' uncapped address-space peaks.
        code, stream_peaks, err = run_child("stream", trace_path)
        if code != 0:
            print(f"streaming replay failed uncapped:\n{err}")
            return 1
        code, shard_peaks, err = run_child("shard", trace_path)
        if code != 0:
            print(f"sharded replay failed uncapped:\n{err}")
            return 1
        code, load_peaks, err = run_child("load", trace_path)
        if code != 0:
            print(f"materialized replay failed uncapped:\n{err}")
            return 1
        stream_vm = stream_peaks["vm_peak_kb"]
        shard_vm = shard_peaks["vm_peak_kb"]
        load_vm = load_peaks["vm_peak_kb"]
        base_vm = max(stream_vm, shard_vm)
        delta = load_vm - base_vm
        print(f"  VmPeak streaming {stream_vm} KB, sharded (jobs="
              f"{SHARD_JOBS}) {shard_vm} KB, materialized {load_vm} KB "
              f"(delta {delta} KB)")
        if delta < args.margin_kb:
            print(f"FAIL: separation {delta} KB < required "
                  f"{args.margin_kb} KB — the streamed paths are not "
                  f"meaningfully smaller than materializing")
            return 1

        # The proof: a cap halfway between the peaks admits exactly the
        # streamed replays (serial and sharded), not the materialized one.
        cap_kb = base_vm + delta // 2
        print(f"  capping RLIMIT_AS at {cap_kb} KB (midpoint)")
        stream_code, capped_peaks, err = run_child(
            "stream", trace_path, cap_kb * 1024
        )
        if stream_code != 0:
            print(f"FAIL: streaming replay died under the cap:\n{err}")
            return 1
        shard_code, capped_shard_peaks, err = run_child(
            "shard", trace_path, cap_kb * 1024
        )
        if shard_code != 0:
            print(f"FAIL: sharded replay died under the cap:\n{err}")
            return 1
        load_code, _, _ = run_child("load", trace_path, cap_kb * 1024)
        if load_code == 0:
            print("FAIL: materialized replay fit under a cap sized below "
                  "its own measured footprint")
            return 1
        print(f"  under cap: streaming OK "
              f"(VmPeak {capped_peaks['vm_peak_kb']} KB), sharded OK "
              f"(VmPeak {capped_shard_peaks['vm_peak_kb']} KB), "
              f"materialized load died as expected (exit {load_code})")

        if args.artifact:
            artifact = {
                "program": args.program,
                "dataset": args.dataset,
                "scale": args.scale,
                "trace_file_kb": size_kb,
                "total_objects": trace.total_objects,
                "event_count": trace.event_count,
                "stream_vm_peak_kb": stream_vm,
                "stream_peak_rss_kb": stream_peaks["peak_rss_kb"],
                "shard_jobs": SHARD_JOBS,
                "shard_vm_peak_kb": shard_vm,
                "shard_peak_rss_kb": shard_peaks["peak_rss_kb"],
                "load_vm_peak_kb": load_vm,
                "load_peak_rss_kb": load_peaks["peak_rss_kb"],
                "separation_kb": delta,
                "rlimit_as_cap_kb": cap_kb,
                "capped_stream_vm_peak_kb": capped_peaks["vm_peak_kb"],
                "capped_shard_vm_peak_kb":
                    capped_shard_peaks["vm_peak_kb"],
                "capped_load_exit_code": load_code,
            }
            out = Path(args.artifact)
            if out.parent != Path(""):
                out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(json.dumps(artifact, indent=2, sort_keys=True)
                           + "\n", encoding="utf-8")
            print(f"  metrics -> {out}")

    print("streaming smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
