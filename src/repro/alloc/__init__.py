"""Allocator simulators and the instruction-cost model.

Four allocators back the paper's comparisons:

* :class:`~repro.alloc.firstfit.FirstFitAllocator` — Knuth first-fit with
  boundary tags and a roving pointer (the space baseline).
* :class:`~repro.alloc.bsd.BsdAllocator` — 4.3BSD power-of-two buckets
  (the CPU baseline).
* :class:`~repro.alloc.arena.ArenaAllocator` — the paper's contribution:
  Hanson-style arenas for predicted-short-lived objects over a first-fit
  general heap.

:mod:`repro.alloc.costs` converts each simulator's operation counts into
the instructions-per-operation numbers of Table 9.
"""

from repro.alloc.address_space import AddressSpace
from repro.alloc.arena import (
    DEFAULT_ARENA_SIZE,
    DEFAULT_NUM_ARENAS,
    Arena,
    ArenaAllocator,
)
from repro.alloc.base import Allocator, AllocatorError, OpCounts
from repro.alloc.bsd import BsdAllocator
from repro.alloc.cache import CacheConfig, SetAssociativeCache
from repro.alloc.costs import (
    DEFAULT_COST_MODEL,
    AllocatorCost,
    CostModel,
    arena_cost,
    bsd_cost,
    execution_instructions,
    firstfit_cost,
)
from repro.alloc.firstfit import FirstFitAllocator
from repro.alloc.multiarena import MultiArenaAllocator
from repro.alloc.spec import (
    ALLOCATOR_KINDS,
    BSD_SPEC,
    FIRSTFIT_SPEC,
    PAPER_DEFAULT_SPEC,
    AllocatorSpec,
    SpecError,
    allocator_kinds,
    build_allocator,
    register_kind,
)

__all__ = [
    "AddressSpace",
    "DEFAULT_ARENA_SIZE",
    "DEFAULT_NUM_ARENAS",
    "Arena",
    "ArenaAllocator",
    "Allocator",
    "AllocatorError",
    "OpCounts",
    "BsdAllocator",
    "CacheConfig",
    "SetAssociativeCache",
    "DEFAULT_COST_MODEL",
    "AllocatorCost",
    "CostModel",
    "arena_cost",
    "bsd_cost",
    "execution_instructions",
    "firstfit_cost",
    "FirstFitAllocator",
    "MultiArenaAllocator",
    "ALLOCATOR_KINDS",
    "BSD_SPEC",
    "FIRSTFIT_SPEC",
    "PAPER_DEFAULT_SPEC",
    "AllocatorSpec",
    "SpecError",
    "allocator_kinds",
    "build_allocator",
    "register_kind",
]
