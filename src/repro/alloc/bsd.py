"""4.3BSD-style power-of-two buddy-bucket allocator.

The paper's CPU baseline in Table 9 is the classic Berkeley ``malloc``
(Kingsley's caching allocator): requests are rounded up — including a
small per-object header — to the next power of two, and each power-of-two
class keeps its own LIFO free list.  Allocation pops the bucket's list (or
carves a fresh page from ``sbrk`` when the bucket is empty); free pushes
the object back.  Nothing is ever split, coalesced, or returned to the
system, which makes both operations nearly constant-time but wastes up to
half of every object's space — the classic speed-for-space trade.

The simulator reproduces that placement policy exactly, so its operation
counters (bucket pops, page carves) drive the cost model, and its break
high-water mark shows the space cost next to first-fit's.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.alloc.address_space import AddressSpace
from repro.alloc.base import Allocator, AllocatorError
from repro.core.sites import CallChain

__all__ = ["BsdAllocator", "BSD_HEADER_SIZE", "MIN_BUCKET", "PAGE_SIZE"]

#: Per-object header holding the bucket index (historic ``union overhead``).
BSD_HEADER_SIZE = 4
#: Smallest object class: 2^4 = 16 bytes, as in 4.3BSD on 32-bit machines.
MIN_BUCKET = 4
#: Page carved from the system per empty-bucket refill.
PAGE_SIZE = 4096


def bucket_for(size: int) -> int:
    """Bucket index whose block size 2^index fits ``size`` plus header."""
    if size <= 0:
        raise AllocatorError(f"allocation size must be positive, got {size}")
    need = size + BSD_HEADER_SIZE
    bucket = MIN_BUCKET
    while (1 << bucket) < need:
        bucket += 1
    return bucket


class BsdAllocator(Allocator):
    """Kingsley/4.3BSD power-of-two segregated free-list allocator."""

    name = "bsd"

    def __init__(self, base: int = 0):
        super().__init__()
        # BSD requests whole pages from the system; model that directly.
        self.space = AddressSpace(base=base, increment=PAGE_SIZE)
        self._free: Dict[int, List[int]] = {}  # bucket -> LIFO of addresses
        self._allocated: Dict[int, int] = {}  # addr -> (bucket, req size)
        self._req_sizes: Dict[int, int] = {}
        self._live_bytes = 0
        # Telemetry gauges: total free blocks across buckets and the
        # power-of-two bytes occupied by live objects.
        self._free_blocks = 0
        self._block_bytes_live = 0

    def malloc(self, size: int, chain: Optional[CallChain] = None) -> int:
        self.ops.allocs += 1
        self.ops.bytes_requested += size
        bucket = bucket_for(size)
        stack = self._free.setdefault(bucket, [])
        if not stack:
            self._refill(bucket)
        addr = stack.pop()
        self._free_blocks -= 1
        self._block_bytes_live += 1 << bucket
        self._allocated[addr] = bucket
        self._req_sizes[addr] = size
        self._live_bytes += size
        user_addr = addr + BSD_HEADER_SIZE
        if self.probe is not None:
            self.probe.on_alloc(user_addr, size, chain, "unpredicted")
        return user_addr

    def free(self, addr: int) -> None:
        base_addr = addr - BSD_HEADER_SIZE
        bucket = self._allocated.pop(base_addr, None)
        if bucket is None:
            raise AllocatorError(f"free of unknown address {addr}")
        self.ops.frees += 1
        self._live_bytes -= self._req_sizes.pop(base_addr)
        self._free[bucket].append(base_addr)
        self._free_blocks += 1
        self._block_bytes_live -= 1 << bucket
        if self.probe is not None:
            self.probe.on_free(addr)

    def _refill(self, bucket: int) -> None:
        """Carve a page (or one block, if larger) into bucket-size pieces."""
        self.ops.sbrks += 1
        block_size = 1 << bucket
        chunk = max(block_size, PAGE_SIZE)
        start = self.space.sbrk(chunk)
        stack = self._free[bucket]
        for addr in range(start, start + chunk, block_size):
            stack.append(addr)
            self._free_blocks += 1

    @property
    def max_heap_size(self) -> int:
        return self.space.max_heap_size

    @property
    def live_bytes(self) -> int:
        return self._live_bytes

    def telemetry_snapshot(self) -> dict:
        """Bucket-heap gauges.

        ``internal_frag`` is the classic power-of-two waste: live blocks'
        rounded size (header included) minus the bytes actually requested,
        as a fraction of the heap extent.  ``external_frag`` is the bytes
        sitting on free lists as a fraction of the extent.
        """
        extent = self.space.brk - self.space.base
        free_bytes = extent - self._block_bytes_live
        return {
            "heap_size": extent,
            "max_heap_size": self.space.max_heap_size,
            "live_bytes": self._live_bytes,
            "used_blocks": len(self._allocated),
            "free_blocks": self._free_blocks,
            "free_bytes": free_bytes,
            "external_frag": _frac(free_bytes, extent),
            "internal_frag": _frac(
                self._block_bytes_live - self._live_bytes, extent
            ),
        }

    def check_invariants(self) -> None:
        """Every block is either allocated or on exactly one free list."""
        total_free = sum(len(stack) for stack in self._free.values())
        if total_free != self._free_blocks:
            raise AllocatorError(
                f"free-block gauge stale: counted {self._free_blocks}, "
                f"lists hold {total_free}"
            )
        seen = set()
        for bucket, stack in self._free.items():
            block_size = 1 << bucket
            for addr in stack:
                if addr in seen:
                    raise AllocatorError(f"block {addr} on a free list twice")
                seen.add(addr)
                if addr + block_size > self.space.brk:
                    raise AllocatorError(f"free block {addr} beyond break")
        for addr in self._allocated:
            if addr in seen:
                raise AllocatorError(f"block {addr} both free and allocated")


def _frac(numerator: int, denominator: int) -> float:
    if denominator == 0:
        return 0.0
    return round(numerator / denominator, 6)
