"""Multi-class arena allocator — the future-work extension allocator.

Pairs with :class:`~repro.core.multiclass.MultiClassPredictor`: one arena
area per lifetime class, each sized to its class threshold the way the
paper sizes its single 64 KB area to the 32 KB cutoff ("twice the age of
the objects predicted as short-lived", §5.2), each divided into blocked
arenas for the same pollution-containment reason.

Objects predicted into class *i* bump-allocate in area *i*; everything
else — and every class-area overflow — falls through to the same general
first-fit heap the paper's allocator uses.  With a single class this is
behaviourally identical to :class:`~repro.alloc.arena.ArenaAllocator`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.alloc.arena import ARENA_ALIGNMENT, Arena
from repro.alloc.base import Allocator, AllocatorError
from repro.alloc.firstfit import FirstFitAllocator
from repro.core.multiclass import MultiClassPredictor
from repro.core.sites import CallChain

__all__ = ["MultiArenaAllocator", "AreaStats"]

#: Each class area is this multiple of its class threshold (the paper's
#: 64 KB = 2 x 32 KB sizing rule).
AREA_SCALE = 2
#: Arenas per class area (the paper's blocking factor).
ARENAS_PER_AREA = 16


def _aligned(size: int) -> int:
    return ((size + ARENA_ALIGNMENT - 1) // ARENA_ALIGNMENT) * ARENA_ALIGNMENT


class AreaStats:
    """Capture counters for one class's arena area."""

    __slots__ = ("allocs", "bytes", "overflows")

    def __init__(self) -> None:
        self.allocs = 0
        self.bytes = 0
        self.overflows = 0


class _Area:
    """One class's arena area: blocked arenas plus a current pointer."""

    def __init__(self, base: int, num_arenas: int, arena_size: int):
        self.base = base
        self.arena_size = arena_size
        self.arenas = [
            Arena(base + i * arena_size, arena_size) for i in range(num_arenas)
        ]
        self.limit = base + num_arenas * arena_size
        self._current = 0

    @property
    def size(self) -> int:
        """Total bytes reserved for this area."""
        return self.limit - self.base

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.limit

    def malloc(self, size: int, allocator: "MultiArenaAllocator") -> Optional[int]:
        """§5.1's algorithm: current arena, else scan for a dead one."""
        if _aligned(size) > self.arena_size:
            return None
        current = self.arenas[self._current]
        if current.fits(size):
            return current.bump(size)
        for index, arena in enumerate(self.arenas):
            allocator.ops.arenas_scanned += 1
            if arena.count == 0:
                arena.reset()
                allocator.ops.arena_resets += 1
                self._current = index
                return arena.bump(size)
        return None

    def free(self, addr: int) -> None:
        index = (addr - self.base) // self.arena_size
        self.arenas[index].release(addr)

    @property
    def live_bytes(self) -> int:
        return sum(arena.live_bytes for arena in self.arenas)

    def check(self) -> None:
        for arena in self.arenas:
            if arena.count != len(arena._live):
                raise AllocatorError(
                    f"arena at {arena.base}: count {arena.count} != "
                    f"{len(arena._live)} live objects"
                )


class MultiArenaAllocator(Allocator):
    """Class-laddered arena allocation over a first-fit general heap."""

    name = "multi-arena"

    def __init__(
        self,
        predictor: MultiClassPredictor,
        arenas_per_area: int = ARENAS_PER_AREA,
        area_scale: int = AREA_SCALE,
        base: int = 0,
    ):
        super().__init__()
        if arenas_per_area < 1:
            raise AllocatorError(
                f"need at least one arena per area, got {arenas_per_area}"
            )
        self.predictor = predictor
        self.areas: List[_Area] = []
        self.area_stats: List[AreaStats] = []
        cursor = base
        for threshold in predictor.thresholds:
            area_size = area_scale * threshold
            arena_size = max(ARENA_ALIGNMENT, area_size // arenas_per_area)
            area = _Area(cursor, arenas_per_area, arena_size)
            self.areas.append(area)
            self.area_stats.append(AreaStats())
            cursor = area.limit
        self._areas_limit = cursor
        self._general = FirstFitAllocator(base=cursor)
        self.general_bytes = 0

    @property
    def general(self) -> FirstFitAllocator:
        """The general-purpose heap behind the class areas."""
        return self._general

    @property
    def total_area_size(self) -> int:
        """Bytes reserved for all class areas together."""
        return sum(area.size for area in self.areas)

    # ------------------------------------------------------------------
    # Allocation and deallocation
    # ------------------------------------------------------------------

    def malloc(self, size: int, chain: Optional[CallChain] = None) -> int:
        if size <= 0:
            raise AllocatorError(f"allocation size must be positive, got {size}")
        self.ops.allocs += 1
        self.ops.bytes_requested += size
        placement = "unpredicted"
        if chain is not None:
            self.ops.predictions += 1
            klass = self.predictor.class_of(chain, size)
            if klass is not None:
                if klass == 0:
                    self.ops.predicted_short += 1
                addr = self.areas[klass].malloc(size, self)
                stats = self.area_stats[klass]
                if addr is not None:
                    self.ops.arena_allocs += 1
                    stats.allocs += 1
                    stats.bytes += size
                    if self.probe is not None:
                        self.probe.on_alloc(addr, size, chain, "arena")
                    return addr
                stats.overflows += 1
                self.ops.arena_overflows += 1
                placement = "overflow"
            else:
                placement = "general"
        self.general_bytes += size
        addr = self._general.malloc(size, chain)
        if self.probe is not None:
            self.probe.on_alloc(addr, size, chain, placement)
        return addr

    def free(self, addr: int) -> None:
        self.ops.frees += 1
        if addr < self._areas_limit:
            for area in self.areas:
                if area.contains(addr):
                    area.free(addr)
                    self.ops.arena_frees += 1
                    if self.probe is not None:
                        self.probe.on_free(addr)
                    return
            raise AllocatorError(f"free of unmapped area address {addr}")
        self._general.free(addr)
        self._general.ops.frees -= 1  # counted once, on this allocator
        if self.probe is not None:
            self.probe.on_free(addr)

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------

    @property
    def max_heap_size(self) -> int:
        """General-heap high-water mark plus every class area."""
        return self.total_area_size + self._general.max_heap_size

    @property
    def live_bytes(self) -> int:
        return self._general.live_bytes + sum(
            area.live_bytes for area in self.areas
        )

    @property
    def arena_bytes(self) -> int:
        """Bytes served from any class area."""
        return sum(stats.bytes for stats in self.area_stats)

    def telemetry_snapshot(self) -> dict:
        """General-heap gauges plus per-class area occupancy/overflows."""
        snapshot = self._general.telemetry_snapshot()
        total_area = self.total_area_size
        occupied = 0
        live = 0
        areas = []
        for index, (area, stats) in enumerate(zip(self.areas, self.area_stats)):
            used = sum(arena.used for arena in area.arenas)
            area_live = area.live_bytes
            occupied += used
            live += area_live
            areas.append({
                "class": index,
                "occupancy": round(used / area.size, 6) if area.size else 0.0,
                "live_arenas": sum(1 for a in area.arenas if a.count),
                "live_bytes": area_live,
                "allocs": stats.allocs,
                "overflows": stats.overflows,
            })
        snapshot.update({
            "heap_size": total_area + snapshot["heap_size"],
            "max_heap_size": self.max_heap_size,
            "live_bytes": live + snapshot["live_bytes"],
            "arena_occupancy": (
                round(occupied / total_area, 6) if total_area else 0.0
            ),
            "arena_live_arenas": sum(a["live_arenas"] for a in areas),
            "arena_live_bytes": live,
            "arena_overflows": self.ops.arena_overflows,
            "arena_resets": self.ops.arena_resets,
            "areas": areas,
        })
        return snapshot

    def check_invariants(self) -> None:
        for area in self.areas:
            area.check()
        self._general.check_invariants()
