"""Declarative allocator specifications and the construction registry.

The paper fixes one allocator shape — 16 x 4 KB arenas, a 32 KB
short-lived cutoff, size rounding of four — and every consumer used to
re-plumb those numbers through its own constructor arguments.  An
:class:`AllocatorSpec` lifts the whole configuration surface into one
typed, validated, JSON-serializable value:

* **kind** — which simulator (``arena``, ``firstfit``, ``bsd``,
  ``multiarena``);
* **geometry** — ``num_arenas`` x ``arena_size`` for the arena area;
* **prediction** — ``threshold``, ``size_rounding``, ``chain_length``
  (the CCE depth when finite), ``predictor`` resolution mode, and the
  ``class_thresholds`` ladder for the multi-class extension;
* **costing** — the ``strategy`` (``len4``/``cce``) Table 9 prices
  chain identification under.

Specs round-trip through JSON (:meth:`AllocatorSpec.to_json` /
:meth:`AllocatorSpec.from_json`), validate on construction with
actionable errors, and hash canonically (:meth:`AllocatorSpec.spec_hash`)
so result sessions can pin exactly which configuration produced them.
Construction goes through the registry: :func:`build_allocator` looks up
the spec's kind and hands back a ready simulator, which is the single
construction path `analysis`, `bench`, `obs`, and `search` share.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace
from typing import Callable, Dict, Optional, Tuple

from repro.alloc.arena import (
    ARENA_ALIGNMENT,
    DEFAULT_ARENA_SIZE,
    DEFAULT_NUM_ARENAS,
    ArenaAllocator,
)
from repro.alloc.base import Allocator, AllocatorError
from repro.alloc.bsd import BsdAllocator
from repro.alloc.firstfit import FirstFitAllocator
from repro.alloc.multiarena import MultiArenaAllocator

__all__ = [
    "ALLOCATOR_KINDS",
    "PREDICTOR_MODES",
    "STRATEGIES",
    "AllocatorSpec",
    "SpecError",
    "PAPER_DEFAULT_SPEC",
    "FIRSTFIT_SPEC",
    "BSD_SPEC",
    "build_allocator",
    "register_kind",
    "allocator_kinds",
]

#: How a spec's predictor is resolved (by :meth:`TraceStore.predictor_for`):
#: ``trained`` profiles the train execution (true prediction), ``self``
#: profiles the evaluation execution itself, ``static`` derives the
#: escape-analysis predictor from source, ``cce`` trains the encrypted-
#: chain predictor, ``none`` runs without one (everything general-heap).
PREDICTOR_MODES = ("trained", "self", "static", "cce", "none")

#: Chain-identification cost strategies (Table 9's two arena columns).
STRATEGIES = ("len4", "cce")

#: Paper defaults for the prediction parameters, restated here so the
#: spec module does not import :mod:`repro.core` (allocators must stay
#: importable without the predictor layer).
_DEFAULT_THRESHOLD = 32 * 1024
_DEFAULT_SIZE_ROUNDING = 4


class SpecError(ValueError):
    """An allocator spec failed validation or deserialization."""


@dataclass(frozen=True)
class AllocatorSpec:
    """One allocator configuration, declaratively.

    Every field has the paper's default, so ``AllocatorSpec()`` *is* the
    paper's arena allocator.  Validation runs on construction — an
    invalid spec cannot exist — and :func:`dataclasses.replace` re-runs
    it, so mutated copies stay checked.
    """

    kind: str = "arena"
    num_arenas: int = DEFAULT_NUM_ARENAS
    arena_size: int = DEFAULT_ARENA_SIZE
    threshold: int = _DEFAULT_THRESHOLD
    size_rounding: int = _DEFAULT_SIZE_ROUNDING
    #: Sub-chain length the predictor keys on; ``None`` is the full
    #: (cycle-pruned) chain.  Finite values are the CCE depth axis.
    chain_length: Optional[int] = None
    #: Multi-class lifetime ladder; only ``kind="multiarena"`` uses it.
    class_thresholds: Tuple[int, ...] = field(default_factory=tuple)
    predictor: str = "trained"
    strategy: str = "len4"

    def __post_init__(self):
        object.__setattr__(
            self, "class_thresholds", tuple(self.class_thresholds)
        )
        self.validate()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`SpecError` with an actionable message if invalid."""
        if self.kind not in _REGISTRY:
            raise SpecError(
                f"unknown allocator kind {self.kind!r}; "
                f"expected one of {', '.join(allocator_kinds())}"
            )
        self._require_int("num_arenas", self.num_arenas, minimum=1)
        self._require_int(
            "arena_size", self.arena_size, minimum=ARENA_ALIGNMENT
        )
        self._require_int("threshold", self.threshold, minimum=1)
        self._require_int("size_rounding", self.size_rounding, minimum=1)
        if self.chain_length is not None:
            self._require_int("chain_length", self.chain_length, minimum=1)
        if self.predictor not in PREDICTOR_MODES:
            raise SpecError(
                f"unknown predictor mode {self.predictor!r}; "
                f"expected one of {', '.join(PREDICTOR_MODES)}"
            )
        if self.strategy not in STRATEGIES:
            raise SpecError(
                f"unknown cost strategy {self.strategy!r}; "
                f"expected one of {', '.join(STRATEGIES)}"
            )
        for value in self.class_thresholds:
            self._require_int("class_thresholds entry", value, minimum=1)
        ladder = self.class_thresholds
        if ladder and list(ladder) != sorted(set(ladder)):
            raise SpecError(
                f"class_thresholds must be strictly increasing, "
                f"got {ladder}"
            )
        if self.kind == "multiarena":
            if not ladder:
                raise SpecError(
                    "kind 'multiarena' needs a class_thresholds ladder, "
                    "e.g. (32768, 262144); for a single class use "
                    "kind 'arena'"
                )
            if self.predictor not in ("trained", "self"):
                raise SpecError(
                    f"kind 'multiarena' needs a profiled class predictor; "
                    f"set predictor to 'trained' or 'self', "
                    f"not {self.predictor!r}"
                )
        elif ladder:
            raise SpecError(
                f"class_thresholds only applies to kind 'multiarena'; "
                f"drop it from this {self.kind!r} spec"
            )
        if self.kind in ("firstfit", "bsd"):
            if self.predictor != "none":
                raise SpecError(
                    f"kind {self.kind!r} takes no predictor; "
                    f"set predictor='none'"
                )
            if self.strategy != "len4":
                raise SpecError(
                    f"strategy {self.strategy!r} only prices arena chain "
                    f"identification; a {self.kind!r} spec must keep the "
                    f"default 'len4'"
                )

    @staticmethod
    def _require_int(name: str, value, minimum: int) -> None:
        if isinstance(value, bool) or not isinstance(value, int):
            raise SpecError(
                f"{name} must be an integer >= {minimum}, "
                f"got {value!r} ({type(value).__name__})"
            )
        if value < minimum:
            raise SpecError(
                f"{name} must be >= {minimum}, got {value}"
            )

    # ------------------------------------------------------------------
    # Canonical form, hashing, JSON round-trip
    # ------------------------------------------------------------------

    def canonical(self) -> "AllocatorSpec":
        """This spec with fields its kind never reads reset to defaults.

        Two specs that build behaviourally identical allocators hash
        identically: a ``bsd`` spec's arena geometry or threshold can't
        change a single replayed byte, so the canonical form erases it.
        """
        if self.kind in ("firstfit", "bsd"):
            return replace(
                self,
                num_arenas=DEFAULT_NUM_ARENAS,
                arena_size=DEFAULT_ARENA_SIZE,
                threshold=_DEFAULT_THRESHOLD,
                size_rounding=_DEFAULT_SIZE_ROUNDING,
                chain_length=None,
            )
        if self.kind == "multiarena":
            # The area ladder is sized from class_thresholds, not from
            # the single-area geometry fields.
            return replace(
                self,
                num_arenas=DEFAULT_NUM_ARENAS,
                arena_size=DEFAULT_ARENA_SIZE,
                threshold=self.class_thresholds[0],
            )
        return self

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready dict with every field, class ladder as a list."""
        return {
            "kind": self.kind,
            "num_arenas": self.num_arenas,
            "arena_size": self.arena_size,
            "threshold": self.threshold,
            "size_rounding": self.size_rounding,
            "chain_length": self.chain_length,
            "class_thresholds": list(self.class_thresholds),
            "predictor": self.predictor,
            "strategy": self.strategy,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "AllocatorSpec":
        """Build and validate a spec from a (possibly partial) dict."""
        if not isinstance(data, dict):
            raise SpecError(
                f"allocator spec must be a JSON object, "
                f"got {type(data).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SpecError(
                f"unknown allocator spec field(s) {', '.join(unknown)}; "
                f"expected a subset of {', '.join(sorted(known))}"
            )
        kwargs = dict(data)
        if "class_thresholds" in kwargs:
            ladder = kwargs["class_thresholds"]
            if not isinstance(ladder, (list, tuple)):
                raise SpecError(
                    f"class_thresholds must be a list of integers, "
                    f"got {ladder!r}"
                )
            kwargs["class_thresholds"] = tuple(ladder)
        return cls(**kwargs)

    def to_json(self) -> str:
        """Deterministic JSON (sorted keys, no whitespace drift)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "AllocatorSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"allocator spec is not valid JSON: {exc}")
        return cls.from_dict(data)

    def spec_hash(self) -> str:
        """12-hex-digit digest of the canonical form (provenance key)."""
        payload = json.dumps(
            self.canonical().to_dict(), sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]

    def describe(self) -> str:
        """A one-line human label (CLI tables, search rankings)."""
        if self.kind in ("firstfit", "bsd"):
            return self.kind
        if self.kind == "multiarena":
            ladder = "/".join(str(t) for t in self.class_thresholds)
            return (
                f"multiarena[{ladder}] x{self.num_arenas} "
                f"pred={self.predictor}"
            )
        chain = "full" if self.chain_length is None else self.chain_length
        return (
            f"arena {self.num_arenas}x{self.arena_size} "
            f"thr={self.threshold} round={self.size_rounding} "
            f"chain={chain} pred={self.predictor} cost={self.strategy}"
        )


# ----------------------------------------------------------------------
# Construction registry
# ----------------------------------------------------------------------

#: kind -> builder(spec, predictor) -> Allocator
AllocatorBuilder = Callable[[AllocatorSpec, Optional[object]], Allocator]

_REGISTRY: Dict[str, AllocatorBuilder] = {}


def register_kind(kind: str):
    """Register a builder for an allocator kind (decorator)."""

    def decorate(builder: AllocatorBuilder) -> AllocatorBuilder:
        _REGISTRY[kind] = builder
        return builder

    return decorate


def allocator_kinds() -> Tuple[str, ...]:
    """Registered kinds in sorted order."""
    return tuple(sorted(_REGISTRY))


def build_allocator(
    spec: AllocatorSpec, predictor: Optional[object] = None
) -> Allocator:
    """Construct the allocator a spec describes.

    ``predictor`` is the *resolved* predictor object (the spec's
    ``predictor`` field only says how a store should resolve one —
    see :meth:`repro.analysis.TraceStore.predictor_for`).  Kinds that
    take no predictor reject one, so a plumbing mistake fails loudly
    instead of silently changing placement.
    """
    builder = _REGISTRY.get(spec.kind)
    if builder is None:
        raise SpecError(
            f"unknown allocator kind {spec.kind!r}; "
            f"expected one of {', '.join(allocator_kinds())}"
        )
    return builder(spec, predictor)


@register_kind("arena")
def _build_arena(
    spec: AllocatorSpec, predictor: Optional[object]
) -> ArenaAllocator:
    return ArenaAllocator(
        predictor, num_arenas=spec.num_arenas, arena_size=spec.arena_size
    )


@register_kind("firstfit")
def _build_firstfit(
    spec: AllocatorSpec, predictor: Optional[object]
) -> FirstFitAllocator:
    if predictor is not None:
        raise SpecError(
            "kind 'firstfit' takes no predictor; build it with "
            "predictor=None"
        )
    return FirstFitAllocator()


@register_kind("bsd")
def _build_bsd(
    spec: AllocatorSpec, predictor: Optional[object]
) -> BsdAllocator:
    if predictor is not None:
        raise SpecError(
            "kind 'bsd' takes no predictor; build it with predictor=None"
        )
    return BsdAllocator()


@register_kind("multiarena")
def _build_multiarena(
    spec: AllocatorSpec, predictor: Optional[object]
) -> MultiArenaAllocator:
    thresholds = getattr(predictor, "thresholds", None)
    if thresholds is None:
        raise SpecError(
            "kind 'multiarena' needs a MultiClassPredictor (an object "
            "with a thresholds ladder); train one with "
            "train_multiclass_predictor and pass it as predictor="
        )
    if tuple(thresholds) != spec.class_thresholds:
        raise SpecError(
            f"predictor ladder {tuple(thresholds)} does not match the "
            f"spec's class_thresholds {spec.class_thresholds}; train the "
            f"predictor with the spec's ladder"
        )
    try:
        return MultiArenaAllocator(predictor)
    except AllocatorError as exc:
        raise SpecError(str(exc))


#: The registered kinds, frozen at import (CLI choices lists).
ALLOCATOR_KINDS = allocator_kinds()

#: The paper's configuration (§5.2): 16 x 4 KB arenas, 32 KB cutoff,
#: size rounding 4, full-chain true prediction, len4 chain costing.
PAPER_DEFAULT_SPEC = AllocatorSpec()

#: The two baseline allocators as specs.
FIRSTFIT_SPEC = AllocatorSpec(kind="firstfit", predictor="none")
BSD_SPEC = AllocatorSpec(kind="bsd", predictor="none")
