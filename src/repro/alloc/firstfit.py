"""First-fit allocator with Knuth's enhancements.

The paper's space baseline (§5.2): "a relatively simple first-fit
algorithm with enhancements described by Knuth" — boundary tags for O(1)
coalescing, a roving pointer so successive searches resume where the last
one stopped (Knuth, TAOCP vol. 1 §2.5), immediate coalescing of freed
blocks with both neighbours, and ``sbrk`` growth when no free block fits.

The simulator keeps full block metadata (address, size, free bit, and the
boundary-tag neighbour maps) so fragmentation and the maximum break are
measured, not modelled.  Each block carries a fixed 8-byte header — the
per-object overhead that arena allocation avoids, which is part of why the
arena allocator wins on space for big heaps (Table 8, GHOST row).

Work accounting: ``blocks_scanned`` counts free-list blocks examined,
``splits`` and ``coalesces`` count block surgery, ``sbrks`` counts heap
growth; :mod:`repro.alloc.costs` converts these to instructions.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.alloc.address_space import DEFAULT_SBRK_INCREMENT, AddressSpace
from repro.alloc.base import Allocator, AllocatorError
from repro.core.sites import CallChain

__all__ = ["FirstFitAllocator", "HEADER_SIZE", "ALIGNMENT", "MIN_BLOCK_SIZE"]

#: Per-block bookkeeping overhead: size word + boundary tag.
HEADER_SIZE = 8
#: Payload alignment, matching a typical 32-bit-era ``malloc``.
ALIGNMENT = 8
#: Smallest block worth splitting off (header + one aligned payload unit).
MIN_BLOCK_SIZE = HEADER_SIZE + ALIGNMENT


def _align(nbytes: int) -> int:
    return ((nbytes + ALIGNMENT - 1) // ALIGNMENT) * ALIGNMENT


class _Block:
    """One contiguous block, allocated or free.

    ``size`` includes the header.  Free blocks are linked into the circular
    free list through ``prev``/``next``.
    """

    __slots__ = ("addr", "size", "free", "prev", "next", "req_size")

    def __init__(self, addr: int, size: int, free: bool):
        self.addr = addr
        self.size = size
        self.free = free
        self.prev: Optional["_Block"] = None
        self.next: Optional["_Block"] = None
        self.req_size = 0  # caller-requested bytes when allocated

    def __repr__(self) -> str:
        state = "free" if self.free else "used"
        return f"<block @{self.addr} size={self.size} {state}>"


class FirstFitAllocator(Allocator):
    """Knuth-style first-fit with boundary tags and a roving pointer."""

    name = "first-fit"

    def __init__(
        self,
        base: int = 0,
        sbrk_increment: int = DEFAULT_SBRK_INCREMENT,
    ):
        super().__init__()
        self.space = AddressSpace(base=base, increment=sbrk_increment)
        self._blocks: Dict[int, _Block] = {}  # by start address
        self._ends: Dict[int, _Block] = {}  # block ending at addr -> block
        self._rover: Optional[_Block] = None  # some free block, or None
        self._live_bytes = 0
        # Telemetry gauges, maintained incrementally so snapshots never
        # walk the heap: count and total size of allocated blocks, and
        # the free-list length.
        self._used_blocks = 0
        self._used_block_bytes = 0
        self._free_blocks = 0

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------

    def malloc(self, size: int, chain: Optional[CallChain] = None) -> int:
        if size <= 0:
            raise AllocatorError(f"allocation size must be positive, got {size}")
        self.ops.allocs += 1
        self.ops.bytes_requested += size
        need = _align(size) + HEADER_SIZE

        block = self._search(need)
        if block is None:
            block = self._grow(need)
        self._allocate_from(block, need, size)
        self._live_bytes += size
        addr = block.addr + HEADER_SIZE
        if self.probe is not None:
            self.probe.on_alloc(addr, size, chain, "unpredicted")
        return addr

    def free(self, addr: int) -> None:
        block = self._blocks.get(addr - HEADER_SIZE)
        if block is None:
            raise AllocatorError(f"free of unknown address {addr}")
        if block.free:
            raise AllocatorError(f"double free at address {addr}")
        self.ops.frees += 1
        self._live_bytes -= block.req_size
        self._used_blocks -= 1
        self._used_block_bytes -= block.size
        block.free = True
        block.req_size = 0
        block = self._coalesce(block)
        if block.next is None:  # not already on the free list via a merge
            self._freelist_insert(block)
        if self.probe is not None:
            self.probe.on_free(addr)

    @property
    def max_heap_size(self) -> int:
        return self.space.max_heap_size

    @property
    def live_bytes(self) -> int:
        return self._live_bytes

    def telemetry_snapshot(self) -> dict:
        """Heap gauges from real block metadata (all O(1) reads).

        * ``external_frag`` — bytes in free blocks as a fraction of the
          heap extent (space the program break covers but no object uses);
        * ``internal_frag`` — header and padding waste *inside* allocated
          blocks (block size minus header minus requested bytes, summed)
          as a fraction of the heap extent.
        """
        extent = self.space.brk - self.space.base
        free_bytes = extent - self._used_block_bytes
        internal_waste = (
            self._used_block_bytes
            - self._used_blocks * HEADER_SIZE
            - self._live_bytes
        )
        return {
            "heap_size": extent,
            "max_heap_size": self.space.max_heap_size,
            "live_bytes": self._live_bytes,
            "used_blocks": self._used_blocks,
            "free_blocks": self._free_blocks,
            "free_bytes": free_bytes,
            "external_frag": _frac(free_bytes, extent),
            "internal_frag": _frac(internal_waste, extent),
            "blocks_scanned": self.ops.blocks_scanned,
        }

    # ------------------------------------------------------------------
    # Search and growth
    # ------------------------------------------------------------------

    def _search(self, need: int) -> Optional[_Block]:
        """First-fit scan from the roving pointer; counts blocks examined."""
        start = self._rover
        if start is None:
            return None
        block = start
        while True:
            self.ops.blocks_scanned += 1
            if block.size >= need:
                return block
            block = block.next
            if block is start:
                return None

    def _grow(self, need: int) -> _Block:
        """Extend the heap so a block of ``need`` bytes exists at the top."""
        self.ops.sbrks += 1
        # If the topmost block is free, sbrk only the shortfall and extend it.
        top = self._ends.get(self.space.brk)
        if top is not None and top.free:
            grow = need - top.size
            old_brk = self.space.sbrk(grow)
            del self._ends[old_brk]
            top.size += self.space.brk - old_brk
            self._ends[top.addr + top.size] = top
            return top
        old_brk = self.space.sbrk(need)
        block = _Block(old_brk, self.space.brk - old_brk, free=True)
        self._blocks[block.addr] = block
        self._ends[block.addr + block.size] = block
        self._freelist_insert(block)
        return block

    def _allocate_from(self, block: _Block, need: int, req_size: int) -> None:
        """Carve ``need`` bytes out of free ``block``, splitting if worthwhile."""
        if not block.free or block.size < need:
            raise AllocatorError(f"internal: cannot allocate from {block!r}")
        remainder = block.size - need
        if remainder >= MIN_BLOCK_SIZE:
            self.ops.splits += 1
            tail = _Block(block.addr + need, remainder, free=True)
            del self._ends[block.addr + block.size]
            block.size = need
            self._ends[block.addr + block.size] = block
            self._blocks[tail.addr] = tail
            self._ends[tail.addr + tail.size] = tail
            # The remainder takes the allocated block's place on the free
            # list, so the roving pointer naturally continues from it.
            self._freelist_replace(block, tail)
        else:
            self._freelist_remove(block)
        block.free = False
        block.req_size = req_size
        self._used_blocks += 1
        self._used_block_bytes += block.size

    # ------------------------------------------------------------------
    # Coalescing (boundary tags)
    # ------------------------------------------------------------------

    def _coalesce(self, block: _Block) -> _Block:
        """Merge ``block`` with free neighbours; returns the surviving block.

        If the left neighbour absorbs ``block`` the survivor is already on
        the free list; otherwise the survivor has no list links yet.
        """
        # Right neighbour.
        right = self._blocks.get(block.addr + block.size)
        if right is not None and right.free:
            self.ops.coalesces += 1
            self._freelist_remove(right)
            del self._blocks[right.addr]
            del self._ends[block.addr + block.size]
            del self._ends[right.addr + right.size]
            block.size += right.size
            self._ends[block.addr + block.size] = block
        # Left neighbour (found through the boundary-tag end map).
        left = self._ends.get(block.addr)
        if left is not None and left.free:
            self.ops.coalesces += 1
            del self._blocks[block.addr]
            del self._ends[left.addr + left.size]
            del self._ends[block.addr + block.size]
            left.size += block.size
            self._ends[left.addr + left.size] = left
            return left
        return block

    # ------------------------------------------------------------------
    # Circular free list with roving pointer
    # ------------------------------------------------------------------

    def _freelist_insert(self, block: _Block) -> None:
        self._free_blocks += 1
        if self._rover is None:
            block.prev = block.next = block
            self._rover = block
            return
        after = self._rover
        block.next = after.next
        block.prev = after
        after.next.prev = block
        after.next = block

    def _freelist_remove(self, block: _Block) -> None:
        self._free_blocks -= 1
        if block.next is block:
            self._rover = None
        else:
            block.prev.next = block.next
            block.next.prev = block.prev
            if self._rover is block:
                self._rover = block.next
        block.prev = block.next = None

    def _freelist_replace(self, old: _Block, new: _Block) -> None:
        if old.next is old:
            new.prev = new.next = new
        else:
            new.prev = old.prev
            new.next = old.next
            old.prev.next = new
            old.next.prev = new
        if self._rover is old:
            self._rover = new
        old.prev = old.next = None

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Full heap audit: coverage, adjacency, free-list consistency."""
        addr = self.space.base
        free_blocks = set()
        used_blocks = 0
        used_block_bytes = 0
        prev_free = False
        while addr < self.space.brk:
            block = self._blocks.get(addr)
            if block is None:
                raise AllocatorError(f"hole or overlap at address {addr}")
            if self._ends.get(addr + block.size) is not block:
                raise AllocatorError(f"end map wrong for {block!r}")
            if block.free:
                if prev_free:
                    raise AllocatorError(
                        f"adjacent free blocks not coalesced at {addr}"
                    )
                free_blocks.add(id(block))
            else:
                used_blocks += 1
                used_block_bytes += block.size
            prev_free = block.free
            addr += block.size
        if addr != self.space.brk:
            raise AllocatorError("blocks overrun the program break")
        if (used_blocks, used_block_bytes) != (
            self._used_blocks, self._used_block_bytes
        ):
            raise AllocatorError(
                f"telemetry gauges stale: {self._used_blocks} blocks/"
                f"{self._used_block_bytes} bytes counted, heap has "
                f"{used_blocks}/{used_block_bytes}"
            )
        # Free list must contain exactly the free blocks, each once.
        seen = set()
        if self._rover is not None:
            block = self._rover
            while True:
                if id(block) in seen:
                    break
                if not block.free:
                    raise AllocatorError(f"allocated block on free list: {block!r}")
                seen.add(id(block))
                block = block.next
        if seen != free_blocks:
            raise AllocatorError(
                f"free list has {len(seen)} blocks, heap has {len(free_blocks)}"
            )
        if len(seen) != self._free_blocks:
            raise AllocatorError(
                f"free-list gauge stale: counted {self._free_blocks}, "
                f"list has {len(seen)}"
            )


def _frac(numerator: int, denominator: int) -> float:
    if denominator == 0:
        return 0.0
    return round(numerator / denominator, 6)
