"""Instruction-cost model for the allocator simulators.

Table 9 of the paper reports *average instructions per allocate and free*
for four allocators.  The paper itself obtained the BSD and first-fit rows
by instruction-profiling real implementations (the QP tool) and the two
arena rows by "computing operation counts ... multiplying them by the
estimated cost per operation".  We apply the second method uniformly: each
simulator counts its operations (:class:`~repro.alloc.base.OpCounts`) and
this module converts counts to instructions using per-operation constants.

Constants follow the paper's stated estimates where it gives them:

* 10 instructions to fetch the length-4 call chain at an allocation (§5.1);
* 18 instructions total to decide whether an allocation is short-lived
  (chain fetch + hash-table probe);
* 3 instructions per function call for call-chain encryption, amortized
  over allocations ("from 9 to 94 instructions per allocation in the
  programs measured");

and are calibrated for the rest so the baseline allocators land in the
ranges the paper measured (BSD ≈ 51-61 per alloc, 17 per free; first-fit
≈ 56-165 per alloc depending on search length, ≈ 57-65 per free).  The
constants are inputs to the model, not results; every conclusion drawn in
EXPERIMENTS.md is about the *comparisons*, which are driven by the
simulators' genuine operation counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alloc.base import OpCounts

__all__ = [
    "CostModel",
    "AllocatorCost",
    "DEFAULT_COST_MODEL",
    "bsd_cost",
    "firstfit_cost",
    "arena_cost",
    "execution_instructions",
]


@dataclass(frozen=True)
class CostModel:
    """Per-operation instruction costs (see module docstring)."""

    # BSD power-of-two allocator.
    bsd_alloc_base: int = 50  # bucket index + list pop + header store
    bsd_refill: int = 220  # page carve, amortized over its blocks
    bsd_free: int = 17  # header load + list push (paper's measured 17)

    # Knuth first-fit.
    ff_alloc_base: int = 40  # entry, alignment, rover load, block setup
    ff_scan: int = 4  # per free-list block examined
    ff_split: int = 14  # carve remainder, fix tags and links
    ff_sbrk: int = 120  # grow heap, build block
    ff_free_base: int = 48  # find header, mark free, list insert
    ff_coalesce: int = 12  # per neighbour merged

    # Lifetime-predicting arena allocator.
    predict: int = 18  # full short-lived test (§5.1 estimate)
    chain4: int = 10  # the length-4 chain fetch inside `predict`
    arena_bump: int = 8  # space check + count++ + pointer bump
    arena_scan: int = 3  # per arena examined while hunting a dead one
    arena_reset: int = 6  # reset pointer + count of a recycled arena
    arena_free: int = 10  # range check + arena index + count--
    cce_per_call: int = 3  # XOR key maintenance per function call

    # Table 2's instruction-count model for whole executions.
    instr_per_call: int = 20  # prologue/epilogue + typical body share
    instr_per_ref: int = 3  # address arithmetic + load/store


DEFAULT_COST_MODEL = CostModel()


@dataclass(frozen=True)
class AllocatorCost:
    """Average instructions per allocation and per free (one Table 9 cell)."""

    allocator: str
    total_alloc_instr: int
    total_free_instr: int
    allocs: int
    frees: int

    @property
    def per_alloc(self) -> float:
        """Average instructions per allocation."""
        return self.total_alloc_instr / self.allocs if self.allocs else 0.0

    @property
    def per_free(self) -> float:
        """Average instructions per free."""
        return self.total_free_instr / self.frees if self.frees else 0.0

    @property
    def per_pair(self) -> float:
        """The paper's "a+f" column: per-alloc plus per-free."""
        return self.per_alloc + self.per_free


def bsd_cost(ops: OpCounts, model: CostModel = DEFAULT_COST_MODEL) -> AllocatorCost:
    """Instruction cost of a BSD-allocator run from its operation counts."""
    alloc = ops.allocs * model.bsd_alloc_base + ops.sbrks * model.bsd_refill
    free = ops.frees * model.bsd_free
    return AllocatorCost("bsd", alloc, free, ops.allocs, ops.frees)


def firstfit_cost(
    ops: OpCounts, model: CostModel = DEFAULT_COST_MODEL
) -> AllocatorCost:
    """Instruction cost of a first-fit run from its operation counts."""
    alloc = (
        ops.allocs * model.ff_alloc_base
        + ops.blocks_scanned * model.ff_scan
        + ops.splits * model.ff_split
        + ops.sbrks * model.ff_sbrk
    )
    free = ops.frees * model.ff_free_base + ops.coalesces * model.ff_coalesce
    return AllocatorCost("first-fit", alloc, free, ops.allocs, ops.frees)


def arena_cost(
    ops: OpCounts,
    general_ops: OpCounts,
    strategy: str = "len4",
    total_calls: int = 0,
    model: CostModel = DEFAULT_COST_MODEL,
) -> AllocatorCost:
    """Instruction cost of an arena-allocator run.

    ``ops`` are the arena allocator's counters, ``general_ops`` the
    counters of its embedded general-purpose first-fit heap (fallback
    allocations and non-arena frees).  ``strategy`` selects how the call
    chain is identified at each allocation:

    ``"len4"``
        Walk the last four stack frames (10 of the 18 prediction
        instructions) — Table 9's "Arena (len-4)".

    ``"cce"``
        Maintain an XOR key at every function call; the per-allocation
        chain cost becomes ``cce_per_call * total_calls / allocs``
        (which the paper observed ranging from 9 to 94) replacing the
        10-instruction frame walk — Table 9's "Arena (cce)".
    """
    if strategy not in ("len4", "cce"):
        raise ValueError(f"unknown chain strategy {strategy!r}")
    general = firstfit_cost(general_ops, model)

    predict_total = ops.predictions * model.predict
    if strategy == "cce":
        # Swap the frame walk for the amortized key maintenance.
        predict_total -= ops.predictions * model.chain4
        predict_total += total_calls * model.cce_per_call

    alloc = (
        predict_total
        + ops.arena_allocs * model.arena_bump
        + ops.arenas_scanned * model.arena_scan
        + ops.arena_resets * model.arena_reset
        + general.total_alloc_instr
    )
    free = ops.arena_frees * model.arena_free + general.total_free_instr
    name = f"arena ({strategy})"
    return AllocatorCost(name, alloc, free, ops.allocs, ops.frees)


def execution_instructions(
    total_calls: int,
    total_refs: int,
    model: CostModel = DEFAULT_COST_MODEL,
) -> int:
    """Modelled instructions executed by a whole traced run (Table 2).

    A linear model over the trace's call and memory-reference counts; see
    DESIGN.md §2 for why whole-program instruction counts are modelled
    rather than measured in this reproduction.
    """
    return total_calls * model.instr_per_call + total_refs * model.instr_per_ref
