"""Simulated linear address space.

The allocator simulators place blocks in an abstract byte-addressed space
grown UNIX-style with :meth:`AddressSpace.sbrk`.  No data is stored at the
addresses — what matters to the paper's measurements is *placement*:
fragmentation, maximum break (Table 8's heap sizes), and block adjacency
for coalescing.

Growth happens in fixed increments (8 KB by default, a typical early-90s
``malloc`` chunk) so maximum heap sizes come out quantized the way real
``sbrk``-based allocators report them.
"""

from __future__ import annotations

__all__ = ["AddressSpace", "DEFAULT_SBRK_INCREMENT"]

#: Default sbrk growth granularity in bytes.
DEFAULT_SBRK_INCREMENT = 8 * 1024


class AddressSpace:
    """A growable linear region of simulated memory.

    Addresses start at ``base`` and grow upward.  ``brk`` is the current
    program break; ``max_brk`` the high-water mark used for heap-size
    measurements.
    """

    def __init__(self, base: int = 0, increment: int = DEFAULT_SBRK_INCREMENT):
        if increment < 1:
            raise ValueError(f"sbrk increment must be >= 1, got {increment}")
        if base < 0:
            raise ValueError(f"base must be non-negative, got {base}")
        self.base = base
        self.increment = increment
        self._brk = base
        self._max_brk = base

    @property
    def brk(self) -> int:
        """Current program break (first address beyond the heap)."""
        return self._brk

    @property
    def max_brk(self) -> int:
        """Highest break ever reached."""
        return self._max_brk

    @property
    def heap_size(self) -> int:
        """Current heap extent in bytes."""
        return self._brk - self.base

    @property
    def max_heap_size(self) -> int:
        """Maximum heap extent ever reached, in bytes (Table 8's metric)."""
        return self._max_brk - self.base

    def sbrk(self, nbytes: int) -> int:
        """Grow the heap by at least ``nbytes``; returns the old break.

        The actual growth is ``nbytes`` rounded up to the configured
        increment, mirroring how classic allocators request core from the
        OS in chunks.
        """
        if nbytes <= 0:
            raise ValueError(f"sbrk size must be positive, got {nbytes}")
        grown = ((nbytes + self.increment - 1) // self.increment) * self.increment
        old = self._brk
        self._brk += grown
        if self._brk > self._max_brk:
            self._max_brk = self._brk
        return old

    def contains(self, addr: int) -> bool:
        """Whether ``addr`` lies inside the currently grown heap."""
        return self.base <= addr < self._brk
