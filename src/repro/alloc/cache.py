"""Cache simulator for the locality experiments.

The paper argues (§1, §6) that segregating short-lived objects into a
small arena area "improves the reference locality of programs" but only
*predicts* the effect through the New Ref fractions of Table 6 — the
cache experiment itself is left implicit.  This module supplies the
missing substrate: a set-associative cache with LRU replacement, sized
like the early-90s data caches the paper has in mind (64 KB direct-mapped
with 32-byte lines by default, a SuperSPARC-era configuration).

:mod:`repro.analysis.locality` feeds it the address streams produced by
replaying a touch-recorded trace through an allocator; comparing miss
rates across allocators turns the paper's locality claim into a
measurement.
"""

from __future__ import annotations

from typing import List

__all__ = ["CacheConfig", "SetAssociativeCache"]


class CacheConfig:
    """Geometry of a simulated cache."""

    def __init__(self, size: int = 64 * 1024, line_size: int = 32,
                 ways: int = 1):
        if size <= 0 or line_size <= 0 or ways <= 0:
            raise ValueError("cache geometry must be positive")
        if size % (line_size * ways) != 0:
            raise ValueError(
                f"size {size} is not a multiple of line_size*ways "
                f"({line_size}*{ways})"
            )
        if line_size & (line_size - 1):
            raise ValueError(f"line size must be a power of two: {line_size}")
        self.size = size
        self.line_size = line_size
        self.ways = ways
        self.num_sets = size // (line_size * ways)

    def __repr__(self) -> str:
        kind = "direct-mapped" if self.ways == 1 else f"{self.ways}-way"
        return (
            f"<cache {self.size // 1024}KB {kind} "
            f"{self.line_size}B lines>"
        )


class SetAssociativeCache:
    """A set-associative cache with LRU replacement.

    Ways are kept per set in recency order (most recent last); with one
    way this degenerates to a direct-mapped cache.
    """

    def __init__(self, config: CacheConfig = None):
        self.config = config if config is not None else CacheConfig()
        self._sets: List[List[int]] = [[] for _ in range(self.config.num_sets)]
        self.accesses = 0
        self.hits = 0

    @property
    def misses(self) -> int:
        """Accesses that missed."""
        return self.accesses - self.hits

    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that missed (0.0 with no accesses)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def access(self, addr: int) -> bool:
        """Reference one byte address; returns whether it hit."""
        self.accesses += 1
        line = addr // self.config.line_size
        bucket = self._sets[line % self.config.num_sets]
        try:
            bucket.remove(line)
        except ValueError:
            if len(bucket) >= self.config.ways:
                bucket.pop(0)  # evict least recently used
            bucket.append(line)
            return False
        bucket.append(line)  # refresh recency
        self.hits += 1
        return True

    def access_range(self, addr: int, nbytes: int) -> None:
        """Reference every line the byte range [addr, addr+nbytes) covers."""
        if nbytes <= 0:
            return
        line_size = self.config.line_size
        first = addr // line_size
        last = (addr + nbytes - 1) // line_size
        for line in range(first, last + 1):
            self.access(line * line_size)

    def reset_counters(self) -> None:
        """Clear hit/miss counters, keeping cache contents (for warmup)."""
        self.accesses = 0
        self.hits = 0
