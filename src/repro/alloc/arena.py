"""Lifetime-predicting arena allocator.

The paper's optimized allocator (§5.1), built on Hanson's fast
object-lifetime arenas:

* A fixed **arena area** — 64 KB by default, divided into 16 arenas of
  4 KB — sits apart from the general heap.  Each arena holds only a bump
  pointer (``alloc``) and a **live-object count**; arena objects carry *no*
  per-object header.
* At each allocation the site database (a trained
  :class:`~repro.core.predictor.LifetimePredictor`) is consulted.
  Predicted-short-lived objects are bump-allocated into the current arena.
  When the current arena is full, every arena is scanned for one whose
  count has dropped to zero (all its objects died); such an arena is reset
  and reused.  If none exists — the arenas are *polluted* by mispredicted
  long-lived objects — the object falls through to the general heap.
* Freeing an arena object just decrements its arena's count; the space is
  reclaimed wholesale when the count reaches zero.  Freeing anything else
  goes to the general allocator (a
  :class:`~repro.alloc.firstfit.FirstFitAllocator`, making first-fit "the
  degenerate case of an arena allocator that allocates no objects in
  arenas", §5.2).
* Objects larger than an arena's capacity always use the general heap
  (footnote 1 of the paper) — this is why GHOST's 6 KB short-lived objects
  escape the 4 KB arenas in Table 7.

Address-range dispatch distinguishes arena frees from general frees, just
as the paper's runtime does ("the address of the object gives this
information ... because arenas are contiguous and not part of the general
allocation heap").
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.alloc.base import Allocator, AllocatorError
from repro.alloc.firstfit import FirstFitAllocator
from repro.core.predictor import LifetimePredictor
from repro.core.sites import CallChain

__all__ = [
    "Arena",
    "ArenaAllocator",
    "DEFAULT_ARENA_SIZE",
    "DEFAULT_NUM_ARENAS",
    "ARENA_ALIGNMENT",
]

#: The paper's configuration: a 64 KB arena area as 16 distinct 4 KB
#: arenas, "twice the age of the objects predicted as short-lived" (§5.2).
DEFAULT_ARENA_SIZE = 4 * 1024
DEFAULT_NUM_ARENAS = 16

#: Arena objects are pointer-aligned but headerless.
ARENA_ALIGNMENT = 8


class Arena:
    """One fixed-size arena: a bump pointer and a live-object count."""

    __slots__ = ("base", "size", "alloc", "count", "_live")

    def __init__(self, base: int, size: int):
        self.base = base
        self.size = size
        self.alloc = base  # next free byte
        self.count = 0  # live objects
        self._live: Dict[int, int] = {}  # addr -> requested size

    @property
    def used(self) -> int:
        """Bytes consumed so far (including alignment padding)."""
        return self.alloc - self.base

    @property
    def free_space(self) -> int:
        """Bytes still available for bump allocation."""
        return self.base + self.size - self.alloc

    def fits(self, size: int) -> bool:
        """Whether a ``size``-byte object fits in the remaining space."""
        return _aligned(size) <= self.free_space

    def bump(self, size: int) -> int:
        """Allocate ``size`` bytes; caller must have checked :meth:`fits`."""
        addr = self.alloc
        self.alloc += _aligned(size)
        self.count += 1
        self._live[addr] = size
        return addr

    def release(self, addr: int) -> int:
        """Note the death of the object at ``addr``; returns its size."""
        size = self._live.pop(addr, None)
        if size is None:
            raise AllocatorError(f"free of unknown arena address {addr}")
        if self.count <= 0:
            raise AllocatorError(f"arena at {self.base}: count underflow")
        self.count -= 1
        return size

    def reset(self) -> None:
        """Recycle the arena; only legal once every object has died."""
        if self.count != 0:
            raise AllocatorError(
                f"arena at {self.base} reset with {self.count} live objects"
            )
        self.alloc = self.base
        self._live.clear()

    @property
    def live_bytes(self) -> int:
        """Requested bytes of objects still live in this arena."""
        return sum(self._live.values())


def _aligned(size: int) -> int:
    return ((size + ARENA_ALIGNMENT - 1) // ARENA_ALIGNMENT) * ARENA_ALIGNMENT


class ArenaAllocator(Allocator):
    """Two-strategy allocator: predicted-short-lived → arenas, rest → first-fit.

    With ``predictor=None`` every object goes to the general heap, giving
    the degenerate first-fit behaviour the paper uses as its baseline.
    """

    name = "arena"

    def __init__(
        self,
        predictor: Optional[LifetimePredictor] = None,
        num_arenas: int = DEFAULT_NUM_ARENAS,
        arena_size: int = DEFAULT_ARENA_SIZE,
        base: int = 0,
    ):
        super().__init__()
        if num_arenas < 1:
            raise AllocatorError(f"need at least one arena, got {num_arenas}")
        if arena_size < ARENA_ALIGNMENT:
            raise AllocatorError(f"arena size too small: {arena_size}")
        self.predictor = predictor
        self.arena_size = arena_size
        self.arenas: List[Arena] = [
            Arena(base + i * arena_size, arena_size) for i in range(num_arenas)
        ]
        self._arena_base = base
        self._arena_limit = base + num_arenas * arena_size
        self._current = 0
        self._general = FirstFitAllocator(base=self._arena_limit)
        # Table 7 accounting.
        self.arena_bytes = 0
        self.general_bytes = 0

    @property
    def general(self) -> FirstFitAllocator:
        """The general-purpose allocator handling non-arena objects."""
        return self._general

    @property
    def arena_area_size(self) -> int:
        """Total bytes reserved for arenas (64 KB in the paper's setup)."""
        return self._arena_limit - self._arena_base

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def malloc(self, size: int, chain: Optional[CallChain] = None) -> int:
        if size <= 0:
            raise AllocatorError(f"allocation size must be positive, got {size}")
        self.ops.allocs += 1
        self.ops.bytes_requested += size
        placement = "unpredicted"
        if self.predictor is not None and chain is not None:
            self.ops.predictions += 1
            if self.predictor.predicts_short_lived(chain, size):
                self.ops.predicted_short += 1
                addr = self._arena_malloc(size)
                if addr is not None:
                    self.ops.arena_allocs += 1
                    self.arena_bytes += size
                    if self.probe is not None:
                        self.probe.on_alloc(addr, size, chain, "arena")
                    return addr
                self.ops.arena_overflows += 1
                placement = "overflow"
            else:
                placement = "general"
        self.general_bytes += size
        addr = self._general.malloc(size, chain)
        if self.probe is not None:
            self.probe.on_alloc(addr, size, chain, placement)
        return addr

    def _arena_malloc(self, size: int) -> Optional[int]:
        """Bump-allocate in the arenas; ``None`` when the object cannot fit.

        Follows §5.1 exactly: try the current arena; on failure scan all
        arenas for a zero count, reset and use the first one found; give up
        (caller falls back to the general heap) when every arena still has
        live objects.
        """
        if _aligned(size) > self.arena_size:
            return None  # larger than any arena could ever hold
        current = self.arenas[self._current]
        if current.fits(size):
            return current.bump(size)
        for index, arena in enumerate(self.arenas):
            self.ops.arenas_scanned += 1
            if arena.count == 0:
                arena.reset()
                self.ops.arena_resets += 1
                self._current = index
                return arena.bump(size)
        return None

    # ------------------------------------------------------------------
    # Deallocation
    # ------------------------------------------------------------------

    def free(self, addr: int) -> None:
        self.ops.frees += 1
        if self._arena_base <= addr < self._arena_limit:
            index = (addr - self._arena_base) // self.arena_size
            self.arenas[index].release(addr)
            self.ops.arena_frees += 1
        else:
            self._general.free(addr)
            self._general.ops.frees -= 1  # counted once, on this allocator
        if self.probe is not None:
            self.probe.on_free(addr)

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------

    @property
    def max_heap_size(self) -> int:
        """General-heap high-water mark plus the whole arena area.

        Matches Table 8's accounting: "the arena heap sizes include the
        64-kilobyte arena area in the total".
        """
        return self.arena_area_size + self._general.max_heap_size

    @property
    def live_bytes(self) -> int:
        return self._general.live_bytes + sum(
            arena.live_bytes for arena in self.arenas
        )

    def telemetry_snapshot(self) -> dict:
        """Arena-area gauges layered over the general heap's snapshot.

        Fragmentation and free-list series describe the general heap;
        ``arena_occupancy`` is the bump-allocated fraction of the whole
        arena area, ``arena_live_arenas`` counts arenas holding at least
        one live object, and ``arena_overflows``/``arena_resets`` are the
        cumulative operation counters.
        """
        snapshot = self._general.telemetry_snapshot()
        area = self.arena_area_size
        occupied = sum(arena.used for arena in self.arenas)
        arena_live = sum(arena.live_bytes for arena in self.arenas)
        snapshot.update({
            "heap_size": area + snapshot["heap_size"],
            "max_heap_size": self.max_heap_size,
            "live_bytes": arena_live + snapshot["live_bytes"],
            "arena_occupancy": round(occupied / area, 6) if area else 0.0,
            "arena_live_arenas": sum(1 for a in self.arenas if a.count),
            "arena_live_bytes": arena_live,
            "arena_overflows": self.ops.arena_overflows,
            "arena_resets": self.ops.arena_resets,
        })
        return snapshot

    def check_invariants(self) -> None:
        """Arena counts must match live objects; general heap must audit."""
        for arena in self.arenas:
            if arena.count != len(arena._live):
                raise AllocatorError(
                    f"arena at {arena.base}: count {arena.count} != "
                    f"{len(arena._live)} live objects"
                )
            if arena.alloc > arena.base + arena.size:
                raise AllocatorError(f"arena at {arena.base}: overflow")
        self._general.check_invariants()
