"""Allocator simulator interface and operation statistics.

Every allocator in :mod:`repro.alloc` is a *placement simulator*: it
accepts the trace's allocation requests, decides where each object would
live, and counts the work it performed.  Two kinds of results come out:

* **space** — maximum heap size (the break high-water mark, Table 8) and
  live/fragmentation accounting;
* **work** — operation counters (blocks scanned, coalesces, arena sweeps,
  predictions) that the cost model in :mod:`repro.alloc.costs` converts to
  the instructions-per-operation numbers of Table 9.

Addresses returned by ``malloc`` are simulated; callers must pass them back
to ``free`` unchanged.  Misuse (double free, unknown address) raises
:class:`AllocatorError` — the simulators validate their own bookkeeping so
the test suite can assert heap integrity after every scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.sites import CallChain

__all__ = ["Allocator", "AllocatorError", "OpCounts"]


class AllocatorError(Exception):
    """Raised on allocator misuse or internal invariant violation."""


@dataclass
class OpCounts:
    """Work counters shared by all allocator simulators.

    Not every field is meaningful for every allocator; each simulator
    documents which it maintains.  The cost models read these counters —
    they are the simulation analogue of the QP instruction profiles the
    paper took of real allocator implementations.
    """

    allocs: int = 0
    frees: int = 0
    bytes_requested: int = 0
    #: Free-list blocks examined across all allocations (first-fit search).
    blocks_scanned: int = 0
    #: Free blocks split to satisfy a smaller request.
    splits: int = 0
    #: Coalesce operations performed at free time (0, 1, or 2 per free).
    coalesces: int = 0
    #: Times the allocator had to grow the address space.
    sbrks: int = 0
    #: Arena allocator: objects bump-allocated in an arena.
    arena_allocs: int = 0
    #: Arena allocator: objects freed by count decrement.
    arena_frees: int = 0
    #: Arena allocator: arenas examined while hunting for an empty one.
    arenas_scanned: int = 0
    #: Arena allocator: arenas recycled after their count reached zero.
    arena_resets: int = 0
    #: Arena allocator: predicted-short-lived requests that fell through to
    #: the general heap (arena full or object too large).
    arena_overflows: int = 0
    #: Lifetime predictions attempted (one per allocation when predicting).
    predictions: int = 0
    #: Predictions that answered "short-lived".
    predicted_short: int = 0

    def snapshot(self) -> "OpCounts":
        """A copy of the current counters."""
        return OpCounts(**vars(self))


class Allocator:
    """Common interface of the allocator simulators.

    ``malloc`` takes the allocation's call chain so that predicting
    allocators can consult their site database; non-predicting allocators
    ignore it.

    **Probe interface.**  A telemetry recorder (see
    :mod:`repro.obs.telemetry`) may be attached with :meth:`attach_probe`;
    the simulator then reports every completed operation via
    ``probe.on_alloc(addr, size, chain, placement)`` /
    ``probe.on_free(addr)`` and exposes its current gauges through
    :meth:`telemetry_snapshot`.  With no probe attached (the default) the
    only cost is one ``is None`` test per operation, so replays without
    telemetry are unaffected.
    """

    name: str = "abstract"

    def __init__(self) -> None:
        self.ops = OpCounts()
        self.probe = None  # telemetry recorder, or None (the fast path)

    def attach_probe(self, probe) -> None:
        """Attach (or with ``None`` detach) a telemetry recorder."""
        self.probe = probe

    def malloc(self, size: int, chain: Optional[CallChain] = None) -> int:
        """Allocate ``size`` bytes; returns the simulated address."""
        raise NotImplementedError

    def free(self, addr: int) -> None:
        """Release the object at ``addr``."""
        raise NotImplementedError

    @property
    def max_heap_size(self) -> int:
        """Maximum total heap extent reached, in bytes."""
        raise NotImplementedError

    @property
    def live_bytes(self) -> int:
        """Bytes currently handed out to the program (payload, not headers)."""
        raise NotImplementedError

    def telemetry_snapshot(self) -> dict:
        """Current gauges for one telemetry sample.

        Subclasses extend this with their structure-specific series
        (fragmentation, free-list length, arena occupancy); the sampling
        cadence is low, so snapshots may do modest O(structure) work, but
        they must be pure reads — taking a snapshot never changes
        simulation behaviour.
        """
        return {
            "heap_size": self.max_heap_size,
            "max_heap_size": self.max_heap_size,
            "live_bytes": self.live_bytes,
        }

    def check_invariants(self) -> None:
        """Validate internal consistency; raises :class:`AllocatorError`.

        Default is a no-op; simulators with non-trivial bookkeeping
        override it, and the test suite calls it between scenario steps.
        """
