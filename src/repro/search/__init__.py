"""Design-space search over declarative allocator specs.

The paper reports one hand-picked arena configuration (16 x 4 KB
arenas, 32 KB cutoff); this package asks the question the authors
could not afford to: *which* configuration wins on a given workload?
A :class:`~repro.search.space.SearchSpace` declares the candidate
axes, the grid enumerator or the seeded evolutionary driver generates
validated :class:`~repro.alloc.spec.AllocatorSpec` candidates, each is
replayed and attributed through the store's (optionally sharded)
event pipeline, and the :class:`~repro.search.objective.Objective`
scores it against the paper-default baseline.  Ranked sessions land in
``results/search/SEARCH_<seq>.json`` with full provenance and no
wall-clock noise, so the same search replays byte-identically —
serial or ``--jobs N`` — and ``diff-sessions`` can gate one run
against another.

Exposed on the CLI as ``repro-alloc search run/show/best``.
"""

from repro.search.evolve import (
    DEFAULT_GENERATIONS,
    DEFAULT_POPULATION,
    crossover,
    evolve,
    mutate,
)
from repro.search.objective import (
    DEFAULT_OBJECTIVE,
    CandidateMetrics,
    Objective,
    ObjectiveError,
)
from repro.search.results import (
    SEARCH_DIR_ENV,
    SEARCH_SCHEMA_VERSION,
    SearchFormatError,
    SearchSession,
    SearchStore,
    default_search_dir,
    render_best,
    render_session,
    search_provenance,
)
from repro.search.service import (
    SEARCH_MODES,
    SearchError,
    evaluate_spec,
    run_search,
)
from repro.search.space import DEFAULT_SPACE, SearchSpace, SearchSpaceError

__all__ = [
    "CandidateMetrics",
    "DEFAULT_GENERATIONS",
    "DEFAULT_OBJECTIVE",
    "DEFAULT_POPULATION",
    "DEFAULT_SPACE",
    "Objective",
    "ObjectiveError",
    "SEARCH_DIR_ENV",
    "SEARCH_MODES",
    "SEARCH_SCHEMA_VERSION",
    "SearchError",
    "SearchFormatError",
    "SearchSession",
    "SearchSpace",
    "SearchSpaceError",
    "SearchStore",
    "crossover",
    "default_search_dir",
    "evaluate_spec",
    "evolve",
    "mutate",
    "render_best",
    "render_session",
    "run_search",
    "search_provenance",
]
