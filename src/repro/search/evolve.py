"""Seeded evolutionary driver over the allocator design space.

For spaces too big to enumerate, evolution walks them guided by the
objective: seed a population of random (valid) specs, keep the
better-scoring half, and refill with children made by field-wise
crossover of two elites plus an occasional single-axis mutation —
always within the :class:`~repro.search.space.SearchSpace` axes, always
revalidated by the spec schema.

Everything random flows through one ``random.Random(seed)`` instance
and every ranking tie-breaks on the canonical spec hash, so a given
(seed, space, workload) triple replays to the identical candidate set
and ranking — byte-identical sessions, serial or sharded.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Tuple

from repro.alloc.spec import AllocatorSpec
from repro.search.space import SearchSpace

__all__ = ["evolve", "crossover", "mutate", "DEFAULT_GENERATIONS",
           "DEFAULT_POPULATION"]

DEFAULT_GENERATIONS = 4
DEFAULT_POPULATION = 8

#: Chance a crossover child is additionally mutated on one axis.
_MUTATION_RATE = 0.5

#: Sampling attempts per needed spec before giving up on a space whose
#: valid region is tiny (e.g. every combination schema-rejected).
_ATTEMPTS_PER_SLOT = 20


def crossover(left: AllocatorSpec, right: AllocatorSpec, rng: random.Random,
              space: SearchSpace) -> Optional[AllocatorSpec]:
    """A child taking each axis from one parent by coin flip; None when
    the combination fails spec validation."""
    choices = {}
    for name, _ in space.axes():
        parent = left if rng.random() < 0.5 else right
        choices[name] = getattr(parent, name)
    return space.build(**choices)


def mutate(spec: AllocatorSpec, rng: random.Random,
           space: SearchSpace) -> Optional[AllocatorSpec]:
    """``spec`` with one axis reassigned to a different value from the
    space; None when no axis has an alternative or the result is
    invalid."""
    mutable = [
        (name, [value for value in values if value != getattr(spec, name)])
        for name, values in space.axes()
        if len(values) > 1
    ]
    mutable = [(name, alternatives) for name, alternatives in mutable
               if alternatives]
    if not mutable:
        return None
    name, alternatives = rng.choice(mutable)
    choices = {axis: getattr(spec, axis) for axis, _ in space.axes()}
    choices[name] = rng.choice(alternatives)
    return space.build(**choices)


def evolve(
    space: SearchSpace,
    evaluate: Callable[[AllocatorSpec], float],
    seed: int = 0,
    generations: int = DEFAULT_GENERATIONS,
    population: int = DEFAULT_POPULATION,
) -> List[Tuple[AllocatorSpec, float]]:
    """Run the evolutionary search; returns every evaluated (spec, score)
    in evaluation order.

    ``evaluate`` maps a spec to its objective score (lower is better)
    and is called exactly once per distinct canonical spec — memoize
    there if evaluation is expensive.
    """
    rng = random.Random(seed)
    seen = set()
    evaluated: List[Tuple[AllocatorSpec, float]] = []

    def admit(spec: Optional[AllocatorSpec]) -> Optional[
            Tuple[AllocatorSpec, float]]:
        if spec is None:
            return None
        key = spec.spec_hash()
        if key in seen:
            return None
        seen.add(key)
        member = (spec, evaluate(spec))
        evaluated.append(member)
        return member

    members: List[Tuple[AllocatorSpec, float]] = []
    attempts = population * _ATTEMPTS_PER_SLOT
    while len(members) < population and attempts > 0:
        attempts -= 1
        member = admit(space.random_spec(rng))
        if member is not None:
            members.append(member)

    for _ in range(generations):
        if len(members) < 2:
            break
        members.sort(key=lambda member: (member[1], member[0].spec_hash()))
        elites = members[: max(2, len(members) // 2)]
        children: List[Tuple[AllocatorSpec, float]] = []
        wanted = population - len(elites)
        attempts = max(wanted, 1) * _ATTEMPTS_PER_SLOT
        while len(children) < wanted and attempts > 0:
            attempts -= 1
            left = rng.choice(elites)[0]
            right = rng.choice(elites)[0]
            child = crossover(left, right, rng, space)
            if child is not None and rng.random() < _MUTATION_RATE:
                child = mutate(child, rng, space) or child
            member = admit(child)
            if member is not None:
                children.append(member)
        members = elites + children

    return evaluated
