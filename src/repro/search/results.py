"""Ranked search sessions: ``SEARCH_<seq>.json`` on disk.

A search session records the full provenance of one design-space run —
workload, scale, mode, seed, objective weights, the space and its hash,
the baseline spec's measurements — plus every evaluated candidate
ranked by score (ties broken by canonical spec hash).

Unlike bench sessions, search sessions carry **no wall-clock stamp and
no worker count**: the same (space, workload, scale, seed, objective)
must produce a byte-identical file whether the replay ran serially or
sharded over ``--jobs N`` workers, and CI compares the files with
``cmp`` to prove it.  The store mirrors :class:`~repro.bench.BenchStore`
(append-only numbered files, atomic writes, ``latest``/``prev``/seq/path
references) so ``diff-sessions`` can gate one ranked session against
another.
"""

from __future__ import annotations

import json
import os
import platform
import re
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.bench.provenance import git_sha

__all__ = [
    "SEARCH_DIR_ENV",
    "SEARCH_SCHEMA_VERSION",
    "SearchFormatError",
    "SearchSession",
    "SearchStore",
    "default_search_dir",
    "render_best",
    "render_session",
    "search_provenance",
]

#: Environment variable naming the search-session directory.
SEARCH_DIR_ENV = "REPRO_SEARCH_DIR"

#: Version of the SEARCH session schema.  Bump on any field change so
#: readers can refuse documents they do not understand.
SEARCH_SCHEMA_VERSION = 1

_SEQ_RE = re.compile(r"^SEARCH_(\d+)\.json$")


class SearchFormatError(ValueError):
    """A search-session document that cannot be understood."""


def default_search_dir() -> Path:
    """``$REPRO_SEARCH_DIR`` or ``results/search`` under the working tree."""
    env = os.environ.get(SEARCH_DIR_ENV)
    if env:
        return Path(env).expanduser()
    return Path("results") / "search"


def search_provenance() -> Dict[str, Any]:
    """The provenance block for a search session.

    Deliberately excludes wall-clock time and the worker count: two runs
    of the same search must produce byte-identical sessions regardless
    of when they ran or how the replay was sharded.
    """
    return {
        "git_sha": git_sha(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": f"{platform.system()}-{platform.machine()}",
    }


@dataclass
class SearchSession:
    """One ranked design-space run, JSON round-trippable."""

    seq: int
    program: str
    dataset: str
    scale: float
    mode: str
    seed: int
    objective: Dict[str, float]
    space: Dict[str, Any]
    space_hash: str
    baseline: Dict[str, Any]
    #: Ranked candidates, best first; each entry carries ``rank``,
    #: ``spec``, ``spec_hash``, ``describe``, ``metrics``, ``ratios``,
    #: and ``score``.
    results: List[Dict[str, Any]] = field(default_factory=list)
    provenance: Dict[str, Any] = field(default_factory=dict)

    @property
    def best(self) -> Optional[Dict[str, Any]]:
        """The top-ranked candidate, or None for an empty session."""
        return self.results[0] if self.results else None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "search",
            "schema_version": SEARCH_SCHEMA_VERSION,
            "seq": self.seq,
            "program": self.program,
            "dataset": self.dataset,
            "scale": self.scale,
            "mode": self.mode,
            "seed": self.seed,
            "objective": self.objective,
            "space": self.space,
            "space_hash": self.space_hash,
            "baseline": self.baseline,
            "results": self.results,
            "provenance": self.provenance,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SearchSession":
        if not isinstance(data, dict) or data.get("kind") != "search":
            raise SearchFormatError(
                "not a search session: expected a JSON object with "
                "kind='search'"
            )
        version = data.get("schema_version")
        if version != SEARCH_SCHEMA_VERSION:
            raise SearchFormatError(
                f"unsupported search schema_version {version!r}; "
                f"this build reads version {SEARCH_SCHEMA_VERSION}"
            )
        try:
            return cls(
                seq=data["seq"],
                program=data["program"],
                dataset=data["dataset"],
                scale=data["scale"],
                mode=data["mode"],
                seed=data["seed"],
                objective=data["objective"],
                space=data["space"],
                space_hash=data["space_hash"],
                baseline=data["baseline"],
                results=data["results"],
                provenance=data.get("provenance", {}),
            )
        except KeyError as exc:
            raise SearchFormatError(
                f"search session is missing field {exc.args[0]!r}"
            )


class SearchStore:
    """Reads and appends the ``SEARCH_<seq>.json`` trajectory."""

    def __init__(self, directory: Union[str, os.PathLike, None] = None):
        self.directory = (
            Path(directory) if directory else default_search_dir()
        )

    def session_paths(self) -> List[Tuple[int, Path]]:
        """Every ``(seq, path)`` in the trajectory, ascending by seq."""
        found: List[Tuple[int, Path]] = []
        if self.directory.is_dir():
            for path in self.directory.iterdir():
                match = _SEQ_RE.match(path.name)
                if match:
                    found.append((int(match.group(1)), path))
        found.sort(key=lambda pair: pair[0])
        return found

    def next_seq(self) -> int:
        """The sequence number the next :meth:`write` will use."""
        paths = self.session_paths()
        return (paths[-1][0] + 1) if paths else 1

    def path_for(self, seq: int) -> Path:
        """Where session ``seq`` lives (whether or not present)."""
        return self.directory / f"SEARCH_{seq:04d}.json"

    def load(self, ref: Union[int, str, os.PathLike]) -> SearchSession:
        """Load a session by seq number, ``"latest"``/``"prev"``, or path."""
        path = self.resolve(ref)
        with open(path, "r", encoding="utf-8") as handle:
            return SearchSession.from_dict(json.load(handle))

    def resolve(self, ref: Union[int, str, os.PathLike]) -> Path:
        """Turn a session reference into the file that holds it."""
        if isinstance(ref, int):
            return self.path_for(ref)
        text = str(ref)
        if text in ("latest", "prev"):
            paths = self.session_paths()
            want = 1 if text == "latest" else 2
            if len(paths) < want:
                raise FileNotFoundError(
                    f"no {text!r} session: the search trajectory at "
                    f"{self.directory} holds {len(paths)} session(s)"
                )
            return paths[-want][1]
        if text.isdigit():
            return self.path_for(int(text))
        return Path(ref)

    def write(self, session: SearchSession) -> Path:
        """Atomically write ``session`` to its trajectory file."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(session.seq)
        payload = json.dumps(session.to_dict(), indent=2, sort_keys=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.directory), prefix=".search-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8", newline="\n") as tmp:
                tmp.write(payload)
                tmp.write("\n")
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def __repr__(self) -> str:
        return f"<SearchStore dir={str(self.directory)!r}>"


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------

def render_session(session: SearchSession, top: Optional[int] = None) -> str:
    """The ranked-candidates table for one session."""
    lines = [
        f"search session {session.seq:04d}: {session.program}/"
        f"{session.dataset} scale {session.scale:g}, mode {session.mode}, "
        f"seed {session.seed}, space {session.space_hash}",
        f"objective weights: "
        f"instr {session.objective.get('instructions', 0):g}, "
        f"heap {session.objective.get('max_heap', 0):g}, "
        f"frag {session.objective.get('fragmentation', 0):g} "
        f"(baseline arena = 1.0)",
        "",
        "rank  score    instr-ratio  heap-ratio  frag-ratio  spec",
    ]
    shown = session.results if top is None else session.results[:top]
    for entry in shown:
        ratios = entry.get("ratios", {})

        def cell(name: str, width: int) -> str:
            value = ratios.get(name)
            if value is None:
                # Axis the baseline zeroed out — no relative movement.
                return "-".rjust(width)
            return f"{value:>{width}.4f}"

        lines.append(
            f"{entry['rank']:>4}  {entry['score']:7.4f}  "
            f"{cell('instructions', 11)}  {cell('max_heap', 10)}  "
            f"{cell('fragmentation', 10)}  "
            f"{entry.get('describe', entry['spec_hash'])}"
        )
    if not shown:
        lines.append("  (no candidates evaluated)")
    hidden = len(session.results) - len(shown)
    if hidden > 0:
        lines.append(f"  ... {hidden} more candidate(s); --top 0 for all")
    return "\n".join(lines)


def render_best(session: SearchSession) -> str:
    """The winner summary the improvement gate prints."""
    best = session.best
    if best is None:
        return (
            f"search session {session.seq:04d}: no candidates evaluated"
        )
    verdict = (
        "beats the paper-default arena spec"
        if best["score"] < 1.0
        else "does not beat the paper-default arena spec"
    )
    lines = [
        f"best of search session {session.seq:04d} "
        f"({session.program}, scale {session.scale:g}): "
        f"score {best['score']:.4f} — {verdict}",
        f"  spec {best['spec_hash']}: "
        f"{best.get('describe', '')}".rstrip(),
        f"  spec json: {json.dumps(best['spec'], sort_keys=True)}",
    ]
    return "\n".join(lines)
