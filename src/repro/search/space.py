"""The allocator design space: axes of :class:`AllocatorSpec` values.

A :class:`SearchSpace` names, per spec field, the candidate values the
search may combine.  The grid enumerator walks the full cartesian
product in a fixed field order; the evolutionary driver samples, mates,
and mutates *within the same axes*, so every candidate either mode
produces is a validated :class:`~repro.alloc.spec.AllocatorSpec` drawn
from the declared space.  Combinations the spec schema rejects (for
example a ``firstfit`` kind paired with a trained predictor) are
skipped rather than repaired, keeping the space declaration honest.

The space serializes to JSON (``--space FILE``) and hashes canonically,
so a search session records exactly which design space produced it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields
from typing import Iterator, List, Optional, Tuple

from repro.alloc.arena import DEFAULT_ARENA_SIZE, DEFAULT_NUM_ARENAS
from repro.alloc.spec import AllocatorSpec, SpecError

__all__ = ["SearchSpace", "SearchSpaceError", "DEFAULT_SPACE"]


class SearchSpaceError(ValueError):
    """A search-space document that cannot describe a design space."""


#: (space field, AllocatorSpec field) in enumeration order.
_AXES: Tuple[Tuple[str, str], ...] = (
    ("kinds", "kind"),
    ("num_arenas", "num_arenas"),
    ("arena_sizes", "arena_size"),
    ("thresholds", "threshold"),
    ("size_roundings", "size_rounding"),
    ("chain_lengths", "chain_length"),
    ("class_ladders", "class_thresholds"),
    ("predictors", "predictor"),
    ("strategies", "strategy"),
)


@dataclass(frozen=True)
class SearchSpace:
    """Candidate values per :class:`AllocatorSpec` field."""

    kinds: Tuple[str, ...] = ("arena",)
    num_arenas: Tuple[int, ...] = (8, DEFAULT_NUM_ARENAS, 32)
    arena_sizes: Tuple[int, ...] = (2048, DEFAULT_ARENA_SIZE, 8192)
    thresholds: Tuple[int, ...] = (16384, 32768)
    size_roundings: Tuple[int, ...] = (4,)
    chain_lengths: Tuple[Optional[int], ...] = (None,)
    class_ladders: Tuple[Tuple[int, ...], ...] = ((),)
    predictors: Tuple[str, ...] = ("trained",)
    strategies: Tuple[str, ...] = ("len4",)

    def __post_init__(self):
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if not isinstance(value, tuple):
                try:
                    value = tuple(value)
                except TypeError:
                    raise SearchSpaceError(
                        f"search space {spec_field.name} must be a "
                        f"sequence of candidate values, got "
                        f"{type(value).__name__}"
                    )
                object.__setattr__(self, spec_field.name, value)
        ladders = tuple(
            tuple(ladder) if not isinstance(ladder, tuple) else ladder
            for ladder in self.class_ladders
        )
        object.__setattr__(self, "class_ladders", ladders)
        self.validate()

    def validate(self) -> None:
        """Raise :class:`SearchSpaceError` unless every axis is usable."""
        for space_field, _ in _AXES:
            values = getattr(self, space_field)
            if not values:
                raise SearchSpaceError(
                    f"search space {space_field} must name at least one "
                    f"candidate value"
                )
            if len(set(values)) != len(values):
                raise SearchSpaceError(
                    f"search space {space_field} repeats a value: "
                    f"{list(values)}"
                )

    # ------------------------------------------------------------------
    # Enumeration and sampling
    # ------------------------------------------------------------------

    def axes(self) -> List[Tuple[str, Tuple]]:
        """``(AllocatorSpec field, candidate values)`` per axis."""
        return [
            (spec_field, getattr(self, space_field))
            for space_field, spec_field in _AXES
        ]

    @property
    def size(self) -> int:
        """The cartesian-product size (an upper bound on valid specs)."""
        total = 1
        for _, values in self.axes():
            total *= len(values)
        return total

    def build(self, **choices) -> Optional[AllocatorSpec]:
        """One spec from per-field choices; None when the schema
        rejects the combination."""
        try:
            return AllocatorSpec(**choices)
        except SpecError:
            return None

    def specs(self) -> Iterator[AllocatorSpec]:
        """Every valid spec in the grid, deduplicated by canonical hash.

        Enumeration order is the fixed axis order with the last axis
        varying fastest, so the grid is reproducible run to run.
        """
        from itertools import product

        axes = self.axes()
        names = [name for name, _ in axes]
        seen = set()
        for combo in product(*(values for _, values in axes)):
            spec = self.build(**dict(zip(names, combo)))
            if spec is None:
                continue
            key = spec.spec_hash()
            if key in seen:
                continue
            seen.add(key)
            yield spec

    def random_spec(self, rng) -> Optional[AllocatorSpec]:
        """One spec sampled uniformly per axis from ``rng`` (a seeded
        :class:`random.Random`); None when the draw is invalid."""
        choices = {
            name: rng.choice(list(values)) for name, values in self.axes()
        }
        return self.build(**choices)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "kinds": list(self.kinds),
            "num_arenas": list(self.num_arenas),
            "arena_sizes": list(self.arena_sizes),
            "thresholds": list(self.thresholds),
            "size_roundings": list(self.size_roundings),
            "chain_lengths": list(self.chain_lengths),
            "class_ladders": [list(ladder) for ladder in self.class_ladders],
            "predictors": list(self.predictors),
            "strategies": list(self.strategies),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SearchSpace":
        if not isinstance(data, dict):
            raise SearchSpaceError(
                f"search space document must be a JSON object, got "
                f"{type(data).__name__}"
            )
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SearchSpaceError(
                f"unknown search space field(s) {unknown}; "
                f"expected a subset of {sorted(known)}"
            )
        kwargs = dict(data)
        if "class_ladders" in kwargs:
            try:
                kwargs["class_ladders"] = tuple(
                    tuple(ladder) for ladder in kwargs["class_ladders"]
                )
            except TypeError:
                raise SearchSpaceError(
                    "search space class_ladders must be a list of "
                    "integer lists"
                )
        return cls(**kwargs)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SearchSpace":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SearchSpaceError(f"search space is not valid JSON: {exc}")
        return cls.from_dict(data)

    def space_hash(self) -> str:
        """A short stable digest naming this design space in provenance."""
        payload = json.dumps(self.to_dict(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]


#: The stock design space ``search run`` explores without ``--space``.
DEFAULT_SPACE = SearchSpace()
