"""Scoring candidate allocator specs against the paper-default baseline.

A candidate is measured on three axes the paper itself trades off:
simulated allocation **instructions** (CPU, Table 9's currency), the
**max heap** footprint (memory, Table 8's currency), and
**fragmentation** byte-time (space held but not requested, from the
per-site attribution fold).  The :class:`Objective` weights the three
into a single score.

Scores are *baseline-normalized*: each metric becomes a ratio against
the same metric of the paper-default arena spec on the same workload,
and the score is the weighted mean of the ratios.  The paper default
therefore scores exactly ``1.0`` by construction, and any candidate
scoring below ``1.0`` beats it on the combined objective — which is the
improvement gate ``search best --require-improvement`` checks.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict

__all__ = ["CandidateMetrics", "Objective", "ObjectiveError",
           "DEFAULT_OBJECTIVE"]


class ObjectiveError(ValueError):
    """An objective whose weights cannot rank anything."""


@dataclass(frozen=True)
class CandidateMetrics:
    """The raw measurements one spec evaluation produces."""

    total_instr: int
    max_heap_size: int
    frag_byte_time: int

    def to_dict(self) -> Dict[str, int]:
        return {
            "total_instr": self.total_instr,
            "max_heap_size": self.max_heap_size,
            "frag_byte_time": self.frag_byte_time,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "CandidateMetrics":
        return cls(**{f.name: data[f.name] for f in fields(cls)})


#: (ratio name, CandidateMetrics field, Objective weight field) per axis.
_AXES = (
    ("instructions", "total_instr", "instructions"),
    ("max_heap", "max_heap_size", "max_heap"),
    ("fragmentation", "frag_byte_time", "fragmentation"),
)


@dataclass(frozen=True)
class Objective:
    """Weights over the three baseline-normalized metric ratios."""

    instructions: float = 1.0
    max_heap: float = 1.0
    fragmentation: float = 0.5

    def __post_init__(self):
        for weight_field in fields(self):
            value = getattr(self, weight_field.name)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ObjectiveError(
                    f"objective weight {weight_field.name} must be a "
                    f"number >= 0, got {value!r}"
                )
            if value < 0:
                raise ObjectiveError(
                    f"objective weight {weight_field.name} must be >= 0, "
                    f"got {value}"
                )
        if not (self.instructions or self.max_heap or self.fragmentation):
            raise ObjectiveError(
                "objective weights are all zero; at least one of "
                "instructions/max_heap/fragmentation must be positive"
            )

    def ratios(self, metrics: CandidateMetrics,
               baseline: CandidateMetrics) -> Dict[str, float]:
        """Per-axis candidate/baseline ratios (1.0 = parity).

        An axis whose baseline measured zero (e.g. a workload with no
        fragmentation under the paper default) has no meaningful
        relative movement; it is omitted, keeping ratios finite and the
        session strictly JSON-serializable.
        """
        result: Dict[str, float] = {}
        for name, metric_field, _ in _AXES:
            base = getattr(baseline, metric_field)
            if base:
                result[name] = getattr(metrics, metric_field) / base
        return result

    def score(self, metrics: CandidateMetrics,
              baseline: CandidateMetrics) -> float:
        """Weighted mean of the measurable ratios; the baseline scores
        exactly 1.0.  Axes the baseline zeroed out are dropped and the
        weights renormalized over the rest; with no measurable axis at
        all, everything scores parity."""
        ratios = self.ratios(metrics, baseline)
        weighted = 0.0
        total_weight = 0.0
        for name, _, weight_field in _AXES:
            if name in ratios:
                weight = getattr(self, weight_field)
                weighted += weight * ratios[name]
                total_weight += weight
        if total_weight == 0:
            return 1.0
        return weighted / total_weight

    def to_dict(self) -> Dict[str, float]:
        return {
            "instructions": self.instructions,
            "max_heap": self.max_heap,
            "fragmentation": self.fragmentation,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "Objective":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ObjectiveError(
                f"unknown objective weight(s) {unknown}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(**data)


#: Instructions and heap at par, fragmentation at half weight (it partly
#: double-counts heap growth the max_heap axis already sees).
DEFAULT_OBJECTIVE = Objective()
