"""The search service: evaluate specs, rank them, record the session.

One candidate evaluation is two deterministic passes over the same
workload execution:

* :func:`~repro.analysis.simulate.simulate_spec` replays the trace for
  the instruction total and the max-heap footprint;
* :func:`~repro.obs.attrib.attribute_sites` prices fragmentation
  byte-time through the same object-lifetime fold — which means a
  streaming store built with ``jobs > 1`` shards both passes over the
  v3 chunk index, so ``--jobs`` parallelism comes from the existing
  pool rather than a second scheduler, and the recorded numbers cannot
  depend on the worker count.

Grid mode scores every spec the space enumerates; evolve mode walks the
space with the seeded driver in :mod:`repro.search.evolve`.  Either
way every distinct canonical spec is evaluated once, scored against the
paper-default baseline, and ranked by (score, spec hash).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.alloc.spec import PAPER_DEFAULT_SPEC, AllocatorSpec
from repro.alloc.costs import DEFAULT_COST_MODEL, CostModel
from repro.analysis.experiments import EVAL_DATASET
from repro.analysis.simulate import simulate_spec
from repro.obs.attrib import attribute_sites
from repro.obs.spans import TRACER
from repro.search.evolve import (
    DEFAULT_GENERATIONS,
    DEFAULT_POPULATION,
    evolve,
)
from repro.search.objective import (
    DEFAULT_OBJECTIVE,
    CandidateMetrics,
    Objective,
)
from repro.search.results import (
    SearchSession,
    search_provenance,
)
from repro.search.space import DEFAULT_SPACE, SearchSpace

__all__ = ["SearchError", "SEARCH_MODES", "evaluate_spec", "run_search"]

#: How candidates are generated from the space.
SEARCH_MODES = ("grid", "evolve")


class SearchError(ValueError):
    """A search request that cannot be run."""


def evaluate_spec(
    store,
    program: str,
    spec: AllocatorSpec,
    dataset: str = EVAL_DATASET,
    model: CostModel = DEFAULT_COST_MODEL,
) -> CandidateMetrics:
    """Measure one spec on one workload execution.

    The predictor is resolved the way the spec asks
    (:meth:`TraceStore.predictor_for`), then both the replay and the
    attribution fold consume the store's event source — materialized or
    sharded-streaming, whichever the store was built for.
    """
    predictor = store.predictor_for(program, spec)
    with TRACER.span(
        "search.simulate", cat="search", spec=spec.spec_hash()
    ):
        sim = simulate_spec(
            store.source(program, dataset), spec, predictor, model=model
        )
    with TRACER.span(
        "search.attribute", cat="search", spec=spec.spec_hash()
    ):
        profile = attribute_sites(
            store.source(program, dataset),
            predictor=predictor,
            model=model,
            spec=spec,
        )
    return CandidateMetrics(
        total_instr=(sim.cost.total_alloc_instr + sim.cost.total_free_instr),
        max_heap_size=sim.max_heap_size,
        frag_byte_time=profile.totals().frag_byte_time,
    )


def _candidate_entry(
    spec: AllocatorSpec,
    metrics: CandidateMetrics,
    score: float,
    ratios: Dict[str, float],
) -> Dict[str, Any]:
    return {
        "spec": spec.to_dict(),
        "spec_hash": spec.spec_hash(),
        "describe": spec.describe(),
        "metrics": metrics.to_dict(),
        "ratios": {name: round(value, 6) for name, value in ratios.items()},
        "score": round(score, 6),
    }


def run_search(
    store,
    program: str,
    space: SearchSpace = DEFAULT_SPACE,
    objective: Objective = DEFAULT_OBJECTIVE,
    mode: str = "grid",
    seed: int = 0,
    generations: int = DEFAULT_GENERATIONS,
    population: int = DEFAULT_POPULATION,
    dataset: str = EVAL_DATASET,
    model: CostModel = DEFAULT_COST_MODEL,
    seq: int = 1,
) -> SearchSession:
    """Run one design-space search and return the ranked session."""
    if mode not in SEARCH_MODES:
        raise SearchError(
            f"unknown search mode {mode!r}; "
            f"expected one of {', '.join(SEARCH_MODES)}"
        )

    with TRACER.span("search.baseline", cat="search"):
        baseline_metrics = evaluate_spec(
            store, program, PAPER_DEFAULT_SPEC, dataset=dataset, model=model
        )

    cache: Dict[str, Any] = {}

    def evaluate(spec: AllocatorSpec) -> float:
        key = spec.spec_hash()
        entry = cache.get(key)
        if entry is None:
            metrics = evaluate_spec(
                store, program, spec, dataset=dataset, model=model
            )
            score = objective.score(metrics, baseline_metrics)
            entry = (spec, metrics, score)
            cache[key] = entry
        return entry[2]

    with TRACER.span("search.candidates", cat="search", mode=mode):
        if mode == "grid":
            for spec in space.specs():
                evaluate(spec)
        else:
            evolve(
                space, evaluate,
                seed=seed, generations=generations, population=population,
            )

    ranked = sorted(
        cache.values(),
        key=lambda entry: (entry[2], entry[0].spec_hash()),
    )
    results = []
    for rank, (spec, metrics, score) in enumerate(ranked, start=1):
        entry = _candidate_entry(
            spec, metrics, score, objective.ratios(metrics, baseline_metrics)
        )
        entry["rank"] = rank
        results.append(entry)

    return SearchSession(
        seq=seq,
        program=program,
        dataset=dataset,
        scale=store.scale,
        mode=mode,
        seed=seed,
        objective=objective.to_dict(),
        space=space.to_dict(),
        space_hash=space.space_hash(),
        baseline={
            "spec": PAPER_DEFAULT_SPEC.to_dict(),
            "spec_hash": PAPER_DEFAULT_SPEC.spec_hash(),
            "metrics": baseline_metrics.to_dict(),
        },
        results=results,
        provenance=search_provenance(),
    )
