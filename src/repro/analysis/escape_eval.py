"""Static-vs-trained-vs-oracle evaluation of the escape analysis.

The question the tentpole answers: how much of the trained predictors'
benefit does a *profile-free* predictor recover?  For every workload
this module scores three predictors over the evaluation execution:

* **static** — :class:`repro.core.predictor.StaticEscapePredictor`
  derived by :func:`repro.static.escape.build_escape_db` from source
  alone (no profiling run);
* **trained** — the paper's true-prediction site predictor, trained on
  the ``train`` execution;
* **oracle** — per-object perfect lifetime knowledge
  (:func:`repro.analysis.oracle.simulate_arena_oracle`), the ceiling.

Each row reports prediction *coverage* (correctly-predicted short bytes
as a fraction of all bytes), *accuracy* (correct short predictions as a
fraction of all short predictions — the soundness-facing number), and
the arena simulation's maximum heap size under each predictor.  The
rendering is deterministic: byte-identical across the materialized,
``--stream`` and ``--jobs N`` replay modes, which CI gates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.alloc.arena import DEFAULT_ARENA_SIZE, DEFAULT_NUM_ARENAS
from repro.alloc.spec import AllocatorSpec
from repro.analysis.oracle import simulate_arena_oracle
from repro.analysis.simulate import simulate_spec
from repro.core.predictor import (
    DEFAULT_THRESHOLD,
    PredictionEvaluation,
    evaluate,
)
from repro.obs.spans import TRACER

__all__ = ["EscapeEvalRow", "EscapeEvalResult", "escape_eval",
           "render_escape_eval"]


def _accuracy(ev: PredictionEvaluation) -> float:
    """Correct short predictions over all short predictions (fraction).

    A predictor that never predicts short has made no mistakes — that
    reads as accuracy 1.0, with its (zero) coverage telling the rest.
    """
    predicted = ev.predicted_short_bytes + ev.error_bytes
    if predicted == 0:
        return 1.0
    return ev.predicted_short_bytes / predicted


@dataclass(frozen=True)
class EscapeEvalRow:
    """One workload's three-way comparison."""

    program: str
    #: static site classes over the enumerated static site space
    class_counts: Dict[str, int]
    static_eval: PredictionEvaluation
    trained_eval: PredictionEvaluation
    static_heap: int
    trained_heap: int
    oracle_heap: int

    @property
    def static_accuracy(self) -> float:
        return _accuracy(self.static_eval)

    @property
    def trained_accuracy(self) -> float:
        return _accuracy(self.trained_eval)

    def to_dict(self) -> dict:
        def _eval_dict(ev: PredictionEvaluation) -> dict:
            return {
                "total_bytes": ev.total_bytes,
                "actual_short_bytes": ev.actual_short_bytes,
                "predicted_short_bytes": ev.predicted_short_bytes,
                "error_bytes": ev.error_bytes,
                "coverage_pct": round(ev.predicted_pct, 4),
                "accuracy": round(_accuracy(ev), 6),
                "sites_used": ev.sites_used,
                "total_sites": ev.total_sites,
            }

        return {
            "program": self.program,
            "class_counts": dict(sorted(self.class_counts.items())),
            "static": _eval_dict(self.static_eval),
            "trained": _eval_dict(self.trained_eval),
            "arena_max_heap": {
                "static": self.static_heap,
                "trained": self.trained_heap,
                "oracle": self.oracle_heap,
            },
        }


@dataclass(frozen=True)
class EscapeEvalResult:
    """The full five-workload comparison plus its parameters."""

    scale: float
    threshold: int
    num_arenas: int
    arena_size: int
    rows: Tuple[EscapeEvalRow, ...]

    def to_dict(self) -> dict:
        return {
            "scale": self.scale,
            "threshold": self.threshold,
            "num_arenas": self.num_arenas,
            "arena_size": self.arena_size,
            "rows": [row.to_dict() for row in self.rows],
        }


def escape_eval(
    store,
    programs: Optional[Sequence[str]] = None,
    threshold: int = DEFAULT_THRESHOLD,
    num_arenas: int = DEFAULT_NUM_ARENAS,
    arena_size: int = DEFAULT_ARENA_SIZE,
) -> EscapeEvalResult:
    """Score static vs trained vs oracle over every workload.

    ``store`` is a :class:`~repro.analysis.experiments.TraceStore`; the
    trained predictor comes from its ``train`` execution and everything
    is evaluated on ``test``.  The oracle needs random access to object
    lifetimes, so its replay always materializes the evaluation trace —
    the streamed modes differ only in how the other replays are fed,
    never in what this function returns.
    """
    rows: List[EscapeEvalRow] = []
    for program in (programs if programs is not None else store.programs):
        with TRACER.span("escape.eval", cat="analysis", program=program):
            static_pred = store.static_predictor(program,
                                                 threshold=threshold)
            trained_pred = store.predictor(program, threshold=threshold)
            counts = {"short": 0, "escaping": 0, "unknown": 0}
            for cls in static_pred.classes.values():
                counts[cls] += 1
            static_eval = evaluate(
                static_pred, store.source(program, "test"))
            trained_eval = evaluate(
                trained_pred, store.source(program, "test"))
            static_spec = AllocatorSpec(
                num_arenas=num_arenas, arena_size=arena_size,
                threshold=threshold, predictor="static")
            trained_spec = AllocatorSpec(
                num_arenas=num_arenas, arena_size=arena_size,
                threshold=threshold)
            static_sim = simulate_spec(
                store.source(program, "test"), static_spec, static_pred)
            trained_sim = simulate_spec(
                store.source(program, "test"), trained_spec, trained_pred)
            oracle_sim = simulate_arena_oracle(
                store.trace(program, "test"), threshold=threshold,
                num_arenas=num_arenas, arena_size=arena_size)
        rows.append(
            EscapeEvalRow(
                program=program,
                class_counts=counts,
                static_eval=static_eval,
                trained_eval=trained_eval,
                static_heap=static_sim.max_heap_size,
                trained_heap=trained_sim.max_heap_size,
                oracle_heap=oracle_sim.max_heap_size,
            )
        )
    return EscapeEvalResult(
        scale=store.scale,
        threshold=threshold,
        num_arenas=num_arenas,
        arena_size=arena_size,
        rows=tuple(rows),
    )


def render_escape_eval(result: EscapeEvalResult) -> str:
    """The deterministic comparison table."""
    lines = [
        "Static escape analysis vs trained predictor vs oracle "
        f"(scale {result.scale:g}, threshold {result.threshold}, "
        f"{result.num_arenas}x{result.arena_size} arenas)",
        "",
        "            static sites          coverage %        accuracy %"
        "        arena max heap (bytes)",
        "program     short/escape/unk   static  trained   static  trained"
        "      static     trained      oracle",
    ]
    for row in result.rows:
        counts = row.class_counts
        sites = (
            f"{counts['short']}/{counts['escaping']}/{counts['unknown']}"
        )
        lines.append(
            f"{row.program:<10}  {sites:<15}"
            f"  {row.static_eval.predicted_pct:7.1f}"
            f"  {row.trained_eval.predicted_pct:7.1f}"
            f"  {100 * row.static_accuracy:7.1f}"
            f"  {100 * row.trained_accuracy:7.1f}"
            f"  {row.static_heap:>10,}  {row.trained_heap:>10,}"
            f"  {row.oracle_heap:>10,}"
        )
    return "\n".join(lines)
