"""Reference-locality measurement: the experiment the paper predicted.

§1 of the paper: "program reference locality is increased because the
short-lived objects (a large fraction of the total objects allocated) are
allocated in a small part of the heap, less than 100 kilobytes in all the
programs we measured."  Table 6's New Ref columns *predict* the effect;
this module measures it:

1. run a workload with touch recording on, so the trace carries the full
   reference timeline (alloc, free, and every heap reference in program
   order);
2. replay the timeline through an allocator, turning each event into the
   byte addresses the program would have touched under that allocator's
   placement;
3. feed the address stream to a simulated cache and compare miss rates
   across allocators.

Address model per event: an allocation writes the object's header and
payload once; a free reads/writes the header; a touch of count *n*
references *n* consecutive words of the object starting at a rotating
offset (successive touches walk the object, the dominant pattern for the
workloads' buffers and arrays).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from repro.alloc.base import Allocator
from repro.alloc.cache import CacheConfig, SetAssociativeCache
from repro.core.predictor import LifetimePredictor
from repro.alloc.spec import (
    BSD_SPEC,
    FIRSTFIT_SPEC,
    PAPER_DEFAULT_SPEC,
    build_allocator,
)
from repro.runtime.events import Trace
from repro.runtime.stream.protocol import (
    EV_ALLOC,
    EV_FREE,
    EventSource,
    as_event_source,
)

__all__ = [
    "LocalityResult",
    "measure_locality",
    "compare_locality",
    "prefragment",
]

#: Bytes referenced per touch unit (one 32-bit word, the workloads'
#: natural touch granularity).
WORD = 4


@dataclass(frozen=True)
class LocalityResult:
    """Cache behaviour of one allocator's placement for one trace."""

    allocator: str
    program: str
    accesses: int
    misses: int
    #: References landing below the region boundary passed to
    #: :func:`measure_locality` (the arena area, for the arena allocator).
    in_region: int = 0

    @property
    def miss_rate(self) -> float:
        """Cache miss rate over the whole reference stream."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    @property
    def in_region_fraction(self) -> float:
        """Fraction of references inside the boundary region.

        For the arena allocator this is the *measured* counterpart of the
        paper's New Ref prediction: the share of heap references that the
        64 KB arena area localizes.
        """
        if self.accesses == 0:
            return 0.0
        return self.in_region / self.accesses


def measure_locality(
    trace: Union[Trace, EventSource],
    allocator: Allocator,
    config: Optional[CacheConfig] = None,
    region_boundary: int = 0,
) -> LocalityResult:
    """Replay a trace's reference timeline under ``allocator``'s placement.

    The trace must have been recorded with ``record_touches=True``
    (otherwise only allocation/free references exist and the comparison
    is meaningless); a :class:`ValueError` guards against that mistake.

    Streams the event protocol: alloc events carry their own size and
    chain, so the per-object working set is the live-address/cursor maps.
    """
    source = as_event_source(trace)
    header = source.header
    if not header.has_touch_events:
        raise ValueError(
            "trace has no touch events; re-run the workload with "
            "record_touches=True"
        )
    chain_of = header.chains.chain
    cache = SetAssociativeCache(config)
    addresses: Dict[int, int] = {}
    cursors: Dict[int, int] = {}
    sizes: Dict[int, int] = {}
    in_region = 0
    for ev in source.events():
        tag = ev[0]
        obj_id = ev[1]
        if tag == EV_ALLOC:
            size = ev[3]
            addr = allocator.malloc(size, chain_of(ev[2]))
            addresses[obj_id] = addr
            sizes[obj_id] = size
            cursors[obj_id] = 0
            before = cache.accesses
            # Allocation initializes the object.
            cache.access_range(addr, size)
            if addr < region_boundary:
                in_region += cache.accesses - before
        elif tag == EV_FREE:
            addr = addresses.pop(obj_id)
            cache.access(addr)  # header read on free
            if addr < region_boundary:
                in_region += 1
            allocator.free(addr)
            cursors.pop(obj_id, None)
            sizes.pop(obj_id, None)
        else:  # touch
            addr = addresses.get(obj_id)
            if addr is None:
                continue  # touched after the tracer saw the free (no-op)
            count = ev[2]
            size = sizes[obj_id]
            offset = cursors[obj_id]
            before = cache.accesses
            cache.access_range(addr + offset % max(size, 1),
                               min(count * WORD, size))
            if addr < region_boundary:
                in_region += cache.accesses - before
            cursors[obj_id] = (offset + count * WORD) % max(size, 1)
    return LocalityResult(
        allocator=allocator.name,
        program=header.program,
        accesses=cache.accesses,
        misses=cache.misses,
        in_region=in_region,
    )


def compare_locality(
    trace: Union[Trace, EventSource],
    predictor: LifetimePredictor,
    config: Optional[CacheConfig] = None,
    prefragment_holes: int = 0,
) -> Dict[str, LocalityResult]:
    """Miss rates for first-fit, BSD, and the arena allocator on one trace.

    With ``prefragment_holes > 0`` each allocator's general heap is first
    driven into the fragmented state of a long-running program (see
    :func:`prefragment`): scattered free holes pinned apart by live
    objects.  This reconstructs the conditions under which the paper
    claims its locality win — under first-fit, short-lived objects then
    land all over the fragmented expanse, while the arena allocator keeps
    them inside its 64 KB area.
    """
    source = as_event_source(trace)
    firstfit = build_allocator(FIRSTFIT_SPEC)
    bsd = build_allocator(BSD_SPEC)
    arena = build_allocator(PAPER_DEFAULT_SPEC, predictor)
    if prefragment_holes:
        prefragment(firstfit, holes=prefragment_holes)
        prefragment(bsd, holes=prefragment_holes)
        prefragment(arena, holes=prefragment_holes)
    return {
        "first-fit": measure_locality(source, firstfit, config),
        "bsd": measure_locality(source, bsd, config),
        "arena": measure_locality(
            source, arena, config, region_boundary=arena.arena_area_size
        ),
    }


#: Chain used for pre-fragmentation pins; no trained predictor selects it,
#: so pins always land in the general heap.
_PIN_CHAIN = ("main", "startup", "pin")


def prefragment(
    allocator: Allocator,
    holes: int = 512,
    hole_size: int = 1024,
    pin_size: int = 48,
) -> None:
    """Drive an allocator's heap into a fragmented steady state.

    Allocates an alternating sequence of small *pins* and ``hole_size``
    blocks, then frees every hole: the heap becomes ``holes`` scattered
    free regions separated by live pins — the address-space shape a
    long-running program's general heap reaches (§5.2's "small short-lived
    objects ... polluting the address space occupied by long-lived
    objects", frozen as initial conditions).
    """
    pins = []
    gaps = []
    for _ in range(holes):
        pins.append(allocator.malloc(pin_size, _PIN_CHAIN))
        gaps.append(allocator.malloc(hole_size, _PIN_CHAIN))
    for gap in gaps:
        allocator.free(gap)
