"""Trace-driven allocator simulation.

The paper's §5.2 methodology: "we fed a trace of the program's allocation
events and a list of short-lived sites into a simulator of the prediction
algorithm.  The output of the simulator gives operation counts,
information about the fraction of objects and bytes allocated in arenas,
heap size, and fragmentation measurements."  This module is that
simulator driver: it replays a trace's alloc/free event sequence against
any of the allocator simulators and packages the measurements the tables
need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Union

from repro.alloc.arena import DEFAULT_ARENA_SIZE, DEFAULT_NUM_ARENAS
from repro.alloc.base import Allocator, OpCounts
from repro.alloc.costs import (
    DEFAULT_COST_MODEL,
    AllocatorCost,
    CostModel,
    arena_cost,
    bsd_cost,
    firstfit_cost,
)
from repro.alloc.spec import (
    BSD_SPEC,
    FIRSTFIT_SPEC,
    AllocatorSpec,
    build_allocator,
)
from repro.core.predictor import LifetimePredictor
from repro.obs.spans import TRACER
from repro.runtime.events import Trace
from repro.runtime.stream.protocol import (
    EV_FREE,
    EV_TOUCH,
    EventSource,
    as_event_source,
)

if TYPE_CHECKING:
    from repro.obs.telemetry import Telemetry

__all__ = [
    "SimulationResult",
    "replay",
    "simulate_spec",
    "simulate_firstfit",
    "simulate_bsd",
    "simulate_arena",
]


@dataclass(frozen=True)
class SimulationResult:
    """Measurements from replaying one trace against one allocator."""

    allocator: str
    program: str
    dataset: str
    max_heap_size: int
    final_live_bytes: int
    ops: OpCounts
    cost: AllocatorCost
    #: Arena-allocator extras (None for the baselines).
    general_ops: Optional[OpCounts] = None
    arena_allocs: int = 0
    arena_bytes: int = 0
    general_allocs: int = 0
    general_bytes: int = 0
    arena_area_size: int = 0

    @property
    def total_allocs(self) -> int:
        """Allocations replayed."""
        return self.ops.allocs

    @property
    def total_bytes(self) -> int:
        """Bytes requested across the replay."""
        return self.ops.bytes_requested

    @property
    def arena_alloc_pct(self) -> float:
        """Percent of allocations served from arenas (Table 7)."""
        return _pct(self.arena_allocs, self.total_allocs)

    @property
    def arena_byte_pct(self) -> float:
        """Percent of bytes served from arenas (Table 7)."""
        return _pct(self.arena_bytes, self.total_bytes)


def replay(trace: Union[Trace, EventSource], allocator: Allocator,
           check_invariants: bool = False,
           telemetry: Optional["Telemetry"] = None) -> None:
    """Drive ``allocator`` with a trace's event sequence.

    ``trace`` is an in-memory :class:`Trace` or any
    :class:`~repro.runtime.stream.protocol.EventSource` (e.g. a v3 trace
    file opened with :func:`~repro.runtime.tracefile.open_trace_stream`);
    replay memory is the source's — for a streamed file, the live
    address map plus one chunk.  Alloc events carry their own size and
    chain id, so the loop never consults an object table.

    With ``check_invariants`` the allocator is audited after every 4096
    events — slow, used by the integration tests.

    ``telemetry`` attaches a :class:`~repro.obs.telemetry.Telemetry`
    recorder for the duration of the replay: the allocator reports every
    operation through its probe and the recorder samples the heap gauges
    every ``telemetry.interval`` allocations.  The replay loop itself is
    untouched — with ``telemetry=None`` (the default) this function is
    byte-for-byte the uninstrumented hot path.
    """
    source = as_event_source(trace)
    header = source.header
    if telemetry is not None:
        telemetry.attach(
            allocator, program=header.program, dataset=header.dataset
        )
    with TRACER.span("simulate.replay", cat="simulate",
                     allocator=allocator.name, program=header.program,
                     dataset=header.dataset):
        chain_of = header.chains.chain
        addresses = {}
        step = 0
        for ev in source.events():
            tag = ev[0]
            if tag == EV_TOUCH:  # touch events carry no allocator work
                continue
            if tag == EV_FREE:
                allocator.free(addresses.pop(ev[1]))
            else:
                addresses[ev[1]] = allocator.malloc(ev[3], chain_of(ev[2]))
            step += 1
            if check_invariants and step % 4096 == 0:
                allocator.check_invariants()
        if check_invariants:
            allocator.check_invariants()
    if telemetry is not None:
        telemetry.finish()


def _result_name(spec: AllocatorSpec) -> str:
    """The result's allocator label (kept stable for every renderer)."""
    if spec.kind == "firstfit":
        return "first-fit"
    if spec.kind == "bsd":
        return "bsd"
    if spec.kind == "multiarena":
        return f"multi-arena ({spec.strategy})"
    return f"arena ({spec.strategy})"


def simulate_spec(
    trace: Union[Trace, EventSource],
    spec: AllocatorSpec,
    predictor: Optional[LifetimePredictor] = None,
    model: CostModel = DEFAULT_COST_MODEL,
    telemetry: Optional["Telemetry"] = None,
) -> SimulationResult:
    """Replay a trace against the allocator an :class:`AllocatorSpec`
    describes.

    This is the single construction path: the allocator comes out of
    :func:`~repro.alloc.spec.build_allocator`, so every consumer —
    tables, bench, stats, the design-space search — replays exactly the
    configuration the spec hashes to.  ``predictor`` is the resolved
    predictor object for the arena kinds (see
    :meth:`~repro.analysis.experiments.TraceStore.predictor_for`).
    """
    source = as_event_source(trace)
    allocator = build_allocator(spec, predictor)
    replay(source, allocator, telemetry=telemetry)
    name = _result_name(spec)
    common = dict(
        allocator=name,
        program=source.header.program,
        dataset=source.header.dataset,
        max_heap_size=allocator.max_heap_size,
        final_live_bytes=allocator.live_bytes,
        ops=allocator.ops.snapshot(),
    )
    if spec.kind == "firstfit":
        return SimulationResult(
            cost=firstfit_cost(allocator.ops, model), **common
        )
    if spec.kind == "bsd":
        return SimulationResult(cost=bsd_cost(allocator.ops, model), **common)
    cost = arena_cost(
        allocator.ops,
        allocator.general.ops,
        strategy=spec.strategy,
        total_calls=source.summary.total_calls,
        model=model,
    )
    area_size = (
        allocator.total_area_size if spec.kind == "multiarena"
        else allocator.arena_area_size
    )
    return SimulationResult(
        cost=cost,
        general_ops=allocator.general.ops.snapshot(),
        arena_allocs=allocator.ops.arena_allocs,
        arena_bytes=allocator.arena_bytes,
        general_allocs=allocator.ops.allocs - allocator.ops.arena_allocs,
        general_bytes=allocator.general_bytes,
        arena_area_size=area_size,
        **common,
    )


def simulate_firstfit(
    trace: Union[Trace, EventSource], model: CostModel = DEFAULT_COST_MODEL,
    telemetry: Optional["Telemetry"] = None,
) -> SimulationResult:
    """Replay a trace against the Knuth first-fit baseline."""
    return simulate_spec(trace, FIRSTFIT_SPEC, model=model,
                         telemetry=telemetry)


def simulate_bsd(
    trace: Union[Trace, EventSource], model: CostModel = DEFAULT_COST_MODEL,
    telemetry: Optional["Telemetry"] = None,
) -> SimulationResult:
    """Replay a trace against the BSD power-of-two baseline."""
    return simulate_spec(trace, BSD_SPEC, model=model, telemetry=telemetry)


def simulate_arena(
    trace: Union[Trace, EventSource],
    predictor: LifetimePredictor,
    num_arenas: int = DEFAULT_NUM_ARENAS,
    arena_size: int = DEFAULT_ARENA_SIZE,
    strategy: str = "len4",
    model: CostModel = DEFAULT_COST_MODEL,
    telemetry: Optional["Telemetry"] = None,
) -> SimulationResult:
    """Replay a trace against the lifetime-predicting arena allocator.

    ``strategy`` picks the chain-identification cost model (``"len4"`` or
    ``"cce"``); it does not change placement, matching the paper, where
    both Table 9 arena columns describe the same allocation behaviour.
    """
    spec = AllocatorSpec(
        num_arenas=num_arenas, arena_size=arena_size, strategy=strategy,
        threshold=getattr(predictor, "threshold", None) or 32 * 1024,
    )
    return simulate_spec(trace, spec, predictor=predictor, model=model,
                         telemetry=telemetry)


def _pct(numerator: int, denominator: int) -> float:
    if denominator == 0:
        return 0.0
    return 100.0 * numerator / denominator
