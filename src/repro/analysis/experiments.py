"""Experiment orchestration: cached traces and trained predictors.

Running a workload is the expensive step of every experiment, and most
tables need the same executions, so a :class:`TraceStore` runs each
(program, dataset) once per scale and caches the trace and any predictors
trained from it.  The benchmarks, CLI, and examples all share one store
per process.

Two layers back the store:

* an in-process dictionary (as before), and
* the persistent :class:`~repro.analysis.trace_cache.TraceCache`, enabled
  by default, so *other* processes — pytest workers, benchmark sessions,
  repeated CLI invocations — load a gzipped trace in milliseconds instead
  of re-running the workload.  Disable with ``use_cache=False`` or the
  ``REPRO_NO_CACHE`` environment variable.

:meth:`TraceStore.warm` fans the 5 programs × 2 datasets out across
worker processes (``jobs > 1``); workers publish traces through the disk
cache, which is also how ``repro-alloc table --jobs N`` shares one set of
executions between table worker processes.

Following the paper's methodology note — "the performance results
presented apply to the largest of the input sets in all cases" — every
table evaluates on the ``test`` dataset; *self* prediction trains on that
same execution, *true* prediction trains on ``train``.
"""

from __future__ import annotations

import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.obs.metrics import METRICS, Metrics
from repro.obs.spans import TRACER
from repro.analysis.trace_cache import TraceCache, cache_disabled_by_env
from repro.core.cce import CCEPredictor, train_cce_predictor
from repro.core.predictor import (
    DEFAULT_THRESHOLD,
    TRUE_PREDICTION_ROUNDING,
    SitePredictor,
    train_site_predictor,
)
from repro.core.sites import FULL_CHAIN
from repro.runtime.events import Trace
from repro.runtime.stream.protocol import EventSource, TraceEventSource
from repro.workloads.registry import PROGRAM_ORDER, run_workload

__all__ = ["TraceStore", "WarmResult", "EVAL_DATASET", "TRAIN_DATASET"]

#: The dataset every table evaluates on (the paper's "largest input").
EVAL_DATASET = "test"
#: The dataset true prediction trains on.
TRAIN_DATASET = "train"


@dataclass(frozen=True)
class WarmResult:
    """Outcome of warming one (program, dataset) execution.

    ``source`` is ``"memory"`` (already in this store), ``"disk"`` (loaded
    from the persistent cache), or ``"run"`` (the workload executed).
    """

    program: str
    dataset: str
    source: str
    seconds: float


def _warm_worker(
    program: str, dataset: str, scale: float, cache_dir: str
) -> Tuple[WarmResult, dict]:
    """Child-process body of a parallel warm: trace via the disk cache.

    Returns the warm outcome *and* a :meth:`Metrics.to_dict` snapshot of
    everything the worker measured (cache loads/stores, workload runs) so
    the parent can :meth:`Metrics.merge` it — process-pool workers get
    their own ``METRICS`` registry, and without the snapshot their
    timings would silently vanish from the session report.
    """
    metrics = Metrics()
    cache = TraceCache(cache_dir, metrics=metrics)
    start = time.perf_counter()
    if cache.load(program, dataset, scale) is not None:
        result = WarmResult(
            program, dataset, "disk", time.perf_counter() - start
        )
        return result, metrics.to_dict()
    with metrics.stage("workload.run"):
        trace = run_workload(program, dataset, scale=scale)
    cache.store(trace, scale)
    result = WarmResult(program, dataset, "run", time.perf_counter() - start)
    return result, metrics.to_dict()


class TraceStore:
    """Caches workload traces and trained predictors for one scale.

    ``cache`` injects a ready :class:`TraceCache`; otherwise one is built
    over ``cache_dir`` (default ``$REPRO_CACHE_DIR`` or
    ``~/.cache/repro-alloc``) unless ``use_cache=False`` or
    ``REPRO_NO_CACHE`` is set.  Timings and hit/miss counts go to
    ``metrics`` (the process-wide default when omitted).

    With ``streaming=True`` the store hands consumers
    :class:`~repro.runtime.stream.protocol.EventSource` views that replay
    the cached v3 files chunk by chunk (see :meth:`source`) instead of
    retaining materialized traces, keeping the whole pipeline's footprint
    at O(live objects + one chunk) per execution.  :meth:`trace` still
    materializes on demand for the few consumers that need random access
    (e.g. the oracle simulation).

    ``jobs > 1`` (streaming mode only) upgrades every file-backed source
    to a :class:`~repro.runtime.shard.ShardedTraceSource`, which decodes
    chunks in a process pool and unlocks the map/reduce fold path in
    predictor training and evaluation — byte-identical results, less
    wall clock.
    """

    def __init__(
        self,
        scale: float = 1.0,
        *,
        cache: Optional[TraceCache] = None,
        cache_dir: Union[str, None] = None,
        use_cache: bool = True,
        metrics: Optional[Metrics] = None,
        streaming: bool = False,
        jobs: int = 1,
        predictor_mode: str = "trained",
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if predictor_mode not in ("trained", "static"):
            raise ValueError(
                f"predictor_mode must be 'trained' or 'static', "
                f"got {predictor_mode!r}"
            )
        self.scale = scale
        self.streaming = streaming
        self.jobs = jobs
        self.predictor_mode = predictor_mode
        self._metrics = metrics if metrics is not None else METRICS
        if cache is not None:
            self._cache: Optional[TraceCache] = cache
        elif use_cache and not cache_disabled_by_env():
            self._cache = TraceCache(cache_dir, metrics=self._metrics)
        else:
            self._cache = None
        self._traces: Dict[Tuple[str, str], Trace] = {}
        self._site_predictors: Dict[tuple, SitePredictor] = {}
        self._cce_predictors: Dict[tuple, CCEPredictor] = {}
        self._static_predictors: Dict[tuple, "StaticEscapePredictor"] = {}
        self._multiclass_predictors: Dict[tuple, object] = {}

    @property
    def programs(self) -> list:
        """The five programs in the paper's table order."""
        return list(PROGRAM_ORDER)

    @property
    def cache(self) -> Optional[TraceCache]:
        """The persistent trace cache, or ``None`` when disabled."""
        return self._cache

    def trace(self, program: str, dataset: str = EVAL_DATASET) -> Trace:
        """The (cached) trace of one workload execution.

        Resolution order: this store's memory, the persistent disk cache,
        then a fresh workload run (which also populates the disk cache).
        """
        key = (program, dataset)
        if key not in self._traces:
            trace = None
            if self._cache is not None:
                trace = self._cache.load(program, dataset, self.scale)
            if trace is None:
                with TRACER.span("workload.run", cat="workload",
                                 program=program, dataset=dataset,
                                 scale=self.scale), \
                        self._metrics.stage("workload.run"):
                    trace = run_workload(program, dataset, scale=self.scale)
                if self._cache is not None:
                    self._cache.store(trace, self.scale)
            self._traces[key] = trace
        return self._traces[key]

    def source(self, program: str, dataset: str = EVAL_DATASET) -> EventSource:
        """An event-stream view of one workload execution.

        In the default (materialized) mode this wraps :meth:`trace`, so it
        costs nothing beyond that call.  In streaming mode the resolution
        order mirrors :meth:`trace` but never materializes: a trace
        already in this store's memory is wrapped; otherwise the disk
        cache's v3 entry is opened as a chunked file stream; on a miss the
        workload runs once, publishes its trace to the cache, and the
        *file* is streamed back rather than the run's trace being
        retained.  Only with the cache disabled does streaming mode fall
        back to wrapping the in-memory run (without retaining it).
        """
        key = (program, dataset)
        if not self.streaming or key in self._traces:
            return TraceEventSource(self.trace(program, dataset))
        if self._cache is not None:
            source = self._cache.open_stream(program, dataset, self.scale)
            if source is not None:
                return self._shard(source)
        with TRACER.span("workload.run", cat="workload", program=program,
                         dataset=dataset, scale=self.scale), \
                self._metrics.stage("workload.run"):
            trace = run_workload(program, dataset, scale=self.scale)
        if self._cache is not None:
            self._cache.store(trace, self.scale)
            source = self._cache.open_stream(program, dataset, self.scale)
            if source is not None:
                return self._shard(source)
        return TraceEventSource(trace)

    def _shard(self, source: EventSource) -> EventSource:
        """Upgrade a v3 file source to sharded replay when ``jobs > 1``.

        Only chunked file streams can shard; anything else (an in-memory
        wrap) passes through untouched, so ``jobs`` never changes what a
        consumer sees — only how fast it sees it.
        """
        if self.jobs <= 1:
            return source
        from repro.runtime.stream.v3 import TraceFileSource

        if not isinstance(source, TraceFileSource):
            return source
        from repro.runtime.shard import ShardedTraceSource

        return ShardedTraceSource(source.path, jobs=self.jobs)

    def predictor(
        self,
        program: str,
        train_dataset: str = TRAIN_DATASET,
        threshold: int = DEFAULT_THRESHOLD,
        chain_length: Optional[int] = FULL_CHAIN,
        size_rounding: int = TRUE_PREDICTION_ROUNDING,
    ) -> SitePredictor:
        """A (cached) site predictor trained on one execution.

        With ``predictor_mode="static"`` the profiling run is skipped
        entirely and the escape analysis's predictor is returned instead
        (``train_dataset``, ``chain_length`` and ``size_rounding`` do not
        apply — the static DB fixes its own key space).
        """
        if self.predictor_mode == "static":
            return self.static_predictor(program, threshold=threshold)
        key = (program, train_dataset, threshold, chain_length, size_rounding)
        if key not in self._site_predictors:
            source = self.source(program, train_dataset)
            with TRACER.span("predictor.train", cat="core",
                             program=program, dataset=train_dataset):
                self._site_predictors[key] = train_site_predictor(
                    source,
                    threshold=threshold,
                    chain_length=chain_length,
                    size_rounding=size_rounding,
                )
        return self._site_predictors[key]

    def cce_predictor(
        self,
        program: str,
        train_dataset: str = TRAIN_DATASET,
        threshold: int = DEFAULT_THRESHOLD,
        size_rounding: int = TRUE_PREDICTION_ROUNDING,
    ) -> CCEPredictor:
        """A (cached) call-chain-encryption predictor."""
        key = (program, train_dataset, threshold, size_rounding)
        if key not in self._cce_predictors:
            self._cce_predictors[key] = train_cce_predictor(
                self.source(program, train_dataset), threshold=threshold,
                size_rounding=size_rounding,
            )
        return self._cce_predictors[key]

    def static_predictor(
        self, program: str, threshold: int = DEFAULT_THRESHOLD
    ) -> "StaticEscapePredictor":
        """The (cached) profile-free escape-analysis predictor.

        Requires no trace at all — the workload sources are analyzed
        directly, so this is available before any execution is cached.
        """
        key = (program, threshold)
        if key not in self._static_predictors:
            from repro.static.escape import build_escape_db

            with TRACER.span("predictor.static", cat="core",
                             program=program):
                self._static_predictors[key] = build_escape_db(
                    program, threshold=threshold
                ).to_predictor()
        return self._static_predictors[key]

    def self_predictor(self, program: str, **kwargs) -> SitePredictor:
        """A predictor trained on the evaluation execution itself."""
        return self.predictor(program, train_dataset=EVAL_DATASET, **kwargs)

    def predictor_for(self, program: str, spec):
        """Resolve the predictor an :class:`~repro.alloc.AllocatorSpec`
        asks for, ready to pass to
        :func:`~repro.alloc.spec.build_allocator`.

        The spec's ``predictor`` field names the resolution mode
        (``trained``/``self``/``static``/``cce``/``none``) and its
        prediction parameters (``threshold``, ``chain_length``,
        ``size_rounding``, ``class_thresholds``) pick the exact predictor
        — every path lands in this store's caches, so a search over many
        specs trains each distinct predictor once.
        """
        mode = spec.predictor
        if mode == "none" or spec.kind in ("firstfit", "bsd"):
            return None
        train_dataset = EVAL_DATASET if mode == "self" else TRAIN_DATASET
        if spec.kind == "multiarena":
            from repro.core.multiclass import train_multiclass_predictor

            key = (program, train_dataset, spec.class_thresholds,
                   spec.chain_length, spec.size_rounding)
            if key not in self._multiclass_predictors:
                self._multiclass_predictors[key] = (
                    train_multiclass_predictor(
                        self.trace(program, train_dataset),
                        thresholds=spec.class_thresholds,
                        chain_length=spec.chain_length,
                        size_rounding=spec.size_rounding,
                    )
                )
            return self._multiclass_predictors[key]
        if mode == "static":
            return self.static_predictor(program, threshold=spec.threshold)
        if mode == "cce":
            return self.cce_predictor(
                program, threshold=spec.threshold,
                size_rounding=spec.size_rounding,
            )
        return self.predictor(
            program,
            train_dataset=train_dataset,
            threshold=spec.threshold,
            chain_length=spec.chain_length,
            size_rounding=spec.size_rounding,
        )

    # ------------------------------------------------------------------
    # Warming
    # ------------------------------------------------------------------

    def warm_pairs(self) -> List[Tuple[str, str]]:
        """Every (program, dataset) execution the tables need."""
        return [
            (program, dataset)
            for program in PROGRAM_ORDER
            for dataset in (TRAIN_DATASET, EVAL_DATASET)
        ]

    def warm(self, jobs: Optional[int] = None) -> List[WarmResult]:
        """Run every program's train and test executions now.

        With ``jobs > 1`` and the disk cache enabled, executions fan out
        across a :class:`~concurrent.futures.ProcessPoolExecutor`; workers
        publish traces through the cache (memory in this process stays
        lazy — the next :meth:`trace` call is a disk hit).  Without a
        cache there is nowhere for workers to hand traces back, so the
        warm runs serially in-process — with an explicit stderr notice,
        so ``jobs > 1`` is never a silent no-op.  Returns one
        :class:`WarmResult` per execution.
        """
        pairs = self.warm_pairs()
        results: List[WarmResult] = []
        with TRACER.span("warm", cat="pipeline", scale=self.scale), \
                self._metrics.stage("warm"):
            if jobs and jobs > 1 and self._cache is not None:
                self._cache.directory.mkdir(parents=True, exist_ok=True)
                with ProcessPoolExecutor(max_workers=jobs) as pool:
                    futures = [
                        pool.submit(
                            _warm_worker,
                            program,
                            dataset,
                            self.scale,
                            str(self._cache.directory),
                        )
                        for program, dataset in pairs
                    ]
                    for future in as_completed(futures):
                        result, worker_metrics = future.result()
                        self._metrics.merge(worker_metrics)
                        self._metrics.incr(f"warm.{result.source}")
                        results.append(result)
                order = {pair: i for i, pair in enumerate(pairs)}
                results.sort(key=lambda r: order[(r.program, r.dataset)])
            else:
                if jobs and jobs > 1:
                    print(
                        "warm: parallel warming needs the persistent trace "
                        "cache to share traces across workers; cache "
                        "disabled, warming serially in-process",
                        file=sys.stderr,
                    )
                for program, dataset in pairs:
                    start = time.perf_counter()
                    if (program, dataset) in self._traces:
                        source = "memory"
                    elif self._cache is not None and self._cache.has(
                        program, dataset, self.scale
                    ):
                        source = "disk"
                    else:
                        source = "run"
                    self.trace(program, dataset)
                    self._metrics.incr(f"warm.{source}")
                    results.append(
                        WarmResult(
                            program,
                            dataset,
                            source,
                            time.perf_counter() - start,
                        )
                    )
        return results
