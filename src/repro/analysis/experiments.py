"""Experiment orchestration: cached traces and trained predictors.

Running a workload is the expensive step of every experiment, and most
tables need the same executions, so a :class:`TraceStore` runs each
(program, dataset) once per scale and caches the trace and any predictors
trained from it.  The benchmarks, CLI, and examples all share one store
per process.

Following the paper's methodology note — "the performance results
presented apply to the largest of the input sets in all cases" — every
table evaluates on the ``test`` dataset; *self* prediction trains on that
same execution, *true* prediction trains on ``train``.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.cce import CCEPredictor, train_cce_predictor
from repro.core.predictor import (
    DEFAULT_THRESHOLD,
    TRUE_PREDICTION_ROUNDING,
    SitePredictor,
    train_site_predictor,
)
from repro.core.sites import FULL_CHAIN
from repro.runtime.events import Trace
from repro.workloads.registry import PROGRAM_ORDER, run_workload

__all__ = ["TraceStore", "EVAL_DATASET", "TRAIN_DATASET"]

#: The dataset every table evaluates on (the paper's "largest input").
EVAL_DATASET = "test"
#: The dataset true prediction trains on.
TRAIN_DATASET = "train"


class TraceStore:
    """Caches workload traces and trained predictors for one scale."""

    def __init__(self, scale: float = 1.0):
        self.scale = scale
        self._traces: Dict[Tuple[str, str], Trace] = {}
        self._site_predictors: Dict[tuple, SitePredictor] = {}
        self._cce_predictors: Dict[tuple, CCEPredictor] = {}

    @property
    def programs(self) -> list:
        """The five programs in the paper's table order."""
        return list(PROGRAM_ORDER)

    def trace(self, program: str, dataset: str = EVAL_DATASET) -> Trace:
        """The (cached) trace of one workload execution."""
        key = (program, dataset)
        if key not in self._traces:
            self._traces[key] = run_workload(
                program, dataset, scale=self.scale
            )
        return self._traces[key]

    def predictor(
        self,
        program: str,
        train_dataset: str = TRAIN_DATASET,
        threshold: int = DEFAULT_THRESHOLD,
        chain_length: Optional[int] = FULL_CHAIN,
        size_rounding: int = TRUE_PREDICTION_ROUNDING,
    ) -> SitePredictor:
        """A (cached) site predictor trained on one execution."""
        key = (program, train_dataset, threshold, chain_length, size_rounding)
        if key not in self._site_predictors:
            self._site_predictors[key] = train_site_predictor(
                self.trace(program, train_dataset),
                threshold=threshold,
                chain_length=chain_length,
                size_rounding=size_rounding,
            )
        return self._site_predictors[key]

    def cce_predictor(
        self,
        program: str,
        train_dataset: str = TRAIN_DATASET,
        threshold: int = DEFAULT_THRESHOLD,
    ) -> CCEPredictor:
        """A (cached) call-chain-encryption predictor."""
        key = (program, train_dataset, threshold)
        if key not in self._cce_predictors:
            self._cce_predictors[key] = train_cce_predictor(
                self.trace(program, train_dataset), threshold=threshold
            )
        return self._cce_predictors[key]

    def self_predictor(self, program: str, **kwargs) -> SitePredictor:
        """A predictor trained on the evaluation execution itself."""
        return self.predictor(program, train_dataset=EVAL_DATASET, **kwargs)

    def warm(self) -> None:
        """Run every program's train and test executions now."""
        for program in PROGRAM_ORDER:
            self.trace(program, TRAIN_DATASET)
            self.trace(program, EVAL_DATASET)
