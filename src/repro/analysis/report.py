"""Text rendering of the reproduced tables.

Formats the row objects from :mod:`repro.analysis.tables` as the aligned
text tables the benchmark harness prints, with the same columns (and
units) the paper uses so EXPERIMENTS.md comparisons can be made by eye.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.tables import (
    TABLE6_LENGTHS,
    Table1Row,
    Table2Row,
    Table3Row,
    Table4Row,
    Table5Row,
    Table6Row,
    Table7Row,
    Table8Row,
    Table9Row,
)

__all__ = [
    "render_table1",
    "render_table2", "render_table3", "render_table4", "render_table5",
    "render_table6", "render_table7", "render_table8", "render_table9",
]


def _render(headers: Sequence[str], rows: List[Sequence[str]],
             title: str) -> str:
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows))
        for i in range(len(headers))
    ]
    lines = [title]
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_table1(rows: List[Table1Row]) -> str:
    """Table 1: the test programs and their inputs."""
    lines = ["Table 1: general information about the test programs"]
    for r in rows:
        lines.append(f"  {r.program}:")
        lines.append(f"    {r.description}")
        lines.append(f"    train input: {r.train_input}")
        lines.append(f"    test input:  {r.test_input}")
        lines.append(f"    relation:    {r.input_relation}")
    return "\n".join(lines)


def render_table2(rows: List[Table2Row]) -> str:
    """Table 2: program allocation behaviour."""
    return _render(
        ["Program", "Instr(M)", "Calls(K)", "Bytes(K)", "Objects(K)",
         "MaxBytes(K)", "MaxObjects", "HeapRefs(%)"],
        [
            [
                r.program,
                f"{r.instructions / 1e6:.1f}",
                f"{r.function_calls / 1e3:.1f}",
                f"{r.total_bytes / 1e3:.0f}",
                f"{r.total_objects / 1e3:.1f}",
                f"{r.max_bytes / 1e3:.0f}",
                f"{r.max_objects}",
                f"{r.heap_ref_pct:.0f}",
            ]
            for r in rows
        ],
        "Table 2: memory allocation behaviour of the test programs",
    )


def render_table3(rows: List[Table3Row]) -> str:
    """Table 3: object lifetime quartiles."""
    return _render(
        ["Program", "0%(min)", "25%", "50%(median)", "75%", "100%(max)"],
        [
            [r.program] + [f"{q:,}" for q in r.byte_quantiles]
            for r in rows
        ],
        "Table 3: quantile histogram of object lifetimes (bytes, "
        "byte-weighted)",
    )


def render_table4(rows: List[Table4Row]) -> str:
    """Table 4: self and true prediction by site and size."""
    return _render(
        ["Program", "Sites", "Actual(%)",
         "SelfUsed", "SelfPred(%)", "SelfErr(%)",
         "TrueUsed", "TruePred(%)", "TrueErr(%)"],
        [
            [
                r.program,
                f"{r.total_sites}",
                f"{r.actual_pct:.0f}",
                f"{r.self_sites_used}",
                f"{r.self_predicted_pct:.1f}",
                f"{r.self_error_pct:.2f}",
                f"{r.true_sites_used}",
                f"{r.true_predicted_pct:.1f}",
                f"{r.true_error_pct:.2f}",
            ]
            for r in rows
        ],
        "Table 4: bytes predicted short-lived from allocation site and size",
    )


def render_table5(rows: List[Table5Row]) -> str:
    """Table 5: size-only prediction."""
    return _render(
        ["Program", "Actual(%)", "Predicted(%)", "SizesUsed"],
        [
            [
                r.program,
                f"{r.actual_pct:.0f}",
                f"{r.predicted_pct:.0f}",
                f"{r.sizes_used}",
            ]
            for r in rows
        ],
        "Table 5: bytes predicted short-lived from object size alone",
    )


def render_table6(rows: List[Table6Row]) -> str:
    """Table 6: effect of call-chain length."""
    headers = ["Length"]
    for row in rows:
        headers += [f"{row.program}(%)", "NewRef(%)"]
    body = []
    for length in TABLE6_LENGTHS:
        label = "inf" if length is None else str(length)
        line = [label]
        for row in rows:
            predicted, newref = row.by_length[length]
            knee = row.knee()
            cell = f"({predicted:.0f})" if length == knee else f"{predicted:.0f}"
            line += [cell, f"{newref:.0f}"]
        body.append(line)
    return _render(
        headers, body,
        "Table 6: short-lived prediction vs call-chain length "
        "(parentheses mark the abrupt-improvement length)",
    )


def render_table7(rows: List[Table7Row]) -> str:
    """Table 7: arena capture fractions."""
    return _render(
        ["Program", "Allocs(K)", "Arena(%)", "NonArena(%)",
         "Bytes(K)", "ArenaB(%)", "NonArenaB(%)"],
        [
            [
                r.program,
                f"{r.total_allocs / 1e3:.1f}",
                f"{r.arena_alloc_pct:.1f}",
                f"{r.non_arena_alloc_pct:.1f}",
                f"{r.total_bytes / 1e3:.0f}",
                f"{r.arena_byte_pct:.1f}",
                f"{r.non_arena_byte_pct:.1f}",
            ]
            for r in rows
        ],
        "Table 7: objects and bytes allocated in arenas (true prediction)",
    )


def render_table8(rows: List[Table8Row]) -> str:
    """Table 8: maximum heap sizes."""
    return _render(
        ["Program", "FirstFit(K)", "SelfArena(K)", "Self/FF(%)",
         "TrueArena(K)", "True/FF(%)"],
        [
            [
                r.program,
                f"{r.firstfit_heap / 1024:.0f}",
                f"{r.self_arena_heap / 1024:.0f}",
                f"{r.self_ratio_pct:.1f}",
                f"{r.true_arena_heap / 1024:.0f}",
                f"{r.true_ratio_pct:.1f}",
            ]
            for r in rows
        ],
        "Table 8: maximum heap sizes, first-fit vs lifetime-predicting arena",
    )


def render_table9(rows: List[Table9Row]) -> str:
    """Table 9: instructions per allocate/free."""
    headers = ["Program"]
    for name in ("bsd", "ff", "len4", "cce"):
        headers += [f"{name}:a", f"{name}:f", f"{name}:a+f"]
    body = []
    for r in rows:
        line = [r.program]
        for pair in (r.bsd, r.firstfit, r.arena_len4, r.arena_cce):
            line += [
                f"{pair[0]:.0f}",
                f"{pair[1]:.0f}",
                f"{pair[0] + pair[1]:.0f}",
            ]
        body.append(line)
    return _render(
        headers, body,
        "Table 9: average instructions per allocate and free "
        "(arena rows use true prediction)",
    )
