"""Compatibility alias: the metrics registry now lives in ``repro.obs``.

The pipeline instrumentation grew into the shared observability layer
(:mod:`repro.obs.metrics`), which both the experiment pipeline and the
simulation telemetry write into.  Importing from this module keeps every
historical ``repro.analysis.metrics`` / ``repro.analysis.METRICS`` client
working and, crucially, yields the *same* process-wide registry object.
"""

from repro.obs.metrics import METRICS, Metrics, StageTiming

__all__ = ["Metrics", "StageTiming", "METRICS"]
