"""DEPRECATED compatibility alias: use :mod:`repro.obs.metrics` instead.

The pipeline instrumentation grew into the shared observability layer
(:mod:`repro.obs.metrics`), which both the experiment pipeline and the
simulation telemetry write into.  Every internal import has been migrated
to ``repro.obs.metrics``; this shim remains only so historical external
``repro.analysis.metrics`` / ``repro.analysis.METRICS`` clients keep
working and, crucially, keep receiving the *same* process-wide registry
object.  It will be removed in a future major version — import
:data:`~repro.obs.metrics.METRICS` from :mod:`repro.obs.metrics` (or the
:mod:`repro.obs` package) in new code.
"""

import warnings

from repro.obs.metrics import METRICS, Metrics, StageTiming

__all__ = ["Metrics", "StageTiming", "METRICS"]

warnings.warn(
    "repro.analysis.metrics is deprecated; import METRICS/Metrics/"
    "StageTiming from repro.obs.metrics instead",
    DeprecationWarning,
    stacklevel=2,
)
