"""Lightweight timing and counter instrumentation for the pipeline.

Every expensive stage of the experiment pipeline (workload execution,
trace-cache loads and stores, table computation) records its wall time and
event counts here, so speedups are *measured*, not asserted.  The CLI's
``warm -v`` prints the report, and the benchmarks import :data:`METRICS`
to surface cache behaviour across sessions.

The design is deliberately tiny: a :class:`Metrics` object holds named
stage timings (call count + total seconds) and named counters.  A single
process-wide instance, :data:`METRICS`, is the default sink; components
accept a ``metrics`` argument so tests can isolate their measurements.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

__all__ = ["Metrics", "StageTiming", "METRICS"]


@dataclass
class StageTiming:
    """Aggregate wall time of one named pipeline stage."""

    calls: int = 0
    seconds: float = 0.0

    @property
    def mean(self) -> float:
        """Mean seconds per call (0.0 before the first call)."""
        return self.seconds / self.calls if self.calls else 0.0


class Metrics:
    """Named wall-time accumulators and event counters."""

    def __init__(self) -> None:
        self._timings: Dict[str, StageTiming] = {}
        self._counters: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time the enclosed block under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - start)

    def add_time(self, name: str, seconds: float) -> None:
        """Add one timed call of ``seconds`` to stage ``name``."""
        timing = self._timings.setdefault(name, StageTiming())
        timing.calls += 1
        timing.seconds += seconds

    def incr(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        self._counters[name] = self._counters.get(name, 0) + amount

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def timing(self, name: str) -> StageTiming:
        """The timing for stage ``name`` (zeros if never recorded)."""
        return self._timings.get(name, StageTiming())

    def counter(self, name: str) -> int:
        """The value of counter ``name`` (0 if never incremented)."""
        return self._counters.get(name, 0)

    @property
    def timings(self) -> Dict[str, StageTiming]:
        """Snapshot of all stage timings."""
        return dict(self._timings)

    @property
    def counters(self) -> Dict[str, int]:
        """Snapshot of all counters."""
        return dict(self._counters)

    def reset(self) -> None:
        """Drop all recorded timings and counters."""
        self._timings.clear()
        self._counters.clear()

    def report(self, title: Optional[str] = None) -> str:
        """A human-readable summary of every timing and counter."""
        lines = []
        if title:
            lines.append(title)
        if self._timings:
            width = max(len(name) for name in self._timings)
            for name in sorted(self._timings):
                timing = self._timings[name]
                lines.append(
                    f"  {name:<{width}}  {timing.seconds:8.3f}s"
                    f"  ({timing.calls} calls, {timing.mean:.3f}s/call)"
                )
        if self._counters:
            width = max(len(name) for name in self._counters)
            for name in sorted(self._counters):
                lines.append(f"  {name:<{width}}  {self._counters[name]}")
        if len(lines) == (1 if title else 0):
            lines.append("  (no measurements recorded)")
        return "\n".join(lines)


#: Process-wide default sink shared by the CLI, TraceStore, and benchmarks.
METRICS = Metrics()
