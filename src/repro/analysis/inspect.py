"""Trace inspection reports for the CLI.

Human-oriented views of a single trace: the overall lifetime distribution
(a one-program Table 3) and the highest-volume allocation sites with
their quartiles and short-lived verdicts (the per-site data of §4.1).
Shared by ``repro-alloc quantiles`` / ``repro-alloc sites`` and the
``lifetime_analysis`` example.
"""

from __future__ import annotations

from typing import List

from repro.core.predictor import DEFAULT_THRESHOLD, actual_short_lived_bytes
from repro.core.profile import build_profile
from repro.core.quantile import P2Histogram
from repro.runtime.events import Trace

__all__ = ["lifetime_report", "sites_report"]


def lifetime_report(trace: Trace, threshold: int = DEFAULT_THRESHOLD) -> str:
    """A one-program lifetime summary (Table 3 plus the headline claim)."""
    pairs = sorted(
        (trace.lifetime_of(obj_id), trace.size_of(obj_id))
        for obj_id in range(trace.total_objects)
    )
    if not pairs:
        return f"{trace.program}/{trace.dataset}: empty trace"
    total = trace.total_bytes
    histogram = P2Histogram(cells=4)
    for lifetime, _ in pairs:
        histogram.add(lifetime)
    byte_qs = _byte_weighted_quartiles(pairs, total)
    short = actual_short_lived_bytes(trace, threshold)

    lines = [
        f"{trace.program}/{trace.dataset}: {trace.total_objects} objects, "
        f"{total} bytes",
        "lifetime quartiles (byte-weighted): "
        + "  ".join(f"{q:,}" for q in byte_qs),
        "lifetime quartiles (P2, per object): "
        + "  ".join(f"{q:,.0f}" for q in histogram.quantiles()),
        f"short-lived at {threshold} bytes: {100 * short / total:.1f}% "
        "of all bytes",
    ]
    return "\n".join(lines)


def _byte_weighted_quartiles(pairs, total) -> List[int]:
    targets = [0.0, 0.25, 0.50, 0.75, 1.0]
    result: List[int] = []
    cumulative = 0
    iterator = iter(targets)
    target = next(iterator)
    for lifetime, size in pairs:
        cumulative += size
        while cumulative >= target * total:
            result.append(lifetime)
            nxt = next(iterator, None)
            if nxt is None:
                target = float("inf")
                break
            target = nxt
    while len(result) < 5:
        result.append(pairs[-1][0])
    return result[:5]


def sites_report(
    trace: Trace,
    top: int = 15,
    threshold: int = DEFAULT_THRESHOLD,
    size_rounding: int = 4,
) -> str:
    """The highest-volume allocation sites with lifetime verdicts."""
    profile = build_profile(trace, size_rounding=size_rounding)
    ranked = sorted(profile.sites(), key=lambda kv: -kv[1].bytes)
    lines = [
        f"{trace.program}/{trace.dataset}: {len(profile)} sites, "
        f"top {min(top, len(profile))} by volume "
        f"(threshold {threshold} bytes)",
        f"{'site (last 3 callers, size)':46s} {'objs':>8s} {'bytes%':>7s} "
        f"{'median':>10s} {'max':>12s}  verdict",
    ]
    for (chain, size), stats in ranked[:top]:
        name = ">".join(chain[-3:]) + f" ({size}B)"
        median = stats.histogram.quantiles()[2]
        verdict = (
            "short-lived" if stats.all_short_lived(threshold) else "mixed/long"
        )
        lines.append(
            f"{name:46s} {stats.objects:8d} "
            f"{100 * stats.bytes / max(profile.total_bytes, 1):6.1f}% "
            f"{median:10.0f} {stats.max_lifetime:12d}  {verdict}"
        )
    short = profile.short_lived_sites(threshold)
    short_bytes = sum(stats.bytes for stats in short.values())
    lines.append(
        f"{len(short)}/{len(profile)} sites uniformly short-lived, "
        f"covering {100 * short_bytes / max(profile.total_bytes, 1):.1f}% "
        "of bytes"
    )
    return "\n".join(lines)
