"""Persistent, cross-process trace cache.

Running a workload is the dominant cost of every experiment, and every
pytest worker, benchmark session, and CLI invocation needs the same
``(program, dataset)`` executions.  This module stores finished traces on
disk in the versioned :mod:`repro.runtime.tracefile` format so a second
process loads a gzipped trace in milliseconds instead of re-running the
workload.

Cache layout — one chunked v3 trace file per execution under a single
directory (default ``~/.cache/repro-alloc``, overridable with the
``REPRO_CACHE_DIR`` environment variable)::

    <program>-<dataset>-scale<scale>-v<FORMAT_VERSION>-<srchash>.rtr3

The v3 format lets :meth:`TraceCache.open_stream` replay an entry in
O(live objects + one chunk) memory without materializing it; ``load``
still returns a fully materialized :class:`~repro.runtime.events.Trace`
from the same bytes.  The key bakes in everything that could change the
trace:

* ``program``, ``dataset``, ``scale`` — the execution's identity;
* ``FORMAT_VERSION`` — the tracefile format, so format upgrades never
  read stale bytes;
* ``srchash`` — a SHA-256 digest over the :mod:`repro.workloads` package
  source (plus the traced runtime), so editing any workload invalidates
  its cached traces automatically.

Corrupt or truncated entries (an interrupted writer, a damaged disk) are
treated as misses: the workload re-runs and the entry is rewritten.
Writers are crash- and race-safe because :func:`~repro.runtime.tracefile.
save_trace` publishes atomically via ``os.replace``.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Optional, Union

from repro.obs.metrics import METRICS, Metrics
from repro.obs.spans import TRACER
from repro.runtime import tracefile
from repro.runtime.events import Trace
from repro.runtime.stream.protocol import EventSource
from repro.runtime.tracefile import (
    TraceFormatError,
    load_trace,
    open_trace_stream,
    save_trace,
)

__all__ = [
    "TraceCache",
    "default_cache_dir",
    "workloads_source_hash",
    "cache_disabled_by_env",
]

#: Environment variable naming the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: Environment variable that disables the cache entirely when set to a
#: non-empty value ("0" also counts as set; any value disables).
NO_CACHE_ENV = "REPRO_NO_CACHE"


def default_cache_dir() -> Path:
    """The cache directory: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-alloc``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro-alloc"


def cache_disabled_by_env() -> bool:
    """Whether ``REPRO_NO_CACHE`` turns the cache off for this process."""
    return bool(os.environ.get(NO_CACHE_ENV))


_SOURCE_HASH_CACHE: Optional[str] = None


def workloads_source_hash() -> str:
    """A short digest of the workload package and traced-runtime source.

    Editing any workload (or the heap/event layer that defines what a
    trace contains) changes the digest, so stale cached traces can never
    be served after a code change.  Computed once per process.
    """
    global _SOURCE_HASH_CACHE
    if _SOURCE_HASH_CACHE is None:
        import repro.runtime as runtime_pkg
        import repro.workloads as workloads_pkg

        digest = hashlib.sha256()
        for pkg in (workloads_pkg, runtime_pkg):
            root = Path(pkg.__file__).resolve().parent
            for path in sorted(root.rglob("*.py")):
                digest.update(path.relative_to(root).as_posix().encode())
                digest.update(b"\0")
                digest.update(path.read_bytes())
                digest.update(b"\0")
        _SOURCE_HASH_CACHE = digest.hexdigest()[:12]
    return _SOURCE_HASH_CACHE


class TraceCache:
    """Disk-backed store of workload traces, shared across processes.

    ``load`` returns ``None`` on any miss — absent entry, wrong version,
    or a corrupt/truncated file — so callers follow one code path:
    load, or run-and-store.  Hit/miss counts go to ``metrics`` (the
    process-wide :data:`~repro.obs.metrics.METRICS` by default)
    under ``trace_cache.hit`` / ``trace_cache.miss`` /
    ``trace_cache.store``.
    """

    def __init__(
        self,
        directory: Union[str, os.PathLike, None] = None,
        metrics: Optional[Metrics] = None,
    ):
        self.directory = Path(directory) if directory else default_cache_dir()
        self.metrics = metrics if metrics is not None else METRICS

    def entry_path(self, program: str, dataset: str, scale: float) -> Path:
        """Where the trace for one execution lives (whether or not present)."""
        name = (
            f"{program}-{dataset}-scale{float(scale)}"
            f"-v{tracefile.FORMAT_VERSION}-{workloads_source_hash()}.rtr3"
        )
        return self.directory / name

    def has(self, program: str, dataset: str, scale: float) -> bool:
        """Whether an entry exists on disk (it may still fail to load)."""
        return self.entry_path(program, dataset, scale).is_file()

    def load(self, program: str, dataset: str, scale: float) -> Optional[Trace]:
        """The cached trace, or ``None`` on a miss.

        A corrupt or truncated entry counts as a miss and is deleted so
        the next :meth:`store` rewrites it cleanly.
        """
        path = self.entry_path(program, dataset, scale)
        try:
            with TRACER.span("trace_cache.load", cat="cache",
                             program=program, dataset=dataset), \
                    self.metrics.stage("trace_cache.load"):
                trace = load_trace(path)
        except FileNotFoundError:
            self.metrics.incr("trace_cache.miss")
            return None
        except (TraceFormatError, OSError):
            # Interrupted writer or damaged file: drop it and re-run.
            self.metrics.incr("trace_cache.miss")
            self.metrics.incr("trace_cache.corrupt")
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.metrics.incr("trace_cache.hit")
        return trace

    def open_stream(
        self, program: str, dataset: str, scale: float
    ) -> Optional[EventSource]:
        """A streaming :class:`EventSource` over the entry, or ``None``.

        The constant-memory counterpart of :meth:`load`: the returned
        source replays the cached v3 file chunk by chunk instead of
        materializing it.  Misses follow :meth:`load`'s contract — absent
        entries return ``None``, corrupt entries are deleted and counted
        under ``trace_cache.corrupt``.  (A corrupt file can still be
        detected mid-replay by the source itself; only open-time damage is
        converted to a miss here.)
        """
        path = self.entry_path(program, dataset, scale)
        try:
            with TRACER.span("trace_cache.open_stream", cat="cache",
                             program=program, dataset=dataset), \
                    self.metrics.stage("trace_cache.open_stream"):
                source = open_trace_stream(path)
        except FileNotFoundError:
            self.metrics.incr("trace_cache.miss")
            return None
        except (TraceFormatError, OSError):
            self.metrics.incr("trace_cache.miss")
            self.metrics.incr("trace_cache.corrupt")
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.metrics.incr("trace_cache.hit")
        return source

    def store(self, trace: Trace, scale: float) -> Path:
        """Write ``trace`` to its cache entry (atomic) and return the path."""
        path = self.entry_path(trace.program, trace.dataset, scale)
        self.directory.mkdir(parents=True, exist_ok=True)
        with TRACER.span("trace_cache.store", cat="cache",
                         program=trace.program, dataset=trace.dataset), \
                self.metrics.stage("trace_cache.store"):
            save_trace(trace, path)
        self.metrics.incr("trace_cache.store")
        return path

    def clear(self) -> int:
        """Delete every cache entry; returns how many files were removed."""
        removed = 0
        if self.directory.is_dir():
            # Both the current v3 suffix and the pre-v3 ``.json.gz``
            # entries older caches may still hold.
            for pattern in ("*.rtr3", "*.json.gz"):
                for path in self.directory.glob(pattern):
                    try:
                        path.unlink()
                        removed += 1
                    except OSError:
                        pass
        return removed

    def __repr__(self) -> str:
        return f"<TraceCache dir={str(self.directory)!r}>"
