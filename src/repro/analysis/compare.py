"""Cross-run site comparison: why true prediction loses what it loses.

Table 4's gap between self and true prediction has exactly three causes,
and this module attributes every byte of it by diffing the training and
test executions' site profiles at the predictor's abstraction level:

* **test-only sites** — allocation sites the training run never executed
  (new code paths), unpredictable by construction;
* **flipped long → short** — sites the training run saw as long-lived but
  that behave short-lived in the test run: capture lost to conservatism;
* **flipped short → long** — sites trained short-lived that allocate
  long-lived objects in the test run: these are Table 4's *error bytes*,
  the arena pollution of §5.2.

``repro-alloc diff train.json.gz test.json.gz`` renders the attribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.predictor import DEFAULT_THRESHOLD, TRUE_PREDICTION_ROUNDING
from repro.core.profile import SiteKey, build_profile
from repro.core.sites import FULL_CHAIN
from repro.runtime.events import Trace

__all__ = ["SiteDelta", "ProfileDiff", "diff_traces", "render_diff"]


@dataclass(frozen=True)
class SiteDelta:
    """One site's behaviour across the two runs.

    ``status`` is one of ``"stable-short"``, ``"stable-long"``,
    ``"flipped-to-short"``, ``"flipped-to-long"``, ``"train-only"``,
    ``"test-only"``.  Byte counts are ``None`` for runs where the site
    does not occur.
    """

    key: SiteKey
    status: str
    train_bytes: Optional[int]
    test_bytes: Optional[int]


@dataclass(frozen=True)
class ProfileDiff:
    """The full site attribution between a training and a test run."""

    train_program: str
    test_program: str
    threshold: int
    deltas: Tuple[SiteDelta, ...]
    test_total_bytes: int

    def bytes_with_status(self, status: str) -> int:
        """Test-run bytes at sites with the given status."""
        return sum(
            delta.test_bytes or 0
            for delta in self.deltas
            if delta.status == status
        )

    def pct_of_test(self, status: str) -> float:
        """Those bytes as a percentage of the test run's total."""
        if self.test_total_bytes == 0:
            return 0.0
        return 100.0 * self.bytes_with_status(status) / self.test_total_bytes

    @property
    def predictable_pct(self) -> float:
        """Test bytes at stable-short sites: what true prediction captures."""
        return self.pct_of_test("stable-short")

    @property
    def error_pct(self) -> float:
        """Test bytes at flipped-to-long sites: Table 4's error bytes."""
        return self.pct_of_test("flipped-to-long")


def diff_traces(
    train: Trace,
    test: Trace,
    threshold: int = DEFAULT_THRESHOLD,
    chain_length=FULL_CHAIN,
    size_rounding: int = TRUE_PREDICTION_ROUNDING,
) -> ProfileDiff:
    """Attribute every test-run byte to a cross-run site status."""
    train_profile = build_profile(
        train, chain_length=chain_length, size_rounding=size_rounding
    )
    test_profile = build_profile(
        test, chain_length=chain_length, size_rounding=size_rounding
    )
    train_stats: Dict[SiteKey, Tuple[int, bool]] = {
        key: (stats.bytes, stats.all_short_lived(threshold))
        for key, stats in train_profile.sites()
    }
    deltas: List[SiteDelta] = []
    seen = set()
    for key, stats in test_profile.sites():
        seen.add(key)
        test_short = stats.all_short_lived(threshold)
        trained = train_stats.get(key)
        if trained is None:
            status = "test-only"
            train_bytes = None
        else:
            train_bytes, train_short = trained
            if train_short and test_short:
                status = "stable-short"
            elif not train_short and not test_short:
                status = "stable-long"
            elif train_short:
                status = "flipped-to-long"
            else:
                status = "flipped-to-short"
        deltas.append(
            SiteDelta(
                key=key,
                status=status,
                train_bytes=train_bytes,
                test_bytes=stats.bytes,
            )
        )
    for key, (train_bytes, _) in train_stats.items():
        if key not in seen:
            deltas.append(
                SiteDelta(
                    key=key, status="train-only",
                    train_bytes=train_bytes, test_bytes=None,
                )
            )
    deltas.sort(key=lambda delta: -(delta.test_bytes or 0))
    return ProfileDiff(
        train_program=f"{train.program}/{train.dataset}",
        test_program=f"{test.program}/{test.dataset}",
        threshold=threshold,
        deltas=tuple(deltas),
        test_total_bytes=test_profile.total_bytes,
    )


def render_diff(diff: ProfileDiff, top: int = 10) -> str:
    """Human-readable attribution of the self-vs-true prediction gap."""
    lines = [
        f"site diff: trained on {diff.train_program}, "
        f"tested on {diff.test_program} "
        f"(threshold {diff.threshold} bytes)",
        "",
        "test-run bytes by cross-run site status:",
    ]
    statuses = [
        ("stable-short", "predictable (captured by true prediction)"),
        ("stable-long", "long-lived in both runs"),
        ("flipped-to-long", "ERROR bytes: trained short, behaves long"),
        ("flipped-to-short", "capture lost to conservatism"),
        ("test-only", "new sites the training run never executed"),
    ]
    for status, description in statuses:
        lines.append(
            f"  {diff.pct_of_test(status):5.1f}%  {description}"
        )
    interesting = [
        delta for delta in diff.deltas
        if delta.status in ("flipped-to-long", "test-only")
        and delta.test_bytes
    ]
    if interesting:
        lines.append("")
        lines.append(f"largest unpredictable sites (top {top}):")
        for delta in interesting[:top]:
            chain, size = delta.key
            name = ">".join(chain[-3:]) + f" ({size}B)"
            lines.append(
                f"  {delta.test_bytes:>10,}B  {delta.status:16s}  {name}"
            )
    return "\n".join(lines)
