"""Oracle arena simulation: the upper bound on lifetime prediction.

The paper automates Hanson's allocator, where *the programmer* says which
objects are short-lived — effectively a per-object oracle.  This module
simulates that ideal: each object is placed by its *actual* lifetime
(read from the trace) rather than by a trained site database.  Comparing
oracle capture with true-prediction capture measures exactly what site
+size prediction gives up — the gap the paper's approach trades for
requiring no programmer annotations.
"""

from __future__ import annotations

from repro.alloc.arena import DEFAULT_ARENA_SIZE, DEFAULT_NUM_ARENAS
from repro.alloc.spec import AllocatorSpec, build_allocator
from repro.analysis.simulate import SimulationResult
from repro.alloc.costs import DEFAULT_COST_MODEL, CostModel, arena_cost
from repro.core.predictor import DEFAULT_THRESHOLD, LifetimePredictor
from repro.core.sites import CallChain
from repro.runtime.events import Trace

__all__ = ["simulate_arena_oracle"]


class _OracleAnswer(LifetimePredictor):
    """A predictor whose next answer is injected per allocation.

    Models Hanson's programmer: the decision arrives with the allocation
    itself, not from a site database.
    """

    def __init__(self, threshold: int):
        self.threshold = threshold
        self.answer = False

    def predicts_short_lived(self, chain: CallChain, size: int) -> bool:
        return self.answer

    @property
    def site_count(self) -> int:
        return 0


def simulate_arena_oracle(
    trace: Trace,
    threshold: int = DEFAULT_THRESHOLD,
    num_arenas: int = DEFAULT_NUM_ARENAS,
    arena_size: int = DEFAULT_ARENA_SIZE,
    model: CostModel = DEFAULT_COST_MODEL,
) -> SimulationResult:
    """Replay a trace with per-object (perfect) lifetime knowledge.

    Every object that truly dies within ``threshold`` byte-time is offered
    to the arenas; everything else goes straight to the general heap.  The
    arena machinery (blocking, overflow, size limits) stays exactly the
    paper's, so the result is the ceiling that a perfect predictor — not a
    perfect allocator — could reach.
    """
    oracle = _OracleAnswer(threshold)
    spec = AllocatorSpec(
        num_arenas=num_arenas, arena_size=arena_size, threshold=threshold
    )
    allocator = build_allocator(spec, oracle)
    addresses = {}
    for code in trace.raw_arrays()["events"]:
        tag = code & 3
        if tag == 2:
            continue
        obj_id = code >> 2
        if tag == 1:
            allocator.free(addresses.pop(obj_id))
        else:
            oracle.answer = trace.lifetime_of(obj_id) < threshold
            addresses[obj_id] = allocator.malloc(
                trace.size_of(obj_id), trace.chain_of(obj_id)
            )
    cost = arena_cost(
        allocator.ops,
        allocator.general.ops,
        strategy="len4",
        total_calls=trace.total_calls,
        model=model,
    )
    return SimulationResult(
        allocator="arena (oracle)",
        program=trace.program,
        dataset=trace.dataset,
        max_heap_size=allocator.max_heap_size,
        final_live_bytes=allocator.live_bytes,
        ops=allocator.ops.snapshot(),
        cost=cost,
        general_ops=allocator.general.ops.snapshot(),
        arena_allocs=allocator.ops.arena_allocs,
        arena_bytes=allocator.arena_bytes,
        general_allocs=allocator.ops.allocs - allocator.ops.arena_allocs,
        general_bytes=allocator.general_bytes,
        arena_area_size=allocator.arena_area_size,
    )
