"""Byte survival curves: the generational hypothesis as a function.

The paper's Tables 3 and 4 sample the lifetime distribution at quartiles
and at the single 32 KB threshold.  The underlying object is the *survival
curve* ``s(t)`` — the fraction of allocated bytes still live ``t`` bytes
after their allocation — the function generational collectors are designed
around (Lieberman & Hewitt, Ungar; the paper's §1.1).  This module
computes it exactly from a trace at log-spaced ages, giving the
reproduction the figure the paper describes in prose: a cliff at small
ages followed by a long, thin tail.

The curve also generalizes both headline numbers: ``1 - s(32 KB)`` is
Table 4's Actual column, and the quartiles of Table 3 are the ages where
``s`` crosses 0.75/0.50/0.25.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Sequence, Tuple, Union

from repro.runtime.events import Trace
from repro.runtime.stream.protocol import (
    EventSource,
    as_event_source,
    iter_object_lifetimes,
)

__all__ = ["SurvivalCurve", "survival_curve", "DEFAULT_AGES"]

#: Log-spaced byte-time ages from 16 B to 16 MB.
DEFAULT_AGES: Tuple[int, ...] = tuple(16 * (4 ** k) for k in range(11))


@dataclass(frozen=True)
class SurvivalCurve:
    """The byte survival function of one execution, sampled at ``ages``."""

    program: str
    dataset: str
    total_bytes: int
    ages: Tuple[int, ...]
    #: ``surviving[i]`` = fraction of bytes with lifetime >= ``ages[i]``.
    surviving: Tuple[float, ...]

    def fraction_surviving(self, age: int) -> float:
        """Surviving fraction at an arbitrary age (step interpolation).

        Returns the sampled value at the largest sampled age <= ``age``;
        for ages below the first sample everything survives.
        """
        index = bisect_right(self.ages, age)
        if index == 0:
            return 1.0
        return self.surviving[index - 1]

    def half_life(self) -> int:
        """The first sampled age where less than half the bytes survive."""
        for age, fraction in zip(self.ages, self.surviving):
            if fraction < 0.5:
                return age
        return self.ages[-1]

    def render(self, width: int = 50) -> str:
        """A text plot of the curve (one bar per sampled age)."""
        lines = [
            f"byte survival: {self.program}/{self.dataset} "
            f"({self.total_bytes} bytes)"
        ]
        for age, fraction in zip(self.ages, self.surviving):
            bar = "#" * max(0, round(fraction * width))
            lines.append(f"  {age:>10,}B |{bar:<{width}}| {100 * fraction:5.1f}%")
        return "\n".join(lines)


def survival_curve(
    trace: Union[Trace, EventSource], ages: Sequence[int] = DEFAULT_AGES
) -> SurvivalCurve:
    """Compute the exact byte survival curve of ``trace`` at ``ages``.

    ``ages`` must be strictly increasing.  Unfreed objects follow the
    trace convention (they die at program exit).

    Single-pass: each object's bytes fall into the age bucket of its
    lifetime and the curve is a prefix sum over buckets, so a streamed
    trace never needs the sorted lifetime list the old implementation
    built (the bucket sums are the same integers, hence the same curve).
    """
    age_list = list(ages)
    if not age_list or age_list != sorted(set(age_list)):
        raise ValueError(f"ages must be strictly increasing, got {ages}")
    source = as_event_source(trace)
    # buckets[i] = bytes of objects dead before age_list[i] but not
    # before age_list[i-1]; the last bucket (lifetime >= all ages) never
    # counts as dead.
    buckets = [0] * (len(age_list) + 1)
    total = 0
    for _, size, lifetime, _ in iter_object_lifetimes(source):
        total += size
        buckets[bisect_right(age_list, lifetime)] += size
    surviving: List[float] = []
    dead_bytes = 0
    for index in range(len(age_list)):
        dead_bytes += buckets[index]
        surviving.append((total - dead_bytes) / total if total else 0.0)
    header = source.header
    return SurvivalCurve(
        program=header.program,
        dataset=header.dataset,
        total_bytes=total,
        ages=tuple(age_list),
        surviving=tuple(surviving),
    )
