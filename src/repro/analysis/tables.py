"""The paper's tables, recomputed over the reproduction's workloads.

One function per data table (Tables 2-9; Table 1 is prose).  Each returns
a list of typed rows in the paper's program order;
:mod:`repro.analysis.report` renders them as text.

Every table evaluates on the ``test`` execution (the paper reports "the
largest of the input sets"); self prediction trains on that same
execution, true prediction on ``train``.  See EXPERIMENTS.md for the
side-by-side against the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.alloc.costs import DEFAULT_COST_MODEL, execution_instructions
from repro.obs.spans import traced
from repro.core.predictor import (
    DEFAULT_THRESHOLD,
    TRUE_PREDICTION_ROUNDING,
    actual_short_lived_bytes,
    evaluate,
    train_size_only_predictor,
)
from repro.core.quantile import P2Histogram
from repro.core.sites import FULL_CHAIN
from repro.runtime.events import Trace
from repro.runtime.stream.protocol import (
    EventSource,
    iter_object_lifetimes,
    stream_live_stats,
)
from repro.alloc.spec import (
    BSD_SPEC,
    FIRSTFIT_SPEC,
    PAPER_DEFAULT_SPEC,
    AllocatorSpec,
)
from repro.analysis.experiments import EVAL_DATASET, TRAIN_DATASET, TraceStore
from repro.analysis.simulate import SimulationResult, simulate_spec

__all__ = [
    "Table1Row", "table1",
    "Table2Row", "table2",
    "Table3Row", "table3",
    "Table4Row", "table4",
    "Table5Row", "table5",
    "Table6Row", "table6", "TABLE6_LENGTHS",
    "Table7Row", "table7",
    "Table8Row", "table8",
    "Table9Row", "table9",
    "short_lived_fraction",
]


# ----------------------------------------------------------------------
# Table 1: the test programs and their inputs
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Table1Row:
    """One program's description and input provenance (paper Table 1)."""

    program: str
    description: str
    train_input: str
    test_input: str
    input_relation: str


@traced("table.table1", cat="table")
def table1(store: TraceStore) -> List[Table1Row]:
    """Descriptive information about the programs and their datasets."""
    from repro.workloads.registry import get_workload

    rows = []
    for program in store.programs:
        workload = get_workload(program)
        doc = (workload.__doc__ or "").strip().splitlines()[0]
        train = workload.dataset_spec(TRAIN_DATASET)
        test = workload.dataset_spec(EVAL_DATASET)
        rows.append(
            Table1Row(
                program=program,
                description=doc.rstrip("."),
                train_input=train.description,
                test_input=test.description,
                input_relation=test.relation or train.relation,
            )
        )
    return rows


# ----------------------------------------------------------------------
# Table 2: program allocation behaviour
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Table2Row:
    """One program's execution summary (paper Table 2)."""

    program: str
    instructions: int  # modelled, see costs.execution_instructions
    function_calls: int
    total_bytes: int
    total_objects: int
    max_bytes: int
    max_objects: int
    heap_ref_pct: float


@traced("table.table2", cat="table")
def table2(store: TraceStore) -> List[Table2Row]:
    """Execution behaviour of each program on the evaluation input."""
    rows = []
    for program in store.programs:
        source = store.source(program, EVAL_DATASET)
        summary = source.summary
        live = stream_live_stats(source)
        total_refs = summary.heap_refs + summary.non_heap_refs
        rows.append(
            Table2Row(
                program=program,
                instructions=execution_instructions(
                    summary.total_calls, total_refs
                ),
                function_calls=summary.total_calls,
                total_bytes=summary.end_time,
                total_objects=summary.total_objects,
                max_bytes=live.max_live_bytes,
                max_objects=live.max_live_objects,
                heap_ref_pct=(
                    100.0 * summary.heap_refs / total_refs
                    if total_refs else 0.0
                ),
            )
        )
    return rows


# ----------------------------------------------------------------------
# Table 3: lifetime quantile histograms
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Table3Row:
    """Quartiles of one program's object-lifetime distribution.

    ``byte_quantiles`` weight each object by its size — the paper's
    reading, "each column gives the lifetime for which that percentage of
    bytes is alive".  ``p2_quantiles`` are the streaming P^2 approximation
    over objects, mirroring the approximation the paper's tooling used
    (its caption notes the GHOST 75% entry is a P^2 overestimate).
    """

    program: str
    byte_quantiles: Tuple[int, int, int, int, int]
    p2_quantiles: Tuple[float, float, float, float, float]


@traced("table.table3", cat="table")
def table3(store: TraceStore) -> List[Table3Row]:
    """Lifetime quartiles for each program."""
    rows = []
    for program in store.programs:
        source = store.source(program, EVAL_DATASET)
        # Sorting makes the collected pairs independent of event order, so
        # the (order-sensitive) P^2 fold below sees the same sequence from
        # a streamed trace as from a materialized one.
        pairs = sorted(
            (lifetime, size)
            for _, size, lifetime, _ in iter_object_lifetimes(source)
        )
        total = sum(size for _, size in pairs)
        targets = [0.0, 0.25, 0.50, 0.75, 1.0]
        byte_qs: List[int] = []
        cumulative = 0
        target_iter = iter(targets)
        target = next(target_iter)
        for lifetime, size in pairs:
            cumulative += size
            while cumulative >= target * total:
                byte_qs.append(lifetime)
                nxt = next(target_iter, None)
                if nxt is None:
                    target = float("inf")
                    break
                target = nxt
        while len(byte_qs) < 5:
            byte_qs.append(pairs[-1][0])

        histogram = P2Histogram(cells=4)
        for lifetime, _ in pairs:
            histogram.add(lifetime)
        rows.append(
            Table3Row(
                program=program,
                byte_quantiles=tuple(byte_qs[:5]),
                p2_quantiles=tuple(histogram.quantiles()),
            )
        )
    return rows


# ----------------------------------------------------------------------
# Table 4: self and true prediction effectiveness
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Table4Row:
    """Prediction effectiveness for one program (paper Table 4)."""

    program: str
    total_sites: int
    actual_pct: float
    self_sites_used: int
    self_predicted_pct: float
    self_error_pct: float
    true_sites_used: int
    true_predicted_pct: float
    true_error_pct: float


@traced("table.table4", cat="table")
def table4(
    store: TraceStore, threshold: int = DEFAULT_THRESHOLD
) -> List[Table4Row]:
    """Fraction of bytes predicted short-lived, self and true."""
    rows = []
    for program in store.programs:
        eval_source = store.source(program, EVAL_DATASET)
        self_eval = evaluate(
            store.self_predictor(program, threshold=threshold), eval_source
        )
        true_eval = evaluate(
            store.predictor(program, threshold=threshold), eval_source
        )
        rows.append(
            Table4Row(
                program=program,
                total_sites=self_eval.total_sites,
                actual_pct=self_eval.actual_pct,
                self_sites_used=self_eval.sites_used,
                self_predicted_pct=self_eval.predicted_pct,
                self_error_pct=self_eval.error_pct,
                true_sites_used=true_eval.sites_used,
                true_predicted_pct=true_eval.predicted_pct,
                true_error_pct=true_eval.error_pct,
            )
        )
    return rows


# ----------------------------------------------------------------------
# Table 5: size-only prediction
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Table5Row:
    """Size-only prediction for one program (paper Table 5)."""

    program: str
    actual_pct: float
    predicted_pct: float
    sizes_used: int


@traced("table.table5", cat="table")
def table5(
    store: TraceStore, threshold: int = DEFAULT_THRESHOLD
) -> List[Table5Row]:
    """Prediction from object size alone (self prediction)."""
    rows = []
    for program in store.programs:
        source = store.source(program, EVAL_DATASET)
        predictor = train_size_only_predictor(source, threshold=threshold)
        result = evaluate(predictor, source)
        rows.append(
            Table5Row(
                program=program,
                actual_pct=result.actual_pct,
                predicted_pct=result.predicted_pct,
                sizes_used=result.sites_used,
            )
        )
    return rows


# ----------------------------------------------------------------------
# Table 6: call-chain length
# ----------------------------------------------------------------------

#: The chain lengths of the paper's Table 6; ``None`` is the full chain.
TABLE6_LENGTHS: List[Optional[int]] = [1, 2, 3, 4, 5, 6, 7, FULL_CHAIN]


@dataclass(frozen=True)
class Table6Row:
    """Predicted % and New Ref % per chain length for one program."""

    program: str
    #: length (None = full chain) -> (predicted %, new-ref %)
    by_length: Dict[Optional[int], Tuple[float, float]]

    def knee(self) -> Optional[int]:
        """The length at which prediction jumps most (paper's parentheses)."""
        best_length = None
        best_jump = 0.0
        previous = 0.0
        for length in [1, 2, 3, 4, 5, 6, 7]:
            predicted = self.by_length[length][0]
            if predicted - previous > best_jump:
                best_jump = predicted - previous
                best_length = length
            previous = predicted
        return best_length


@traced("table.table6", cat="table")
def table6(
    store: TraceStore, threshold: int = DEFAULT_THRESHOLD
) -> List[Table6Row]:
    """Effect of call-chain length on self prediction."""
    rows = []
    for program in store.programs:
        source = store.source(program, EVAL_DATASET)
        by_length: Dict[Optional[int], Tuple[float, float]] = {}
        for length in TABLE6_LENGTHS:
            predictor = store.self_predictor(
                program, threshold=threshold, chain_length=length
            )
            result = evaluate(predictor, source)
            by_length[length] = (result.predicted_pct, result.new_ref_pct)
        rows.append(Table6Row(program=program, by_length=by_length))
    return rows


# ----------------------------------------------------------------------
# Table 7: arena capture under true prediction
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Table7Row:
    """Arena vs general-heap allocation fractions (paper Table 7)."""

    program: str
    total_allocs: int
    arena_alloc_pct: float
    total_bytes: int
    arena_byte_pct: float

    @property
    def non_arena_alloc_pct(self) -> float:
        return 100.0 - self.arena_alloc_pct

    @property
    def non_arena_byte_pct(self) -> float:
        return 100.0 - self.arena_byte_pct


@traced("table.table7", cat="table")
def table7(store: TraceStore) -> List[Table7Row]:
    """Arena capture fractions, simulating true prediction."""
    spec = PAPER_DEFAULT_SPEC
    rows = []
    for program in store.programs:
        result = simulate_spec(
            store.source(program, EVAL_DATASET), spec,
            store.predictor_for(program, spec),
        )
        rows.append(
            Table7Row(
                program=program,
                total_allocs=result.total_allocs,
                arena_alloc_pct=result.arena_alloc_pct,
                total_bytes=result.total_bytes,
                arena_byte_pct=result.arena_byte_pct,
            )
        )
    return rows


# ----------------------------------------------------------------------
# Table 8: maximum heap sizes
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Table8Row:
    """Max heap: first-fit vs the arena allocator (paper Table 8)."""

    program: str
    firstfit_heap: int
    self_arena_heap: int
    true_arena_heap: int

    @property
    def self_ratio_pct(self) -> float:
        return 100.0 * self.self_arena_heap / self.firstfit_heap

    @property
    def true_ratio_pct(self) -> float:
        return 100.0 * self.true_arena_heap / self.firstfit_heap


@traced("table.table8", cat="table")
def table8(store: TraceStore) -> List[Table8Row]:
    """Maximum heap sizes under first-fit and arena allocation."""
    self_spec = AllocatorSpec(predictor="self")
    true_spec = PAPER_DEFAULT_SPEC
    rows = []
    for program in store.programs:
        source = store.source(program, EVAL_DATASET)
        firstfit = simulate_spec(source, FIRSTFIT_SPEC)
        self_arena = simulate_spec(
            source, self_spec, store.predictor_for(program, self_spec)
        )
        true_arena = simulate_spec(
            source, true_spec, store.predictor_for(program, true_spec)
        )
        rows.append(
            Table8Row(
                program=program,
                firstfit_heap=firstfit.max_heap_size,
                self_arena_heap=self_arena.max_heap_size,
                true_arena_heap=true_arena.max_heap_size,
            )
        )
    return rows


# ----------------------------------------------------------------------
# Table 9: CPU cost
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Table9Row:
    """Instructions per alloc/free for the four allocators (Table 9)."""

    program: str
    bsd: Tuple[float, float]
    firstfit: Tuple[float, float]
    arena_len4: Tuple[float, float]
    arena_cce: Tuple[float, float]

    @staticmethod
    def pair_total(pair: Tuple[float, float]) -> float:
        """The a+f column."""
        return pair[0] + pair[1]


@traced("table.table9", cat="table")
def table9(store: TraceStore) -> List[Table9Row]:
    """Average instruction costs, true prediction for the arena rows."""
    len4_spec = PAPER_DEFAULT_SPEC
    cce_spec = AllocatorSpec(strategy="cce")
    rows = []
    for program in store.programs:
        source = store.source(program, EVAL_DATASET)
        predictor = store.predictor_for(program, len4_spec)
        bsd = simulate_spec(source, BSD_SPEC)
        firstfit = simulate_spec(source, FIRSTFIT_SPEC)
        len4 = simulate_spec(source, len4_spec, predictor)
        cce = simulate_spec(source, cce_spec, predictor)
        rows.append(
            Table9Row(
                program=program,
                bsd=(bsd.cost.per_alloc, bsd.cost.per_free),
                firstfit=(firstfit.cost.per_alloc, firstfit.cost.per_free),
                arena_len4=(len4.cost.per_alloc, len4.cost.per_free),
                arena_cce=(cce.cost.per_alloc, cce.cost.per_free),
            )
        )
    return rows


# ----------------------------------------------------------------------
# Headline claim: >90% of bytes are short-lived
# ----------------------------------------------------------------------

def short_lived_fraction(
    trace: "Union[Trace, EventSource]", threshold: int
) -> float:
    """Fraction of bytes that die within ``threshold`` (the §4.1 claim)."""
    from repro.runtime.stream.protocol import as_event_source

    source = as_event_source(trace)
    total_bytes = source.summary.end_time  # == total bytes allocated
    if total_bytes == 0:
        return 0.0
    return actual_short_lived_bytes(source, threshold) / total_bytes
