"""Experiment drivers: trace-driven simulation and the paper's tables."""

from repro.analysis.experiments import (
    EVAL_DATASET,
    TRAIN_DATASET,
    TraceStore,
    WarmResult,
)
from repro.obs.metrics import METRICS, Metrics
from repro.analysis.trace_cache import TraceCache, default_cache_dir
from repro.analysis.locality import (
    LocalityResult,
    compare_locality,
    measure_locality,
    prefragment,
)
from repro.analysis.simulate import (
    SimulationResult,
    replay,
    simulate_arena,
    simulate_bsd,
    simulate_firstfit,
    simulate_spec,
)
from repro.analysis.compare import ProfileDiff, diff_traces, render_diff
from repro.analysis.oracle import simulate_arena_oracle
from repro.analysis.survival import SurvivalCurve, survival_curve
from repro.analysis.tables import (
    TABLE6_LENGTHS,
    Table1Row,
    table1,
    Table2Row,
    Table3Row,
    Table4Row,
    Table5Row,
    Table6Row,
    Table7Row,
    Table8Row,
    Table9Row,
    short_lived_fraction,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
    table9,
)

__all__ = [
    "EVAL_DATASET",
    "TRAIN_DATASET",
    "TraceStore",
    "WarmResult",
    "METRICS",
    "Metrics",
    "TraceCache",
    "default_cache_dir",
    "LocalityResult",
    "compare_locality",
    "measure_locality",
    "prefragment",
    "SimulationResult",
    "replay",
    "simulate_arena",
    "simulate_bsd",
    "simulate_firstfit",
    "simulate_spec",
    "ProfileDiff",
    "diff_traces",
    "render_diff",
    "simulate_arena_oracle",
    "SurvivalCurve",
    "survival_curve",
    "TABLE6_LENGTHS",
    "Table1Row",
    "table1",
    "Table2Row", "Table3Row", "Table4Row", "Table5Row", "Table6Row",
    "Table7Row", "Table8Row", "Table9Row",
    "short_lived_fraction",
    "table2", "table3", "table4", "table5", "table6", "table7",
    "table8", "table9",
]
