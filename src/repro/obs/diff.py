"""Differential telemetry: regression verdicts between two sessions.

``bench compare`` answers "did the suite regress?" at whole-benchmark
granularity.  This module answers the same question one level down —
*which sites* paid — and across every observability document the repo
emits.  It diffs two session files of the same kind:

* **attribution** documents (``profile-sites --json`` /
  ``*.attrib.json``) — per-call-chain cost, fragmentation, and
  misprediction metrics;
* **telemetry** summaries (``stats --json`` / ``*.summary.json``) —
  whole-run totals plus the top misprediction sites;
* **bench** sessions (``BENCH_<seq>.json``) — the deterministic
  per-benchmark metrics, wall time informational;
* **drift** reports (``windows`` / ``*.drift.json``) — per-site
  temporal-drift scores, so a site that *starts* drifting between two
  runs gates the diff;
* **search** sessions (``SEARCH_<seq>.json``) — per-candidate objective
  scores and raw metrics, so a code change that worsens any candidate's
  score (or loses a candidate outright) gates the diff.

The verdict contract mirrors :mod:`repro.bench.compare`: each metric has
a *good direction* ("lower", "higher", "equal", or "info"), movements
within the configurable relative threshold are ``unchanged``, movements
beyond it get ``improved``/``regressed`` by direction, "equal" metrics
regress on *any* move, and "info" metrics (occupancy, object counts,
wall time, gauges like ``peak_rss_kb``) are reported but never gate.
The report and its JSON form are deterministic — same inputs, same
bytes — and the CLI exits nonzero iff :attr:`DiffResult.regressed`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

__all__ = [
    "DEFAULT_REL_THRESHOLD",
    "MetricDelta",
    "DiffResult",
    "load_session_doc",
    "detect_kind",
    "diff_documents",
    "diff_paths",
    "render_diff_report",
]

#: Default relative threshold: movements within 1% are ``unchanged``.
DEFAULT_REL_THRESHOLD = 0.01

#: Relative slack absorbing float serialization rounding, nothing more
#: (same constant as the bench comparator).
_FLOAT_EPS = 1e-9

_VERDICT_ORDER = ("regressed", "improved", "unchanged", "info")


@dataclass(frozen=True)
class MetricDelta:
    """One metric's movement at one key (site, totals, or benchmark)."""

    key: str
    metric: str
    old: float
    new: float
    direction: str  # the *good* direction: lower/higher/equal/info
    verdict: str    # regressed/improved/unchanged/info

    @property
    def rel_change(self) -> float:
        """Relative change (new vs old); inf when old was zero."""
        if self.old == 0:
            return 0.0 if self.new == 0 else float("inf")
        return (self.new - self.old) / abs(self.old)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "metric": self.metric,
            "old": self.old,
            "new": self.new,
            "direction": self.direction,
            "verdict": self.verdict,
        }


@dataclass
class DiffResult:
    """Everything a session diff decides, before rendering."""

    kind: str
    rel_threshold: float
    old_identity: Dict[str, Any]
    new_identity: Dict[str, Any]
    deltas: List[MetricDelta] = field(default_factory=list)
    only_old: List[str] = field(default_factory=list)
    only_new: List[str] = field(default_factory=list)
    keys_compared: int = 0

    @property
    def regressed(self) -> bool:
        """True when any gated metric moved the wrong way, or a key
        present in the old session vanished from the new one."""
        return bool(self.only_old) or any(
            d.verdict == "regressed" for d in self.deltas
        )

    def by_verdict(self, verdict: str) -> List[MetricDelta]:
        return [d for d in self.deltas if d.verdict == verdict]

    def to_dict(self) -> Dict[str, Any]:
        counts = {v: len(self.by_verdict(v)) for v in _VERDICT_ORDER}
        return {
            "kind": self.kind,
            "rel_threshold": self.rel_threshold,
            "old_identity": dict(self.old_identity),
            "new_identity": dict(self.new_identity),
            "keys_compared": self.keys_compared,
            "counts": counts,
            "regressed": self.regressed,
            "deltas": [d.to_dict() for d in self.deltas],
            "only_old": list(self.only_old),
            "only_new": list(self.only_new),
        }


def load_session_doc(path: Union[str, Path]) -> Dict[str, Any]:
    """Load one session document (attribution/telemetry/bench JSON)."""
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: expected a JSON object session document")
    return doc


def detect_kind(doc: Dict[str, Any]) -> str:
    """Which session family a loaded document belongs to."""
    if doc.get("kind") == "attribution":
        return "attribution"
    if doc.get("kind") == "drift":
        return "drift"
    if doc.get("kind") == "search":
        return "search"
    if "records" in doc and "schema_version" in doc:
        return "bench"
    if "totals" in doc and "top_misprediction_sites" in doc:
        return "telemetry"
    raise ValueError(
        "unrecognized session document: expected an attribution export "
        "(kind=attribution), a drift report (kind=drift), a search "
        "session (kind=search), a telemetry summary (totals + "
        "top_misprediction_sites), or a bench session "
        "(records + schema_version)"
    )


# ----------------------------------------------------------------------
# Per-kind normalizers: document -> (identity, {key: {metric: value}})
# plus a direction table naming each metric's *good* direction.  Metrics
# absent from a table are informational.
# ----------------------------------------------------------------------

_ATTRIB_DIRECTIONS = {
    "alloc_instr": "lower",
    "free_instr": "lower",
    "total_instr": "lower",
    "frag_bytes": "lower",
    "frag_byte_time": "lower",
    "late_free": "lower",
    "late_free_byte_time": "lower",
    "missed_short": "lower",
    "missed_short_bytes": "lower",
    "mispredictions": "lower",
    # objects/bytes/touches/short_*/predicted_objects/occupancy_byte_time
    # describe the workload, not the allocator — informational.
}

_TELEMETRY_DIRECTIONS = {
    "late_free": "lower",
    "overflow": "lower",
    "missed_short": "lower",
    "arena_allocs": "higher",
    "arena_bytes": "higher",
    # allocs/frees/bytes/sites and the other placements are workload
    # shape or rebalancing targets — informational.
}

_BENCH_DIRECTIONS = {
    "allocs": "equal",
    "frees": "equal",
    "instr_per_alloc": "lower",
    "instr_per_free": "lower",
    "max_heap_size": "lower",
    "arena_alloc_pct": "higher",
    "arena_byte_pct": "higher",
    "mispredictions_total": "lower",
    # wall_seconds/wall_seconds_mean/peak_rss_kb/final_live_bytes are
    # noisy or ungated — informational, same stance as bench compare.
}

_DRIFT_DIRECTIONS = {
    "drift_windows": "lower",
    "drift_objects": "lower",
    "drift_score": "lower",
    "drifting_sites": "lower",
    # objects/short_fraction/sites_scored describe the workload and the
    # scoring coverage, not predictor health — informational.
}

_SEARCH_DIRECTIONS = {
    "score": "lower",
    "total_instr": "lower",
    "max_heap_size": "lower",
    "frag_byte_time": "lower",
    # rank follows from the scores (double-gating it would report every
    # score movement twice) and the ratios follow from the metrics and
    # the baseline — informational.
}

Entries = Dict[str, Dict[str, float]]


def _numeric_items(data: Dict[str, Any]) -> Dict[str, float]:
    return {
        key: float(value)
        for key, value in data.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }


def _normalize_attribution(
    doc: Dict[str, Any]
) -> Tuple[Dict[str, Any], Entries, Dict[str, str]]:
    identity = {
        key: doc.get(key)
        for key in ("program", "dataset", "profile", "threshold")
    }
    entries: Entries = {"totals": _numeric_items(doc.get("totals", {}))}
    for site in doc.get("sites", []):
        key = "site:" + ";".join(site.get("chain", []))
        metrics = {k: v for k, v in site.items() if k != "chain"}
        entries[key] = _numeric_items(metrics)
    return identity, entries, _ATTRIB_DIRECTIONS


def _normalize_telemetry(
    doc: Dict[str, Any]
) -> Tuple[Dict[str, Any], Entries, Dict[str, str]]:
    identity = {
        key: doc.get(key)
        for key in ("program", "dataset", "allocator", "threshold", "interval")
    }
    entries: Entries = {"totals": _numeric_items(doc.get("totals", {}))}
    for site in doc.get("top_misprediction_sites", []):
        key = "site:" + ";".join(site.get("chain", []))
        metrics = {k: v for k, v in site.items() if k != "chain"}
        entries[key] = _numeric_items(metrics)
    gauges = doc.get("gauges")
    if isinstance(gauges, dict) and gauges:
        entries["gauges"] = _numeric_items(gauges)
    return identity, entries, _TELEMETRY_DIRECTIONS


def _normalize_bench(
    doc: Dict[str, Any]
) -> Tuple[Dict[str, Any], Entries, Dict[str, str]]:
    identity = {
        "schema_version": doc.get("schema_version"),
        "scale": doc.get("provenance", {}).get("scale"),
    }
    entries: Entries = {}
    for record in doc.get("records", []):
        metrics = _numeric_items(record)
        mispredictions = record.get("mispredictions", {})
        if isinstance(mispredictions, dict):
            metrics["mispredictions_total"] = float(
                sum(mispredictions.values())
            )
        metrics.pop("repeats", None)
        entries[str(record.get("name"))] = metrics
    return identity, entries, _BENCH_DIRECTIONS


def _normalize_drift(
    doc: Dict[str, Any]
) -> Tuple[Dict[str, Any], Entries, Dict[str, str]]:
    identity = {
        key: doc.get(key)
        for key in ("program", "dataset", "axis", "windows", "threshold",
                    "classifier", "min_windows", "min_objects",
                    "flip_fraction")
    }
    entries: Entries = {"totals": _numeric_items(doc.get("totals", {}))}
    for site in doc.get("sites", []):
        key = "site:" + ";".join(site.get("chain", []))
        metrics = {
            k: v for k, v in site.items()
            if k not in ("chain", "windows", "classification")
        }
        entries[key] = _numeric_items(metrics)
    return identity, entries, _DRIFT_DIRECTIONS


def _normalize_search(
    doc: Dict[str, Any]
) -> Tuple[Dict[str, Any], Entries, Dict[str, str]]:
    identity = {
        key: doc.get(key)
        for key in ("program", "dataset", "scale", "mode", "seed",
                    "space_hash")
    }
    entries: Entries = {}
    baseline = doc.get("baseline", {})
    if isinstance(baseline, dict):
        entries["baseline"] = _numeric_items(baseline.get("metrics", {}))
    for candidate in doc.get("results", []):
        key = "spec:" + str(candidate.get("spec_hash"))
        metrics = _numeric_items(candidate.get("metrics", {}))
        metrics["score"] = float(candidate.get("score", 0.0))
        metrics["rank"] = float(candidate.get("rank", 0))
        entries[key] = metrics
    return identity, entries, _SEARCH_DIRECTIONS


_NORMALIZERS = {
    "attribution": _normalize_attribution,
    "telemetry": _normalize_telemetry,
    "bench": _normalize_bench,
    "drift": _normalize_drift,
    "search": _normalize_search,
}


def _changed(old: float, new: float) -> bool:
    return abs(new - old) > _FLOAT_EPS * max(abs(old), abs(new), 1.0)


def _verdict(
    old: float, new: float, direction: str, rel_threshold: float
) -> str:
    if direction == "info":
        return "info"
    if direction == "equal":
        return "regressed"  # caller only asks about changed values
    rel = abs(new - old) / abs(old) if old != 0 else float("inf")
    if rel <= rel_threshold:
        return "unchanged"
    worse = (direction == "lower") == (new > old)
    return "regressed" if worse else "improved"


def diff_documents(
    old: Dict[str, Any],
    new: Dict[str, Any],
    rel_threshold: float = DEFAULT_REL_THRESHOLD,
) -> DiffResult:
    """Diff two loaded session documents of the same kind.

    Raises ValueError when the kinds differ — diffing an attribution
    export against a bench session is a category error, not a report.
    """
    old_kind, new_kind = detect_kind(old), detect_kind(new)
    if old_kind != new_kind:
        raise ValueError(
            f"cannot diff a {old_kind} session against a {new_kind} "
            "session — both sides must be the same document kind"
        )
    old_identity, old_entries, directions = _NORMALIZERS[old_kind](old)
    new_identity, new_entries, _ = _NORMALIZERS[new_kind](new)
    result = DiffResult(
        kind=old_kind,
        rel_threshold=rel_threshold,
        old_identity=old_identity,
        new_identity=new_identity,
        only_old=sorted(set(old_entries) - set(new_entries)),
        only_new=sorted(set(new_entries) - set(old_entries)),
    )
    for key in sorted(set(old_entries) & set(new_entries)):
        old_metrics, new_metrics = old_entries[key], new_entries[key]
        result.keys_compared += 1
        for metric in sorted(set(old_metrics) & set(new_metrics)):
            old_value, new_value = old_metrics[metric], new_metrics[metric]
            if not _changed(old_value, new_value):
                continue
            direction = directions.get(metric, "info")
            result.deltas.append(
                MetricDelta(
                    key=key,
                    metric=metric,
                    old=old_value,
                    new=new_value,
                    direction=direction,
                    verdict=_verdict(
                        old_value, new_value, direction, rel_threshold
                    ),
                )
            )
    order = {verdict: rank for rank, verdict in enumerate(_VERDICT_ORDER)}
    result.deltas.sort(key=lambda d: (order[d.verdict], d.key, d.metric))
    return result


def diff_paths(
    old_path: Union[str, Path],
    new_path: Union[str, Path],
    rel_threshold: float = DEFAULT_REL_THRESHOLD,
) -> DiffResult:
    """Load two session files and diff them."""
    return diff_documents(
        load_session_doc(old_path),
        load_session_doc(new_path),
        rel_threshold=rel_threshold,
    )


def _fmt_value(value: float) -> str:
    if value == int(value):
        return f"{int(value):,}"
    return f"{value:.6g}"


def _fmt_delta(delta: MetricDelta) -> str:
    rel = delta.rel_change
    rel_text = f"{100.0 * rel:+.1f}%" if rel != float("inf") else "+inf%"
    tolerance = (
        " (zero tolerance)" if delta.direction == "equal"
        else " (informational)" if delta.direction == "info"
        else ""
    )
    return (
        f"{delta.verdict.upper() if delta.verdict == 'regressed' else delta.verdict}"
        f" {delta.key}: {delta.metric} "
        f"{_fmt_value(delta.old)} -> {_fmt_value(delta.new)}"
        f" [{rel_text}]{tolerance}"
    )


def render_diff_report(result: DiffResult) -> str:
    """The diff as deterministic text: regressions first, verdict last."""
    threshold_pct = 100.0 * result.rel_threshold
    lines = [
        f"session diff ({result.kind}): {result.keys_compared} keys"
        f" compared, threshold ±{threshold_pct:g}%"
    ]
    for key, value in sorted(result.old_identity.items()):
        new_value = result.new_identity.get(key)
        if new_value != value:
            lines.append(f"  identity {key}: {value!r} -> {new_value!r}")
    for key in result.only_old:
        lines.append(f"  MISSING {key}: present in old session, absent in new")
    shown = 0
    for verdict in _VERDICT_ORDER:
        deltas = result.by_verdict(verdict)
        if verdict in ("unchanged", "info") and len(deltas) > 20:
            lines.append(
                f"  ({len(deltas)} {verdict} metric movements not shown)"
            )
            continue
        for delta in deltas:
            lines.append("  " + _fmt_delta(delta))
            shown += 1
    for key in result.only_new:
        lines.append(f"  added {key}: no old record, not gated")
    if not shown and not result.only_old and not result.only_new:
        lines.append("  sessions are metric-identical")
    regressions = len(result.by_verdict("regressed"))
    lines.append(
        "result: "
        + ("OK — no regressions"
           if not result.regressed
           else f"FAIL — {regressions} regression(s), "
                f"{len(result.only_old)} missing key(s)")
    )
    return "\n".join(lines)
