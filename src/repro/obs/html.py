"""Self-contained HTML run report: inline SVG, zero external assets.

``repro-alloc report --html`` renders one HTML file aggregating the
windowed time series (stacked short/long allocation areas and a live-heap
area), the top drifting sites, the attribution top-10, the telemetry
summary, and the bench trajectory.  Everything is inline — styles in one
``<style>`` block, charts as inline SVG, no script, no fonts, no images,
no network references — so the file archives and diffs like any other
artifact.

Determinism is the contract: :func:`render_report` is a pure function of
its input documents plus the explicit ``generated_at`` string the caller
passes (the CLI stamps wall-clock time *outside* this module, which is in
the lint's deterministic scope).  Identical inputs render byte-identical
HTML: floats format through fixed-precision helpers, iteration orders are
sorted or taken from already-deterministic exports, and the palette is a
fixed constant.

The palette is the validated reference instance (two categorical slots,
blue/orange, both modes clearing the CVD and contrast gates), with text
in ink tokens — series color only ever paints marks.  Hover detail rides
native SVG ``<title>`` tooltips, the zero-asset interaction layer.
"""

from __future__ import annotations

from html import escape
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

__all__ = ["render_report", "write_report"]

#: Validated categorical slots (light, dark) — blue then orange.
_SERIES = (("#2a78d6", "#3987e5"), ("#eb6834", "#d95926"))

_CSS = """\
:root { color-scheme: light; }
body {
  margin: 0; background: #f9f9f7; color: #0b0b0b;
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
main { max-width: 960px; margin: 0 auto; padding: 24px 16px 48px; }
h1 { font-size: 20px; margin: 0 0 2px; }
h2 { font-size: 15px; margin: 28px 0 8px; }
.sub { color: #52514e; margin: 0 0 16px; }
.muted { color: #898781; }
section.card {
  background: #fcfcfb; border: 1px solid rgba(11,11,11,0.10);
  border-radius: 8px; padding: 14px 16px; margin: 12px 0;
}
.tiles { display: flex; flex-wrap: wrap; gap: 12px; }
.tile { min-width: 128px; }
.tile .label { color: #52514e; font-size: 12px; }
.tile .value { font-size: 22px; font-weight: 600; }
table { border-collapse: collapse; width: 100%; font-size: 13px; }
th { text-align: right; color: #52514e; font-weight: 600;
     border-bottom: 1px solid #e1e0d9; padding: 4px 8px; }
td { text-align: right; padding: 4px 8px;
     font-variant-numeric: tabular-nums; }
th.site, td.site { text-align: left; font-family: ui-monospace, monospace;
                   font-size: 12px; }
tr:nth-child(even) td { background: rgba(11,11,11,0.02); }
.legend { display: flex; gap: 16px; font-size: 12px; color: #52514e;
          margin: 4px 0 8px; }
.key { display: inline-block; width: 10px; height: 10px;
       border-radius: 2px; margin-right: 5px; vertical-align: -1px; }
svg { display: block; }
svg text { fill: #898781; font: 11px system-ui, sans-serif; }
.grid { stroke: #e1e0d9; stroke-width: 1; }
.axis { stroke: #c3c2b7; stroke-width: 1; }
.s1 { color: #2a78d6; } .s2 { color: #eb6834; }
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) {
    color-scheme: dark;
  }
  :root:where(:not([data-theme="light"])) body {
    background: #0d0d0d; color: #ffffff;
  }
  :root:where(:not([data-theme="light"])) section.card {
    background: #1a1a19; border-color: rgba(255,255,255,0.10);
  }
  :root:where(:not([data-theme="light"])) .sub,
  :root:where(:not([data-theme="light"])) .tile .label,
  :root:where(:not([data-theme="light"])) th,
  :root:where(:not([data-theme="light"])) .legend { color: #c3c2b7; }
  :root:where(:not([data-theme="light"])) th { border-color: #2c2c2a; }
  :root:where(:not([data-theme="light"])) tr:nth-child(even) td {
    background: rgba(255,255,255,0.03);
  }
  :root:where(:not([data-theme="light"])) .grid { stroke: #2c2c2a; }
  :root:where(:not([data-theme="light"])) .axis { stroke: #383835; }
  :root:where(:not([data-theme="light"])) .s1 { color: #3987e5; }
  :root:where(:not([data-theme="light"])) .s2 { color: #d95926; }
}
"""


# ----------------------------------------------------------------------
# Deterministic formatting helpers
# ----------------------------------------------------------------------


def _fmt_int(value: int) -> str:
    return f"{value:,}"


def _fmt_compact(value: Union[int, float]) -> str:
    """1,284 / 12.9K / 4.2M — the stat-tile auto-compact form."""
    magnitude = abs(value)
    for limit, divisor, suffix in (
        (1e9, 1e9, "G"), (1e6, 1e6, "M"), (1e4, 1e3, "K")
    ):
        if magnitude >= limit:
            return f"{value / divisor:.1f}{suffix}"
    if isinstance(value, float) and value != int(value):
        return f"{value:.2f}"
    return f"{int(value):,}"


def _num(value: float) -> str:
    """An SVG coordinate with fixed precision (byte-stable)."""
    text = f"{value:.2f}"
    return text.rstrip("0").rstrip(".") if "." in text else text


def _nice_ceiling(value: float) -> float:
    """The smallest 1/2/5 x 10^k at or above ``value`` (1.0 floor)."""
    if value <= 1:
        return 1.0
    power = 1.0
    while power * 10 <= value:
        power *= 10
    for mult in (1, 2, 5, 10):
        if power * mult >= value:
            return power * mult
    return power * 10


def _chain_label(chain: Sequence[str], depth: int = 4) -> str:
    tail = list(chain)[-depth:]
    label = ">".join(tail)
    return ("…" + label) if len(chain) > depth else label


# ----------------------------------------------------------------------
# SVG components
# ----------------------------------------------------------------------

_W, _H, _PAD_L, _PAD_B, _PAD_T = 880, 180, 56, 18, 8
_SPARK_W, _SPARK_H = 120, 28


def _x(index: int, count: int) -> float:
    span = _W - _PAD_L - 8
    return _PAD_L + (index + 0.5) * span / max(count, 1)


def _y(value: float, ceiling: float) -> float:
    span = _H - _PAD_T - _PAD_B
    return _PAD_T + span * (1.0 - (value / ceiling if ceiling else 0.0))


def _grid_and_axis(ceiling: float, unit: str) -> List[str]:
    parts = []
    base_y = _num(_H - _PAD_B)
    for step in (0.5, 1.0):
        level = ceiling * step
        y = _num(_y(level, ceiling))
        parts.append(
            f'<line class="grid" x1="{_PAD_L}" y1="{y}"'
            f' x2="{_W - 8}" y2="{y}"/>'
        )
        parts.append(
            f'<text x="{_PAD_L - 6}" y="{y}" text-anchor="end"'
            f' dominant-baseline="middle">{_fmt_compact(level)}{unit}</text>'
        )
    parts.append(
        f'<line class="axis" x1="{_PAD_L}" y1="{base_y}"'
        f' x2="{_W - 8}" y2="{base_y}"/>'
    )
    return parts


def _area_path(values: Sequence[float], ceiling: float) -> str:
    """A closed area path from the baseline over per-window values."""
    count = len(values)
    base = _H - _PAD_B
    points = [
        f"{_num(_x(i, count))},{_num(_y(v, ceiling))}"
        for i, v in enumerate(values)
    ]
    first_x = _num(_x(0, count))
    last_x = _num(_x(count - 1, count))
    return (
        f"M{first_x},{_num(base)} L" + " L".join(points)
        + f" L{last_x},{_num(base)} Z"
    )


def _hover_columns(rows: List[Dict[str, Any]], titles: List[str]) -> str:
    """Full-height transparent hit rects, one per window, with tooltips."""
    count = len(rows)
    span = (_W - _PAD_L - 8) / max(count, 1)
    parts = []
    for i, title in enumerate(titles):
        x = _num(_PAD_L + i * span)
        parts.append(
            f'<rect x="{x}" y="{_PAD_T}" width="{_num(span)}"'
            f' height="{_H - _PAD_T - _PAD_B}" fill="transparent">'
            f"<title>{escape(title)}</title></rect>"
        )
    return "".join(parts)


def _stacked_alloc_svg(rows: List[Dict[str, Any]]) -> str:
    """Short vs long allocated bytes per window, stacked areas."""
    short = [row["short_alloc_bytes"] for row in rows]
    total = [row["alloc_bytes"] for row in rows]
    ceiling = _nice_ceiling(max(total) if total else 1)
    parts = [
        f'<svg viewBox="0 0 {_W} {_H}" width="100%" height="{_H}"'
        f' role="img" aria-label="Allocated bytes per window,'
        f' short-lived vs long-lived">'
    ]
    parts.extend(_grid_and_axis(ceiling, "B"))
    # Bottom band: short-lived bytes; top band: the long-lived remainder
    # stacked above it.  The 2px surface-colored stroke under the upper
    # band's top line is the stack's surface gap.
    parts.append(
        f'<path d="{_area_path(total, ceiling)}" fill="currentColor"'
        f' opacity="0.1" class="s2"/>'
    )
    count = len(rows)
    top_points = " ".join(
        f"{_num(_x(i, count))},{_num(_y(v, ceiling))}"
        for i, v in enumerate(total)
    )
    short_points = " ".join(
        f"{_num(_x(i, count))},{_num(_y(v, ceiling))}"
        for i, v in enumerate(short)
    )
    parts.append(
        f'<path d="{_area_path(short, ceiling)}" fill="currentColor"'
        f' opacity="0.1" class="s1"/>'
    )
    parts.append(
        f'<polyline points="{short_points}" fill="none" stroke="#fcfcfb"'
        f' stroke-width="4" stroke-linejoin="round" stroke-linecap="round"'
        f' opacity="0.9"/>'
    )
    parts.append(
        f'<polyline points="{short_points}" fill="none"'
        f' stroke="currentColor" stroke-width="2" class="s1"'
        f' stroke-linejoin="round" stroke-linecap="round"/>'
    )
    parts.append(
        f'<polyline points="{top_points}" fill="none" stroke="currentColor"'
        f' stroke-width="2" class="s2"'
        f' stroke-linejoin="round" stroke-linecap="round"/>'
    )
    titles = [
        f"window {row['index']} [{_fmt_int(row['start'])}"
        f"–{_fmt_int(row['end'])}): "
        f"{_fmt_int(row['alloc_bytes'])} B allocated, "
        f"{_fmt_int(row['short_alloc_bytes'])} B short-lived, "
        f"{_fmt_int(row['allocs'])} objects"
        for row in rows
    ]
    parts.append(_hover_columns(rows, titles))
    parts.append("</svg>")
    return "".join(parts)


def _live_bytes_svg(rows: List[Dict[str, Any]]) -> str:
    """Live bytes at each window's end boundary, single-series area."""
    values = [row["live_bytes_end"] for row in rows]
    ceiling = _nice_ceiling(max(values) if values else 1)
    count = len(values)
    parts = [
        f'<svg viewBox="0 0 {_W} {_H}" width="100%" height="{_H}"'
        f' role="img" aria-label="Live bytes at window boundaries">'
    ]
    parts.extend(_grid_and_axis(ceiling, "B"))
    parts.append(
        f'<path d="{_area_path(values, ceiling)}" fill="currentColor"'
        f' opacity="0.1" class="s1"/>'
    )
    points = " ".join(
        f"{_num(_x(i, count))},{_num(_y(v, ceiling))}"
        for i, v in enumerate(values)
    )
    parts.append(
        f'<polyline points="{points}" fill="none" stroke="currentColor"'
        f' stroke-width="2" class="s1"'
        f' stroke-linejoin="round" stroke-linecap="round"/>'
    )
    if values:
        end_x = _num(_x(count - 1, count))
        end_y = _num(_y(values[-1], ceiling))
        parts.append(
            f'<circle cx="{end_x}" cy="{end_y}" r="6" fill="#fcfcfb"/>'
        )
        parts.append(
            f'<circle cx="{end_x}" cy="{end_y}" r="4"'
            f' fill="currentColor" class="s1"/>'
        )
    titles = [
        f"window {row['index']}: {_fmt_int(row['live_bytes_end'])} B live"
        f" in {_fmt_int(row['live_objects_end'])} objects at boundary"
        for row in rows
    ]
    parts.append(_hover_columns(rows, titles))
    parts.append("</svg>")
    return "".join(parts)


def _sparkline(values: Sequence[float], title: str) -> str:
    """A 120x28 single-series line with an end dot and surface ring."""
    ceiling = max(values) if values and max(values) > 0 else 1.0
    count = len(values)
    if count == 0:
        values, count = [0.0], 1
    step = (_SPARK_W - 10) / max(count - 1, 1)
    coords = [
        (5 + i * step,
         3 + (_SPARK_H - 8) * (1.0 - value / ceiling))
        for i, value in enumerate(values)
    ]
    points = " ".join(f"{_num(x)},{_num(y)}" for x, y in coords)
    end_x, end_y = coords[-1]
    return (
        f'<svg viewBox="0 0 {_SPARK_W} {_SPARK_H}" width="{_SPARK_W}"'
        f' height="{_SPARK_H}" role="img" aria-label="{escape(title)}">'
        f"<title>{escape(title)}</title>"
        f'<polyline points="{points}" fill="none" stroke="currentColor"'
        f' stroke-width="2" class="s1"'
        f' stroke-linejoin="round" stroke-linecap="round"/>'
        f'<circle cx="{_num(end_x)}" cy="{_num(end_y)}" r="5"'
        f' fill="#fcfcfb"/>'
        f'<circle cx="{_num(end_x)}" cy="{_num(end_y)}" r="3"'
        f' fill="currentColor" class="s1"/>'
        f"</svg>"
    )


# ----------------------------------------------------------------------
# Sections
# ----------------------------------------------------------------------


def _tile(label: str, value: str, extra: str = "") -> str:
    return (
        f'<div class="tile"><div class="label">{escape(label)}</div>'
        f'<div class="value">{escape(value)}</div>{extra}</div>'
    )


def _windows_section(windows_doc: Dict[str, Any]) -> str:
    rows = windows_doc["rows"]
    totals = windows_doc["totals"]
    alloc_rates = [row["alloc_rate"] for row in rows]
    short_fractions = [row["short_fraction"] for row in rows]
    tiles = "".join([
        _tile("objects", _fmt_compact(totals["allocs"])),
        _tile("allocated bytes", _fmt_compact(totals["alloc_bytes"])),
        _tile("short-lived", _fmt_compact(totals["short_allocs"])),
        _tile("sites", _fmt_compact(totals["sites"])),
        _tile("frag bytes", _fmt_compact(totals["frag_bytes"])),
        _tile(
            "alloc rate /KB",
            _fmt_compact(alloc_rates[-1] if alloc_rates else 0),
            _sparkline(alloc_rates, "allocation rate per window"),
        ),
        _tile(
            "short fraction",
            f"{short_fractions[-1]:.2f}" if short_fractions else "0.00",
            _sparkline(short_fractions, "short-lived fraction per window"),
        ),
    ])
    legend = (
        '<div class="legend">'
        '<span><span class="key" style="background:#2a78d6"></span>'
        "short-lived bytes</span>"
        '<span><span class="key" style="background:#eb6834"></span>'
        "all allocated bytes</span></div>"
    )
    return (
        '<section class="card" id="timeline">'
        f"<h2>Windowed time series</h2>"
        f'<p class="sub">{windows_doc["windows"]} windows by'
        f' {escape(windows_doc["axis"])} · byte-time 0–'
        f'{_fmt_int(windows_doc["end_time"])} · threshold'
        f' {_fmt_int(windows_doc["threshold"])} B</p>'
        f'<div class="tiles">{tiles}</div>'
        f"<h2>Allocated bytes per window</h2>{legend}"
        f"{_stacked_alloc_svg(rows)}"
        f"<h2>Live bytes at window boundaries</h2>"
        f"{_live_bytes_svg(rows)}"
        "</section>"
    )


def _drift_section(drift_doc: Optional[Dict[str, Any]], top: int) -> str:
    if not drift_doc:
        return (
            '<section class="card" id="drift"><h2>Lifetime drift</h2>'
            '<p class="sub muted">no drift report attached</p></section>'
        )
    totals = drift_doc["totals"]
    head = (
        f'<p class="sub">{_fmt_int(totals["sites_scored"])} sites scored ·'
        f' {_fmt_int(totals["drifting_sites"])} drifting ·'
        f' {_fmt_int(totals["drift_windows"])} contradicting windows ·'
        f' {escape(drift_doc["classifier"])} classifier</p>'
    )
    drifters = sorted(
        (s for s in drift_doc["sites"] if s["drifting"]),
        key=lambda s: (-s["drift_score"], -s["drift_objects"],
                       tuple(s["chain"])),
    )[:top]
    if not drifters:
        body = (
            '<p class="muted">no drifting sites — the global'
            " classification holds in every window</p>"
        )
    else:
        rows = "".join(
            "<tr>"
            f'<td class="site">{escape(_chain_label(s["chain"]))}</td>'
            f"<td>{escape(s['classification'])}</td>"
            f"<td>{s['drift_score']:.3f}</td>"
            f"<td>{_fmt_int(s['drift_windows'])}</td>"
            f"<td>{_fmt_int(s['drift_objects'])}</td>"
            f"<td>{s['short_fraction']:.3f}</td>"
            "</tr>"
            for s in drifters
        )
        body = (
            '<table><thead><tr><th class="site">site</th><th>class</th>'
            "<th>drift score</th><th>windows</th><th>objects</th>"
            "<th>global short frac</th></tr></thead>"
            f"<tbody>{rows}</tbody></table>"
        )
    return (
        f'<section class="card" id="drift"><h2>Lifetime drift</h2>'
        f"{head}{body}</section>"
    )


def _attribution_section(
    attrib_doc: Optional[Dict[str, Any]], top: int
) -> str:
    if not attrib_doc:
        return (
            '<section class="card" id="attribution">'
            "<h2>Site attribution</h2>"
            '<p class="sub muted">no attribution attached</p></section>'
        )
    if "top_sites" in attrib_doc:
        ranked = attrib_doc["top_sites"][:top]
        site_count = attrib_doc.get("site_count", len(ranked))
    else:
        ranked = sorted(
            attrib_doc.get("sites", []),
            key=lambda s: (-s["total_instr"], -s["bytes"],
                           tuple(s["chain"])),
        )[:top]
        site_count = len(attrib_doc.get("sites", []))
    rows = "".join(
        "<tr>"
        f'<td class="site">{escape(_chain_label(s["chain"]))}</td>'
        f"<td>{_fmt_int(s['total_instr'])}</td>"
        f"<td>{_fmt_int(s['bytes'])}</td>"
        f"<td>{_fmt_int(s.get('frag_byte_time', 0))}</td>"
        f"<td>{_fmt_int(s.get('mispredictions', 0))}</td>"
        "</tr>"
        for s in ranked
    )
    profile = attrib_doc.get("profile", "?")
    return (
        '<section class="card" id="attribution"><h2>Site attribution</h2>'
        f'<p class="sub">{escape(str(profile))} profile ·'
        f" {_fmt_int(site_count)} sites · top {len(ranked)}"
        " by attributed instructions</p>"
        '<table><thead><tr><th class="site">site</th><th>instructions</th>'
        "<th>bytes</th><th>frag·time</th><th>mispred</th></tr></thead>"
        f"<tbody>{rows}</tbody></table></section>"
    )


def _telemetry_section(telemetry_doc: Optional[Dict[str, Any]]) -> str:
    if not telemetry_doc:
        return ""
    totals = telemetry_doc.get("totals", {})
    tiles = "".join(
        _tile(name.replace("_", " "), _fmt_compact(value))
        for name, value in sorted(totals.items())
        if isinstance(value, (int, float))
    )
    return (
        '<section class="card" id="telemetry"><h2>Telemetry summary</h2>'
        f'<p class="sub">{escape(str(telemetry_doc.get("allocator", "?")))}'
        f' allocator · {_fmt_int(telemetry_doc.get("sample_count", 0))}'
        " samples</p>"
        f'<div class="tiles">{tiles}</div></section>'
    )


def _bench_section(bench_history: Optional[List[Dict[str, Any]]]) -> str:
    if not bench_history:
        return ""
    walls = [
        sum(rec.get("wall_seconds", 0.0) for rec in session.get("records", []))
        for session in bench_history
    ]
    rows = "".join(
        "<tr>"
        f"<td>{int(session.get('seq', 0)):04d}</td>"
        f'<td class="site">'
        f'{escape(str(session.get("provenance", {}).get("git_sha", "?"))[:10])}'
        "</td>"
        f"<td>{len(session.get('records', []))}</td>"
        f"<td>{wall:.3f}s</td>"
        "</tr>"
        for session, wall in zip(bench_history, walls)
    )
    return (
        '<section class="card" id="bench"><h2>Bench trajectory</h2>'
        f'<p class="sub">{len(bench_history)} sessions · total wall time'
        " per session (environment-dependent, informational)</p>"
        f"{_sparkline(walls, 'total wall seconds per bench session')}"
        '<table><thead><tr><th>seq</th><th class="site">git sha</th>'
        "<th>benchmarks</th><th>wall</th></tr></thead>"
        f"<tbody>{rows}</tbody></table></section>"
    )


def render_report(
    windows_doc: Dict[str, Any],
    drift_doc: Optional[Dict[str, Any]] = None,
    attribution_doc: Optional[Dict[str, Any]] = None,
    telemetry_doc: Optional[Dict[str, Any]] = None,
    bench_history: Optional[List[Dict[str, Any]]] = None,
    generated_at: str = "",
    top: int = 10,
) -> str:
    """Render the single-file run report (deterministic in its inputs).

    ``windows_doc`` is :meth:`~repro.obs.windows.WindowProfile.to_dict`'s
    output (or its JSON export re-read); the optional documents are the
    drift report, an attribution document or summary, a telemetry
    summary, and the bench ``to_dict`` trajectory.  ``generated_at`` is
    the one non-derived field — the caller stamps it, so two renders of
    the same inputs with the same stamp are byte-identical.
    """
    program = windows_doc.get("program", "?")
    dataset = windows_doc.get("dataset", "?")
    stamp = (
        f'<p class="sub">generated at {escape(generated_at)}</p>'
        if generated_at else ""
    )
    body = "".join([
        f"<h1>repro-alloc run report — {escape(str(program))}"
        f"/{escape(str(dataset))}</h1>",
        stamp,
        _windows_section(windows_doc),
        _drift_section(drift_doc, top),
        _attribution_section(attribution_doc, top),
        _telemetry_section(telemetry_doc),
        _bench_section(bench_history),
    ])
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        '<meta name="viewport" content="width=device-width,'
        ' initial-scale=1">\n'
        f"<title>repro-alloc report — {escape(str(program))}"
        f"/{escape(str(dataset))}</title>\n"
        f"<style>\n{_CSS}</style>\n"
        f"</head><body><main>{body}</main></body></html>\n"
    )


def write_report(
    path: Union[str, Path],
    windows_doc: Dict[str, Any],
    **kwargs: Any,
) -> Path:
    """Render and write the report; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = render_report(windows_doc, **kwargs)
    with open(path, "w", encoding="utf-8", newline="\n") as handle:
        handle.write(text)
    return path
