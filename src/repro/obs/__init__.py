"""Observability layer: metrics registry, heap telemetry, exporters.

``repro.obs`` is the cross-cutting instrumentation subsystem.  It has two
halves that share one counter backend:

* :mod:`repro.obs.metrics` — the named wall-time/counter registry
  (:class:`Metrics`, process-wide :data:`METRICS`) used by the experiment
  pipeline (trace cache, warm, table rendering) *and* by simulation
  telemetry, so one report covers both.
* :mod:`repro.obs.telemetry` — the :class:`Telemetry` recorder that rides
  along a trace replay through the probe interface on
  :class:`~repro.alloc.base.Allocator`, producing time-series heap
  samples and per-site misprediction counters.
* :mod:`repro.obs.spans` — the :class:`SpanTracer` that records nested
  wall-time spans across the whole pipeline (workload runs, cache
  resolution, training, replay, table rendering) and exports them as
  Chrome trace-event JSON for Perfetto.

:mod:`repro.obs.export` writes JSONL/JSON/CSV artifacts,
:mod:`repro.obs.attrib` attributes simulated cost / occupancy /
fragmentation / misprediction penalties per allocation site (an
order-independent fold, so it shards), :mod:`repro.obs.windows`
partitions a run into N windows of per-window heap series (another
shardable fold), :mod:`repro.obs.drift` scores per-site temporal drift
against the global classification, :mod:`repro.obs.diff` diffs two
recorded sessions into per-site regression verdicts,
:mod:`repro.obs.html` renders the self-contained HTML run report, and
:mod:`repro.obs.report` renders the ``stats`` / ``timeline`` CLI views
plus the folded-stack span view.
"""

from repro.obs.metrics import METRICS, Metrics, StageTiming
from repro.obs.telemetry import (
    DEFAULT_SAMPLE_INTERVAL,
    MISPREDICTION_KINDS,
    NullTelemetry,
    SiteCounters,
    Telemetry,
)
from repro.obs.spans import (
    TRACER,
    Span,
    SpanTracer,
    chrome_trace,
    traced,
    write_chrome_trace,
)
from repro.obs.export import export_timeline, telemetry_summary, write_jsonl
from repro.obs.attrib import (
    AttributionFold,
    AttributionProfile,
    SiteAttribution,
    attribute_sites,
    export_attribution,
    render_attrib,
)
from repro.obs.diff import (
    DiffResult,
    MetricDelta,
    diff_documents,
    diff_paths,
    render_diff_report,
)
from repro.obs.report import (
    render_folded,
    render_stats,
    render_timeline,
    sparkline,
)
from repro.obs.windows import (
    WindowFold,
    WindowProfile,
    WindowSpec,
    export_windows,
    render_windows,
    window_profile,
)
from repro.obs.drift import drift_report, render_drift, write_drift_json
from repro.obs.html import render_report, write_report

__all__ = [
    "METRICS",
    "Metrics",
    "StageTiming",
    "TRACER",
    "Span",
    "SpanTracer",
    "chrome_trace",
    "traced",
    "write_chrome_trace",
    "render_folded",
    "DEFAULT_SAMPLE_INTERVAL",
    "MISPREDICTION_KINDS",
    "NullTelemetry",
    "SiteCounters",
    "Telemetry",
    "export_timeline",
    "telemetry_summary",
    "write_jsonl",
    "AttributionFold",
    "AttributionProfile",
    "SiteAttribution",
    "attribute_sites",
    "export_attribution",
    "render_attrib",
    "DiffResult",
    "MetricDelta",
    "diff_documents",
    "diff_paths",
    "render_diff_report",
    "render_stats",
    "render_timeline",
    "sparkline",
    "WindowFold",
    "WindowProfile",
    "WindowSpec",
    "export_windows",
    "render_windows",
    "window_profile",
    "drift_report",
    "render_drift",
    "write_drift_json",
    "render_report",
    "write_report",
]
