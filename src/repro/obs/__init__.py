"""Observability layer: metrics registry, heap telemetry, exporters.

``repro.obs`` is the cross-cutting instrumentation subsystem.  It has two
halves that share one counter backend:

* :mod:`repro.obs.metrics` — the named wall-time/counter registry
  (:class:`Metrics`, process-wide :data:`METRICS`) used by the experiment
  pipeline (trace cache, warm, table rendering) *and* by simulation
  telemetry, so one report covers both.
* :mod:`repro.obs.telemetry` — the :class:`Telemetry` recorder that rides
  along a trace replay through the probe interface on
  :class:`~repro.alloc.base.Allocator`, producing time-series heap
  samples and per-site misprediction counters.

:mod:`repro.obs.export` writes JSONL/JSON/CSV artifacts and
:mod:`repro.obs.report` renders the ``stats`` / ``timeline`` CLI views.
"""

from repro.obs.metrics import METRICS, Metrics, StageTiming
from repro.obs.telemetry import (
    DEFAULT_SAMPLE_INTERVAL,
    MISPREDICTION_KINDS,
    NullTelemetry,
    SiteCounters,
    Telemetry,
)
from repro.obs.export import export_timeline, telemetry_summary, write_jsonl
from repro.obs.report import render_stats, render_timeline, sparkline

__all__ = [
    "METRICS",
    "Metrics",
    "StageTiming",
    "DEFAULT_SAMPLE_INTERVAL",
    "MISPREDICTION_KINDS",
    "NullTelemetry",
    "SiteCounters",
    "Telemetry",
    "export_timeline",
    "telemetry_summary",
    "write_jsonl",
    "render_stats",
    "render_timeline",
    "sparkline",
]
