"""Per-site lifetime drift: where the global classification stops holding.

Barrett & Zorn's predictor assigns each site one classification for the
whole run — short-lived or not — and §5.2's failure modes (late frees
polluting the arena, short objects missed by the general heap) are
exactly what happens when a site's behavior *changes* over the run while
its classification cannot.  This module makes that failure mode visible:
it scores every site of a :class:`~repro.obs.windows.WindowProfile`
window by window and flags the ones whose per-window short-lived
fraction contradicts their global classification in at least ``k``
windows.

The rules, all deterministic functions of the windowed tallies:

* a site's **classification** is the predictor's majority verdict when a
  trained database is attached (``predicted_objects / objects >= 0.5`` —
  verdicts key on ``(chain, size)``, so a chain allocating several sizes
  can split), and otherwise the oracle fallback ``global short_fraction
  >= 0.5``;
* a window **contradicts** the classification when it holds at least
  ``min_objects`` of the site's objects (noise floor) and its
  short-lived fraction falls on the other side of ``flip_fraction``;
* a site **drifts** when at least ``min_windows`` windows contradict.

The report is a plain dict with ``kind: "drift"`` and includes *every*
scored site, drifting or not — :mod:`repro.obs.diff` treats vanished
keys as regressions, so emitting only the drifters would make a site
that *starts* drifting look like a disappearance instead of a metric
regression.  ``diff-sessions`` picks the kind up automatically and
gates ``drift_windows`` / ``drift_objects`` / ``drift_score`` per site
plus the totals, all lower-is-better.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.obs.windows import WindowProfile

__all__ = [
    "DRIFT_SCHEMA_VERSION",
    "DEFAULT_MIN_WINDOWS",
    "DEFAULT_MIN_OBJECTS",
    "DEFAULT_FLIP_FRACTION",
    "drift_report",
    "render_drift",
    "write_drift_json",
]

#: Version stamp of the exported drift document.
DRIFT_SCHEMA_VERSION = 1

#: Windows that must contradict before a site counts as drifting.
DEFAULT_MIN_WINDOWS = 2

#: Objects a window must hold for its fraction to count (noise floor).
DEFAULT_MIN_OBJECTS = 8

#: The short-fraction boundary a window must cross to contradict.
DEFAULT_FLIP_FRACTION = 0.5


def drift_report(
    profile: WindowProfile,
    min_windows: int = DEFAULT_MIN_WINDOWS,
    min_objects: int = DEFAULT_MIN_OBJECTS,
    flip_fraction: float = DEFAULT_FLIP_FRACTION,
) -> Dict[str, Any]:
    """Score every site of a window profile for temporal drift.

    Returns the deterministic drift document: identity fields, the
    scoring parameters, whole-run totals, and one entry per scored site
    sorted by chain.  Drifting sites carry a ``windows`` detail block
    (only the contradicting windows, by index); clean sites stay
    compact but present, so diff keys are stable across runs.
    """
    if min_windows < 1:
        raise ValueError(f"min_windows must be >= 1, got {min_windows}")
    threshold = profile.threshold
    has_predictor = profile.fold.predictor is not None
    sites = []
    total_drifting = 0
    total_drift_windows = 0
    total_drift_objects = 0
    for chain, per_window in sorted(profile.site_windows().items()):
        objects = sum(r.objects for r in per_window.values())
        short_objects = sum(r.short_objects for r in per_window.values())
        predicted = sum(r.predicted_objects for r in per_window.values())
        short_fraction = short_objects / objects if objects else 0.0
        if has_predictor:
            classified_short = objects > 0 and predicted / objects >= 0.5
        else:
            classified_short = short_fraction >= 0.5
        contradictions = []
        drift_objects = 0
        for window in sorted(per_window):
            record = per_window[window]
            if record.objects < min_objects:
                continue
            window_fraction = record.short_objects / record.objects
            window_short = window_fraction >= flip_fraction
            if window_short != classified_short:
                contradictions.append({
                    "index": window,
                    "objects": record.objects,
                    "short_objects": record.short_objects,
                    "short_fraction": round(window_fraction, 6),
                })
                drift_objects += record.objects
        drifting = len(contradictions) >= min_windows
        entry: Dict[str, Any] = {
            "chain": list(chain),
            "classification": "short" if classified_short else "long",
            "objects": objects,
            "short_fraction": round(short_fraction, 6),
            "drift_windows": len(contradictions) if drifting else 0,
            "drift_objects": drift_objects if drifting else 0,
            "drift_score": (
                round(drift_objects / objects, 6)
                if drifting and objects else 0.0
            ),
            "drifting": drifting,
        }
        if drifting:
            entry["windows"] = contradictions
            total_drifting += 1
            total_drift_windows += len(contradictions)
            total_drift_objects += drift_objects
        sites.append(entry)
    return {
        "kind": "drift",
        "schema_version": DRIFT_SCHEMA_VERSION,
        "program": profile.program,
        "dataset": profile.dataset,
        "axis": profile.spec.axis,
        "windows": profile.spec.count,
        "threshold": threshold,
        "classifier": "predictor" if has_predictor else "oracle",
        "min_windows": min_windows,
        "min_objects": min_objects,
        "flip_fraction": round(flip_fraction, 6),
        "totals": {
            "sites_scored": len(sites),
            "drifting_sites": total_drifting,
            "drift_windows": total_drift_windows,
            "drift_objects": total_drift_objects,
        },
        "sites": sites,
    }


def _chain_label(chain, depth: int = 4) -> str:
    tail = chain[-depth:]
    label = ">".join(tail)
    return ("…" + label) if len(chain) > depth else label


def render_drift(report: Dict[str, Any], top: int = 10) -> str:
    """The drift report as a terminal table, worst sites first."""
    totals = report["totals"]
    lines = [
        f"lifetime drift: {report['program']}/{report['dataset']}"
        f" · {report['windows']} windows by {report['axis']}"
        f" · {report['classifier']} classifier",
        f"  {totals['sites_scored']:,} sites scored"
        f" · {totals['drifting_sites']:,} drifting"
        f" · {totals['drift_windows']:,} contradicting windows"
        f" · {totals['drift_objects']:,} objects",
    ]
    drifters = sorted(
        (s for s in report["sites"] if s["drifting"]),
        key=lambda s: (-s["drift_score"], -s["drift_objects"],
                       tuple(s["chain"])),
    )
    if drifters:
        lines.append(f"  top {min(top, len(drifters))} drifting sites:")
        lines.append(
            "    score    windows     objects  class  site"
        )
        for entry in drifters[:top]:
            lines.append(
                f"    {entry['drift_score']:5.3f}  {entry['drift_windows']:>9,}"
                f"  {entry['drift_objects']:>10,}  {entry['classification']:>5}"
                f"  {_chain_label(tuple(entry['chain']))}"
            )
    else:
        lines.append("  no drifting sites — the global classification holds")
    return "\n".join(lines)


def write_drift_json(
    report: Dict[str, Any], path: Union[str, Path]
) -> Path:
    """Write the drift document as deterministic JSON."""
    path = Path(path)
    with open(path, "w", encoding="utf-8", newline="\n") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
