"""Per-site cost attribution: an order-independent fold over the event IR.

The paper's whole argument is that the allocation *site* (the predictor
call chain) is the right unit for memory decisions, yet telemetry stops
at whole-run totals — a run got slower or more fragmented, but nothing
says *which sites paid for it*.  This module closes that gap: an
:class:`AttributionFold` consumes the same ``(chain_id, size, lifetime,
touches)`` tuples every predictor trainer folds and attributes, per call
chain:

* **simulated instruction cost** — each object is priced one alloc/free
  pair through :class:`~repro.alloc.costs.CostModel` under the chosen
  allocator profile (``bsd``, ``firstfit``, or ``arena`` with a
  predictor deciding placement per object);
* **heap occupancy** — ``size x lifetime`` byte-time, the integral of
  the object's footprint over the byte-time clock;
* **fragmentation contribution** — the rounding/header padding the
  profile's allocator would add (power-of-two buckets for ``bsd``,
  8-byte alignment plus header for ``firstfit`` and arena-missed
  objects, zero for arena bump allocation), both as bytes and as
  byte-time;
* **misprediction penalty** — ``late_free`` (predicted short, died at or
  past the threshold; the arena-polluting failure of §5.2, with the
  pollution integral ``size x (lifetime - threshold)``) and
  ``missed_short`` (sent to the general heap, actually died under the
  threshold — capture left on the table).

The fold obeys the :class:`~repro.runtime.shard.folds.LifetimeFold`
contract — ``add`` is order-independent, ``merge`` commutative — so it
runs identically materialized, streamed, and sharded over the v3 chunk
index (``--jobs N``), and the exports are byte-identical across all
three paths (gated in CI and ``tests/test_stream_parity.py``).

Deliberate exclusions, documented rather than approximated:

* history-dependent cost terms (first-fit scan lengths, BSD page
  refills, splits, coalesces, arena resets) depend on heap state at
  each event and are therefore not order-independent; the per-object
  base costs attributed here are the deterministic floor.  Whole-run
  totals including those terms live in ``bench`` records and Table 9.
* the ``overflow`` misprediction kind requires replayed arena occupancy
  and is structurally zero here; ``stats`` reports it from a real
  replay.
* every object is charged exactly one alloc and one free — objects
  never freed die at program exit by the trace convention, and their
  exit-time free is priced like any other.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.alloc.bsd import bucket_for
from repro.alloc.costs import DEFAULT_COST_MODEL, CostModel
from repro.alloc.firstfit import ALIGNMENT, HEADER_SIZE
from repro.core.predictor import DEFAULT_THRESHOLD, LifetimePredictor
from repro.core.sites import CallChain, ChainTable
from repro.runtime.shard.folds import LifetimeFold

__all__ = [
    "ATTRIB_PROFILES",
    "ATTRIB_SCHEMA_VERSION",
    "SiteAttribution",
    "AttributionFold",
    "AttributionProfile",
    "attribute_sites",
    "profile_for_spec",
    "render_attrib",
    "export_attribution",
    "write_attrib_json",
    "write_attrib_csv",
    "write_attrib_collapsed",
]

#: Allocator profiles an attribution can be priced under.
ATTRIB_PROFILES = ("arena", "firstfit", "bsd")

#: Version stamp of the exported attribution document.
ATTRIB_SCHEMA_VERSION = 1

#: Per-site metric columns in export order (also the CSV column set).
_METRIC_FIELDS = (
    "objects",
    "bytes",
    "touches",
    "short_objects",
    "short_bytes",
    "predicted_objects",
    "alloc_instr",
    "free_instr",
    "total_instr",
    "occupancy_byte_time",
    "frag_bytes",
    "frag_byte_time",
    "late_free",
    "late_free_byte_time",
    "missed_short",
    "missed_short_bytes",
    "mispredictions",
)


@dataclass
class SiteAttribution:
    """One call chain's attributed costs (all integers, all summable)."""

    objects: int = 0
    bytes: int = 0
    touches: int = 0
    short_objects: int = 0
    short_bytes: int = 0
    predicted_objects: int = 0
    alloc_instr: int = 0
    free_instr: int = 0
    occupancy_byte_time: int = 0
    frag_bytes: int = 0
    frag_byte_time: int = 0
    late_free: int = 0
    late_free_byte_time: int = 0
    missed_short: int = 0
    missed_short_bytes: int = 0

    @property
    def total_instr(self) -> int:
        """Attributed instructions, alloc and free sides combined."""
        return self.alloc_instr + self.free_instr

    @property
    def mispredictions(self) -> int:
        """Misprediction events attributable without replay state."""
        return self.late_free + self.missed_short

    def merge(self, other: "SiteAttribution") -> None:
        """Fold another site record into this one (plain sums)."""
        self.objects += other.objects
        self.bytes += other.bytes
        self.touches += other.touches
        self.short_objects += other.short_objects
        self.short_bytes += other.short_bytes
        self.predicted_objects += other.predicted_objects
        self.alloc_instr += other.alloc_instr
        self.free_instr += other.free_instr
        self.occupancy_byte_time += other.occupancy_byte_time
        self.frag_bytes += other.frag_bytes
        self.frag_byte_time += other.frag_byte_time
        self.late_free += other.late_free
        self.late_free_byte_time += other.late_free_byte_time
        self.missed_short += other.missed_short
        self.missed_short_bytes += other.missed_short_bytes

    def to_dict(self) -> Dict[str, int]:
        """All metric columns, derived ones included."""
        return {name: getattr(self, name) for name in _METRIC_FIELDS}


def _firstfit_padding(size: int) -> int:
    """Bytes of alignment + header overhead a first-fit block carries."""
    aligned = ((size + ALIGNMENT - 1) // ALIGNMENT) * ALIGNMENT
    return aligned + HEADER_SIZE - size


def _bsd_padding(size: int) -> int:
    """Bytes of bucket rounding + header overhead a BSD block carries."""
    return (1 << bucket_for(size)) - size


class AttributionFold(LifetimeFold):
    """The per-site attribution accumulators as a shardable fold.

    ``add`` prices each object from its ``(chain, size, lifetime)``
    alone — no heap state — so it is order-independent; ``merge`` sums
    per-chain records, which is commutative and associative.  The fold
    carries the chain table (to resolve chains for the predictor) and
    the predictor itself; both are picklable, so instances cross the
    process-pool boundary exactly like the training folds do.
    """

    def __init__(
        self,
        chains: ChainTable,
        profile: str,
        predictor: Optional[LifetimePredictor] = None,
        threshold: Optional[int] = None,
        model: CostModel = DEFAULT_COST_MODEL,
    ):
        if profile not in ATTRIB_PROFILES:
            raise ValueError(
                f"unknown attribution profile {profile!r} "
                f"(have {', '.join(ATTRIB_PROFILES)})"
            )
        self.chains = chains
        self.profile = profile
        self.predictor = predictor
        if threshold is None:
            threshold = getattr(predictor, "threshold", DEFAULT_THRESHOLD)
        self.threshold = threshold
        self.model = model
        self.sites: Dict[int, SiteAttribution] = {}

    def add(
        self, chain_id: int, size: int, lifetime: int, touches: int
    ) -> None:
        site = self.sites.get(chain_id)
        if site is None:
            site = self.sites[chain_id] = SiteAttribution()
        short = lifetime < self.threshold
        site.objects += 1
        site.bytes += size
        site.touches += touches
        site.occupancy_byte_time += size * lifetime
        if short:
            site.short_objects += 1
            site.short_bytes += size
        model = self.model
        if self.profile == "bsd":
            alloc = model.bsd_alloc_base
            free = model.bsd_free
            frag = _bsd_padding(size)
        elif self.profile == "firstfit":
            alloc = model.ff_alloc_base
            free = model.ff_free_base
            frag = _firstfit_padding(size)
        else:  # arena: the predictor decides placement per object
            predicted = self.predictor is not None and (
                self.predictor.predicts_short_lived(
                    self.chains.chain(chain_id), size
                )
            )
            if predicted:
                site.predicted_objects += 1
                alloc = model.predict + model.arena_bump
                free = model.arena_free
                frag = 0
                if not short:
                    site.late_free += 1
                    site.late_free_byte_time += size * (
                        lifetime - self.threshold
                    )
            else:
                alloc = model.predict + model.ff_alloc_base
                free = model.ff_free_base
                frag = _firstfit_padding(size)
                if short:
                    site.missed_short += 1
                    site.missed_short_bytes += size
        site.alloc_instr += alloc
        site.free_instr += free
        site.frag_bytes += frag
        site.frag_byte_time += frag * lifetime

    def merge(self, other: "AttributionFold") -> None:
        mine = self.sites
        for chain_id, site in other.sites.items():
            current = mine.get(chain_id)
            if current is None:
                mine[chain_id] = site
            else:
                current.merge(site)


@dataclass
class AttributionProfile:
    """One execution's finished attribution, keyed by call chain."""

    program: str
    dataset: str
    profile: str
    threshold: int
    sites: Dict[CallChain, SiteAttribution] = field(default_factory=dict)

    def totals(self) -> SiteAttribution:
        """Every site's record folded into one whole-run total."""
        total = SiteAttribution()
        for site in self.sites.values():
            total.merge(site)
        return total

    def top_sites(
        self, top: int = 10
    ) -> List[Tuple[CallChain, SiteAttribution]]:
        """The ``top`` sites by attributed instructions (ties: more
        bytes, then chain order, so the ranking is deterministic)."""
        ranked = sorted(
            self.sites.items(),
            key=lambda cs: (-cs[1].total_instr, -cs[1].bytes, cs[0]),
        )
        return ranked[:top]

    def to_dict(self) -> Dict[str, Any]:
        """The deterministic attribution document (sites sorted by chain)."""
        return {
            "kind": "attribution",
            "schema_version": ATTRIB_SCHEMA_VERSION,
            "program": self.program,
            "dataset": self.dataset,
            "profile": self.profile,
            "threshold": self.threshold,
            "cost_model_excludes": [
                "history-dependent op counts (scans, refills, splits, "
                "coalesces, resets)",
                "overflow mispredictions (need replayed arena occupancy)",
            ],
            "totals": self.totals().to_dict(),
            "sites": [
                {"chain": list(chain), **self.sites[chain].to_dict()}
                for chain in sorted(self.sites)
            ],
        }

    def collapsed_stacks(self, weight: str = "total_instr") -> str:
        """The sites as folded stacks: ``caller;...;callee <weight>``.

        One line per chain, semicolon-joined outermost-first, weighted by
        the chosen metric — the format ``flamegraph.pl`` and speedscope
        consume.  Zero-weight chains are dropped, lines sort by chain.
        """
        if weight not in _METRIC_FIELDS:
            raise ValueError(
                f"unknown attribution weight {weight!r} "
                f"(have {', '.join(_METRIC_FIELDS)})"
            )
        lines = []
        for chain in sorted(self.sites):
            value = getattr(self.sites[chain], weight)
            if value:
                lines.append(f"{';'.join(chain)} {value}")
        return "\n".join(lines)

    def summary_dict(self, top: int = 10) -> Dict[str, Any]:
        """A compact top-K form for embedding in bench sessions."""
        return {
            "profile": self.profile,
            "threshold": self.threshold,
            "site_count": len(self.sites),
            "totals": self.totals().to_dict(),
            "top_sites": [
                {
                    "chain": list(chain),
                    "total_instr": site.total_instr,
                    "bytes": site.bytes,
                    "frag_byte_time": site.frag_byte_time,
                    "mispredictions": site.mispredictions,
                }
                for chain, site in self.top_sites(top)
            ],
        }


def profile_for_spec(spec) -> str:
    """The attribution profile an :class:`~repro.alloc.AllocatorSpec`
    prices under (the arena kinds share the arena profile)."""
    return "arena" if spec.kind in ("arena", "multiarena") else spec.kind


def attribute_sites(
    trace,
    profile: str = "arena",
    predictor: Optional[LifetimePredictor] = None,
    threshold: Optional[int] = None,
    model: CostModel = DEFAULT_COST_MODEL,
    spec=None,
) -> AttributionProfile:
    """Attribute one execution's costs per call chain.

    ``trace`` is anything :func:`~repro.runtime.stream.protocol.
    as_event_source` accepts.  The fold dispatches through
    :func:`~repro.runtime.shard.engine.fold_object_lifetimes`, which
    shards over the chunk index when the source advertises
    ``shard_jobs > 1`` and otherwise folds the serial lifetime stream —
    so materialized, streamed, and ``--jobs N`` inputs produce the same
    profile field for field.

    With ``spec`` (an :class:`~repro.alloc.AllocatorSpec`) the profile
    and threshold come from the spec — the declarative path the search
    service and spec-driven CLI commands use; explicit ``threshold``
    still wins when both are given.
    """
    if spec is not None:
        profile = profile_for_spec(spec)
        if threshold is None:
            threshold = spec.threshold
    # Imported lazily, mirroring repro.core.predictor: the shard engine
    # imports repro.obs.spans, so a top-level import would tie the two
    # packages' initialization orders together.
    from repro.obs.spans import TRACER
    from repro.runtime.shard.engine import fold_object_lifetimes
    from repro.runtime.stream.protocol import as_event_source

    source = as_event_source(trace)
    header = source.header
    with TRACER.span("attrib.fold", cat="obs", program=header.program,
                     dataset=header.dataset, profile=profile):
        fold = fold_object_lifetimes(
            source,
            lambda: AttributionFold(
                header.chains, profile,
                predictor=predictor, threshold=threshold, model=model,
            ),
        )
    return AttributionProfile(
        program=header.program,
        dataset=header.dataset,
        profile=profile,
        threshold=fold.threshold,
        sites={
            header.chains.chain(chain_id): site
            for chain_id, site in fold.sites.items()
        },
    )


# ----------------------------------------------------------------------
# Rendering and deterministic exports
# ----------------------------------------------------------------------


def _chain_label(chain: CallChain, depth: int = 4) -> str:
    tail = chain[-depth:]
    label = ">".join(tail)
    return ("…" + label) if len(chain) > depth else label


def render_attrib(profile: AttributionProfile, top: int = 10) -> str:
    """The attribution as a terminal table: totals, then the top sites."""
    totals = profile.totals()
    lines = [
        f"site attribution: {profile.program}/{profile.dataset}"
        f" · {profile.profile} profile"
        f" · threshold {profile.threshold} bytes",
        f"  {totals.objects:,} objects · {totals.bytes:,} bytes"
        f" · {len(profile.sites):,} sites"
        f" · {totals.total_instr:,} instructions"
        f" · {totals.frag_bytes:,} frag bytes",
        f"  mispredictions: late-free {totals.late_free:,}"
        f" · missed-short {totals.missed_short:,}"
        " (overflow needs a replay; see stats)",
    ]
    ranked = profile.top_sites(top)
    if ranked:
        lines.append(f"  top {len(ranked)} sites by attributed instructions:")
        lines.append(
            "    instr        bytes        frag·time     late  missed  site"
        )
        for chain, site in ranked:
            lines.append(
                f"    {site.total_instr:>11,}  {site.bytes:>11,}"
                f"  {site.frag_byte_time:>12,}  {site.late_free:>4,}"
                f"  {site.missed_short:>6,}  {_chain_label(chain)}"
            )
    else:
        lines.append("  no sites attributed (empty trace?)")
    return "\n".join(lines)


def write_attrib_json(
    profile: AttributionProfile, path: Union[str, Path]
) -> Path:
    """Write the attribution document as deterministic JSON."""
    path = Path(path)
    with open(path, "w", encoding="utf-8", newline="\n") as handle:
        json.dump(profile.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def write_attrib_csv(
    profile: AttributionProfile, path: Union[str, Path]
) -> Path:
    """Write one CSV row per site, sorted by chain, fixed column order.

    The chain cell is the frames ``;``-joined; frames containing the
    field separator, quotes, or newlines are quoted by the :mod:`csv`
    module (RFC 4180), so adversarial chain names round-trip through any
    conforming reader instead of shearing the row.
    """
    import csv

    path = Path(path)
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle, lineterminator="\n")
        writer.writerow(("chain",) + _METRIC_FIELDS)
        for chain in sorted(profile.sites):
            metrics = profile.sites[chain].to_dict()
            writer.writerow(
                [";".join(chain)]
                + [str(metrics[name]) for name in _METRIC_FIELDS]
            )
    return path


def write_attrib_collapsed(
    profile: AttributionProfile,
    path: Union[str, Path],
    weight: str = "total_instr",
) -> Path:
    """Write the collapsed-stack (flamegraph.pl) view of the sites."""
    path = Path(path)
    text = profile.collapsed_stacks(weight)
    with open(path, "w", encoding="utf-8", newline="\n") as handle:
        handle.write(text)
        if text:
            handle.write("\n")
    return path


def export_attribution(
    profile: AttributionProfile,
    out_dir: Union[str, Path],
    basename: Optional[str] = None,
    weight: str = "total_instr",
) -> Dict[str, Path]:
    """Write the JSON/CSV/collapsed artifacts under ``out_dir``.

    Returns ``{"json": ..., "csv": ..., "collapsed": ...}`` paths; the
    basename defaults to ``<program>-<dataset>-<profile>`` flattened the
    same way the telemetry exporter flattens its artifact names.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    if basename is None:
        raw = f"{profile.program}-{profile.dataset}-{profile.profile}"
        basename = "".join(
            ch if ch.isalnum() or ch in "-._" else "_" for ch in raw
        )
    return {
        "json": write_attrib_json(
            profile, out_dir / f"{basename}.attrib.json"
        ),
        "csv": write_attrib_csv(profile, out_dir / f"{basename}.attrib.csv"),
        "collapsed": write_attrib_collapsed(
            profile, out_dir / f"{basename}.collapsed", weight=weight
        ),
    }
