"""Windowed heap time-series: a position-aware fold over the event IR.

Barrett & Zorn train one *global* per-site threshold for the whole run,
but allocation behavior is phased: a site that is short-lived during
parsing may be long-lived during evaluation.  Whole-run attribution
(:mod:`repro.obs.attrib`) and point-in-time telemetry gauges
(:mod:`repro.obs.telemetry`) cannot see that — this module partitions a
run into ``N`` windows along the byte-time axis and computes, per
window:

* **allocation and death activity** — objects/bytes born in the window,
  objects/bytes dying in it, and the derived per-KB rates;
* **live heap at the window boundary** — live bytes/objects at the
  window's end position, an order-independent reconstruction of the
  gauge ``timeline`` samples during a replay;
* **occupancy byte-time** — the integral of ``size`` over each object's
  overlap with the window, the fragmentation-frontier denominator the
  ROADMAP's relocation study needs;
* **padding fragmentation** — the power-of-two bucket padding (the BSD
  profile of :mod:`repro.obs.attrib`) of objects born in the window;
* **lifetime quantiles of deaths** — p50/p90/p99 of the lifetimes of
  objects dying in the window, read from a log2-bucketed histogram
  (exact ranks over bucket upper bounds: deterministic, mergeable, O(1)
  memory per window — the order-*dependent* P² estimator cannot shard);
* **per-site short-lived fractions** — objects, short-lived objects, and
  predictor verdicts per call chain, keyed by the *birth* window (the
  predictor acts at allocation time), which is what
  :mod:`repro.obs.drift` scores for temporal drift.

Two window axes are supported.  ``bytes`` divides the byte-time clock
``[0, end_time]`` into N equal spans.  ``events`` gives every window the
same number of *allocation events*: object ids are dense in allocation
order, so the i-th boundary is the birth byte-time of object
``i * total_objects // N`` — recovered in one extra streaming prepass —
and the fold then runs on byte-time positions exactly like the ``bytes``
axis.  Either way the per-object window keys are functions of the
object's intrinsic ``(obj_id, birth, death)`` record alone, so
:class:`WindowFold` obeys the :class:`~repro.runtime.shard.folds.
LifetimeFold` contract (order-independent ``add_object``, commutative
``merge``) and runs byte-identically materialized, streamed, and sharded
through :func:`~repro.runtime.shard.engine.fold_object_lifetimes`.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.alloc.bsd import bucket_for
from repro.core.predictor import DEFAULT_THRESHOLD, LifetimePredictor
from repro.core.sites import CallChain, ChainTable
from repro.runtime.shard.folds import LifetimeFold
from repro.runtime.stream.protocol import EV_ALLOC, EventSource

__all__ = [
    "WINDOW_AXES",
    "WINDOWS_SCHEMA_VERSION",
    "DEFAULT_WINDOWS",
    "SiteWindow",
    "WindowSpec",
    "WindowFold",
    "WindowProfile",
    "window_spec_for",
    "window_profile",
    "render_windows",
    "write_windows_json",
    "write_windows_csv",
    "export_windows",
]

#: The supported window axes.
WINDOW_AXES = ("bytes", "events")

#: Version stamp of the exported windows document.
WINDOWS_SCHEMA_VERSION = 1

#: Default number of windows a run is partitioned into.
DEFAULT_WINDOWS = 16

#: Per-window metric columns in export order (also the CSV column set).
_ROW_FIELDS = (
    "index",
    "start",
    "end",
    "allocs",
    "alloc_bytes",
    "frees",
    "free_bytes",
    "alloc_rate",
    "free_rate",
    "live_bytes_end",
    "live_objects_end",
    "occupancy_byte_time",
    "frag_bytes",
    "short_allocs",
    "short_alloc_bytes",
    "predicted_allocs",
    "late_free",
    "missed_short",
    "short_fraction",
    "lifetime_p50",
    "lifetime_p90",
    "lifetime_p99",
)

#: Ranks reported from the per-window death-lifetime histogram.
_QUANTILES = (("lifetime_p50", 0.50), ("lifetime_p90", 0.90),
              ("lifetime_p99", 0.99))


@dataclass(frozen=True)
class WindowSpec:
    """The window partition: axis, count, and byte-time start positions.

    ``starts`` has one entry per window (``starts[0] == 0``), sorted
    non-decreasing; window ``w`` spans ``[starts[w], starts[w+1])`` in
    byte-time, the last window closing at ``end_time`` inclusive.  The
    spec is a frozen value object — it travels to shard workers inside
    the fold by pickling, and two folds built from the same spec key
    every object identically regardless of event order.
    """

    axis: str
    count: int
    end_time: int
    starts: Tuple[int, ...]

    def index(self, position: int) -> int:
        """The window containing byte-time ``position`` (clamped)."""
        return max(0, bisect_right(self.starts, position) - 1)

    def span(self, window: int) -> Tuple[int, int]:
        """``(start, end)`` byte-times of one window."""
        start = self.starts[window]
        end = (
            self.starts[window + 1]
            if window + 1 < self.count else self.end_time
        )
        return start, end


def window_spec_for(
    source: EventSource,
    windows: int = DEFAULT_WINDOWS,
    by: str = "bytes",
) -> WindowSpec:
    """Build the window partition for one event source.

    ``by="bytes"`` needs only the summary (equal byte-time spans).
    ``by="events"`` makes one streaming prepass to recover the birth
    byte-times at the N-quantile allocation indices — object ids are
    dense in allocation order, so window ``i`` then holds allocation
    events ``[i*M//N, (i+1)*M//N)`` exactly, expressed as a byte-time
    interval the fold can key on without ever seeing event order.
    """
    if by not in WINDOW_AXES:
        raise ValueError(
            f"unknown window axis {by!r} (have {', '.join(WINDOW_AXES)})"
        )
    if windows < 1:
        raise ValueError(f"window count must be >= 1, got {windows}")
    end_time = source.summary.end_time
    if by == "bytes":
        starts = tuple(
            (i * end_time) // windows for i in range(windows)
        )
        return WindowSpec("bytes", windows, end_time, starts)
    total = source.summary.total_objects
    # Which allocation index opens each window; index 0 always opens
    # window 0 at byte-time 0, so only the later boundaries need births.
    opens_at: Dict[int, List[int]] = {}
    for i in range(1, windows):
        boundary = (i * total) // windows
        if boundary > 0:
            opens_at.setdefault(boundary, []).append(i)
    starts = [0] * windows
    if opens_at:
        pending = len(opens_at)
        for ev in source.events():
            if ev[0] != EV_ALLOC:
                continue
            hits = opens_at.get(ev[1])
            if hits is None:
                continue
            for window in hits:
                starts[window] = ev[4]
            pending -= 1
            if pending == 0:
                break
    return WindowSpec("events", windows, end_time, tuple(starts))


@dataclass
class SiteWindow:
    """One call chain's tallies inside one window (birth-keyed)."""

    objects: int = 0
    bytes: int = 0
    short_objects: int = 0
    predicted_objects: int = 0

    def merge(self, other: "SiteWindow") -> None:
        self.objects += other.objects
        self.bytes += other.bytes
        self.short_objects += other.short_objects
        self.predicted_objects += other.predicted_objects

    def to_dict(self) -> Dict[str, int]:
        return {
            "objects": self.objects,
            "bytes": self.bytes,
            "short_objects": self.short_objects,
            "predicted_objects": self.predicted_objects,
        }


class WindowFold(LifetimeFold):
    """The per-window accumulators as a shardable fold.

    ``add_object`` keys every tally on the object's intrinsic positions
    (birth window for allocation-side metrics and site scoring, death
    window for death-side metrics, the overlapped range for occupancy
    and boundary liveness), so it is order-independent; ``merge`` sums
    per-window arrays and per-site records, which is commutative and
    associative.  The fold carries the window spec, the chain table, and
    the predictor — all picklable, so instances cross the process-pool
    boundary exactly like the training folds do.
    """

    def __init__(
        self,
        spec: WindowSpec,
        chains: ChainTable,
        predictor: Optional[LifetimePredictor] = None,
        threshold: Optional[int] = None,
    ):
        self.spec = spec
        self.chains = chains
        self.predictor = predictor
        if threshold is None:
            threshold = getattr(predictor, "threshold", DEFAULT_THRESHOLD)
        self.threshold = threshold
        count = spec.count
        self.allocs = [0] * count
        self.alloc_bytes = [0] * count
        self.frees = [0] * count
        self.free_bytes = [0] * count
        self.frag_bytes = [0] * count
        self.short_allocs = [0] * count
        self.short_alloc_bytes = [0] * count
        self.predicted_allocs = [0] * count
        self.late_free = [0] * count
        self.missed_short = [0] * count
        self.live_bytes_end = [0] * count
        self.live_objects_end = [0] * count
        self.occupancy = [0] * count
        self.death_hist: List[Dict[int, int]] = [{} for _ in range(count)]
        self.sites: Dict[int, Dict[int, SiteWindow]] = {}

    def add_object(
        self,
        obj_id: int,
        chain_id: int,
        size: int,
        birth: int,
        death: int,
        touches: int,
    ) -> None:
        spec = self.spec
        birth_w = spec.index(birth)
        death_w = spec.index(death)
        lifetime = death - birth
        short = lifetime < self.threshold
        predicted = self.predictor is not None and (
            self.predictor.predicts_short_lived(
                self.chains.chain(chain_id), size
            )
        )
        self.allocs[birth_w] += 1
        self.alloc_bytes[birth_w] += size
        self.frag_bytes[birth_w] += (1 << bucket_for(size)) - size
        if short:
            self.short_allocs[birth_w] += 1
            self.short_alloc_bytes[birth_w] += size
        if predicted:
            self.predicted_allocs[birth_w] += 1
            if not short:
                self.late_free[birth_w] += 1
        elif short and self.predictor is not None:
            self.missed_short[birth_w] += 1
        self.frees[death_w] += 1
        self.free_bytes[death_w] += size
        hist = self.death_hist[death_w]
        bucket = lifetime.bit_length()
        hist[bucket] = hist.get(bucket, 0) + 1
        for window in range(birth_w, death_w + 1):
            start, end = spec.span(window)
            overlap = min(death, end) - max(birth, start)
            if overlap > 0:
                self.occupancy[window] += size * overlap
            # Live at the window's end boundary: born at or before it,
            # dead strictly after.  The last boundary is end_time, where
            # every object has died by the trace convention.
            if window < death_w and end < death:
                self.live_bytes_end[window] += size
                self.live_objects_end[window] += 1
        per_site = self.sites.get(chain_id)
        if per_site is None:
            per_site = self.sites[chain_id] = {}
        record = per_site.get(birth_w)
        if record is None:
            record = per_site[birth_w] = SiteWindow()
        record.objects += 1
        record.bytes += size
        if short:
            record.short_objects += 1
        if predicted:
            record.predicted_objects += 1

    def merge(self, other: "WindowFold") -> None:
        for name in (
            "allocs", "alloc_bytes", "frees", "free_bytes", "frag_bytes",
            "short_allocs", "short_alloc_bytes", "predicted_allocs",
            "late_free", "missed_short",
            "live_bytes_end", "live_objects_end", "occupancy",
        ):
            mine = getattr(self, name)
            theirs = getattr(other, name)
            for window, value in enumerate(theirs):
                mine[window] += value
        for window, hist in enumerate(other.death_hist):
            mine_hist = self.death_hist[window]
            for bucket, count in hist.items():
                mine_hist[bucket] = mine_hist.get(bucket, 0) + count
        for chain_id, per_site in other.sites.items():
            mine_site = self.sites.get(chain_id)
            if mine_site is None:
                self.sites[chain_id] = per_site
                continue
            for window, record in per_site.items():
                current = mine_site.get(window)
                if current is None:
                    mine_site[window] = record
                else:
                    current.merge(record)


def _hist_quantile(hist: Dict[int, int], total: int, q: float) -> int:
    """The q-quantile's bucket upper bound (0 when nothing died).

    Rank ``ceil(q * total)`` over the sorted buckets; bucket ``k`` holds
    lifetimes in ``[2^(k-1), 2^k)`` (bucket 0 holds exactly 0), so the
    reported value is the inclusive upper bound ``2^k - 1`` — an exact,
    deterministic rank over a lossy but mergeable binning.
    """
    if total == 0:
        return 0
    rank = max(1, -(-int(q * total * 1000000) // 1000000))
    seen = 0
    for bucket in sorted(hist):
        seen += hist[bucket]
        if seen >= rank:
            return (1 << bucket) - 1
    return (1 << max(hist)) - 1


def _rate(count: int, span: int) -> float:
    """Events per KB of byte-time, rounded for stable serialization."""
    if span == 0:
        return 0.0
    return round(1024.0 * count / span, 6)


@dataclass
class WindowProfile:
    """One execution's finished windowed time series."""

    program: str
    dataset: str
    spec: WindowSpec
    threshold: int
    predictor_sites: int
    fold: WindowFold = field(repr=False)

    @property
    def rows(self) -> List[Dict[str, Any]]:
        """The per-window rows, export order, derived columns included."""
        fold = self.fold
        spec = self.spec
        rows = []
        for window in range(spec.count):
            start, end = spec.span(window)
            span = end - start
            allocs = fold.allocs[window]
            frees = fold.frees[window]
            hist = fold.death_hist[window]
            row: Dict[str, Any] = {
                "index": window,
                "start": start,
                "end": end,
                "allocs": allocs,
                "alloc_bytes": fold.alloc_bytes[window],
                "frees": frees,
                "free_bytes": fold.free_bytes[window],
                "alloc_rate": _rate(allocs, span),
                "free_rate": _rate(frees, span),
                "live_bytes_end": fold.live_bytes_end[window],
                "live_objects_end": fold.live_objects_end[window],
                "occupancy_byte_time": fold.occupancy[window],
                "frag_bytes": fold.frag_bytes[window],
                "short_allocs": fold.short_allocs[window],
                "short_alloc_bytes": fold.short_alloc_bytes[window],
                "predicted_allocs": fold.predicted_allocs[window],
                "late_free": fold.late_free[window],
                "missed_short": fold.missed_short[window],
                "short_fraction": (
                    round(fold.short_allocs[window] / allocs, 6)
                    if allocs else 0.0
                ),
            }
            for name, q in _QUANTILES:
                row[name] = _hist_quantile(hist, frees, q)
            rows.append(row)
        return rows

    def site_windows(self) -> Dict[CallChain, Dict[int, SiteWindow]]:
        """Per-site per-window tallies with chains resolved."""
        chains = self.fold.chains
        return {
            chains.chain(chain_id): dict(per_site)
            for chain_id, per_site in self.fold.sites.items()
        }

    def totals(self) -> Dict[str, int]:
        """Whole-run sums of the summable per-window columns."""
        fold = self.fold
        return {
            "allocs": sum(fold.allocs),
            "alloc_bytes": sum(fold.alloc_bytes),
            "frees": sum(fold.frees),
            "free_bytes": sum(fold.free_bytes),
            "frag_bytes": sum(fold.frag_bytes),
            "short_allocs": sum(fold.short_allocs),
            "short_alloc_bytes": sum(fold.short_alloc_bytes),
            "predicted_allocs": sum(fold.predicted_allocs),
            "late_free": sum(fold.late_free),
            "missed_short": sum(fold.missed_short),
            "occupancy_byte_time": sum(fold.occupancy),
            "sites": len(fold.sites),
        }

    def to_dict(self) -> Dict[str, Any]:
        """The deterministic windows document (sites sorted by chain)."""
        site_block = []
        for chain, per_site in sorted(self.site_windows().items()):
            site_block.append({
                "chain": list(chain),
                "windows": [
                    {"index": window, **per_site[window].to_dict()}
                    for window in sorted(per_site)
                ],
            })
        return {
            "kind": "windows",
            "schema_version": WINDOWS_SCHEMA_VERSION,
            "program": self.program,
            "dataset": self.dataset,
            "axis": self.spec.axis,
            "windows": self.spec.count,
            "end_time": self.spec.end_time,
            "threshold": self.threshold,
            "predictor_sites": self.predictor_sites,
            "totals": self.totals(),
            "rows": self.rows,
            "sites": site_block,
        }


def window_profile(
    trace,
    windows: int = DEFAULT_WINDOWS,
    by: str = "bytes",
    predictor: Optional[LifetimePredictor] = None,
    threshold: Optional[int] = None,
) -> WindowProfile:
    """Compute one execution's windowed time series.

    ``trace`` is anything :func:`~repro.runtime.stream.protocol.
    as_event_source` accepts.  The fold dispatches through
    :func:`~repro.runtime.shard.engine.fold_object_lifetimes`, which
    shards over the chunk index when the source advertises
    ``shard_jobs > 1`` — so materialized, streamed, and ``--jobs N``
    inputs produce the same profile field for field.
    """
    # Lazy imports mirror repro.obs.attrib: the shard engine imports
    # repro.obs.spans, so a top-level import would tie initialization
    # orders together.
    from repro.obs.spans import TRACER
    from repro.runtime.shard.engine import fold_object_lifetimes
    from repro.runtime.stream.protocol import as_event_source

    source = as_event_source(trace)
    header = source.header
    spec = window_spec_for(source, windows=windows, by=by)
    with TRACER.span("windows.fold", cat="obs", program=header.program,
                     dataset=header.dataset, windows=windows, axis=by):
        fold = fold_object_lifetimes(
            source,
            lambda: WindowFold(
                spec, header.chains,
                predictor=predictor, threshold=threshold,
            ),
        )
    return WindowProfile(
        program=header.program,
        dataset=header.dataset,
        spec=spec,
        threshold=fold.threshold,
        predictor_sites=getattr(predictor, "site_count", 0),
        fold=fold,
    )


# ----------------------------------------------------------------------
# Rendering and deterministic exports
# ----------------------------------------------------------------------


def render_windows(profile: WindowProfile) -> str:
    """The windowed series as a terminal table, one row per window."""
    totals = profile.totals()
    lines = [
        f"windows: {profile.program}/{profile.dataset}"
        f" · {profile.spec.count} windows by {profile.spec.axis}"
        f" · threshold {profile.threshold} bytes",
        f"  {totals['allocs']:,} objects · {totals['alloc_bytes']:,} bytes"
        f" · {totals['sites']:,} sites"
        f" · short {totals['short_allocs']:,}"
        f" · predicted {totals['predicted_allocs']:,}",
        "    win      allocs       frees    live-bytes   short%"
        "   pred%    p50-life    p90-life",
    ]
    for row in profile.rows:
        allocs = row["allocs"]
        short_pct = 100.0 * row["short_allocs"] / allocs if allocs else 0.0
        pred_pct = (
            100.0 * row["predicted_allocs"] / allocs if allocs else 0.0
        )
        lines.append(
            f"    {row['index']:>3}  {allocs:>10,}  {row['frees']:>10,}"
            f"  {row['live_bytes_end']:>12,}  {short_pct:6.1f}%"
            f"  {pred_pct:5.1f}%  {row['lifetime_p50']:>10,}"
            f"  {row['lifetime_p90']:>10,}"
        )
    return "\n".join(lines)


def write_windows_json(
    profile: WindowProfile, path: Union[str, Path]
) -> Path:
    """Write the windows document as deterministic JSON."""
    path = Path(path)
    with open(path, "w", encoding="utf-8", newline="\n") as handle:
        json.dump(profile.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def write_windows_csv(
    profile: WindowProfile, path: Union[str, Path]
) -> Path:
    """Write one CSV row per window, fixed column order."""
    import csv

    path = Path(path)
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle, lineterminator="\n")
        writer.writerow(_ROW_FIELDS)
        for row in profile.rows:
            writer.writerow([
                repr(row[name]) if isinstance(row[name], float)
                else str(row[name])
                for name in _ROW_FIELDS
            ])
    return path


def export_windows(
    profile: WindowProfile,
    out_dir: Union[str, Path],
    basename: Optional[str] = None,
) -> Dict[str, Path]:
    """Write the JSON/CSV artifacts under ``out_dir``.

    Returns ``{"json": ..., "csv": ...}`` paths; the basename defaults to
    ``<program>-<dataset>-w<count><axis[0]>`` flattened the same way the
    telemetry exporter flattens its artifact names.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    if basename is None:
        raw = (
            f"{profile.program}-{profile.dataset}"
            f"-w{profile.spec.count}{profile.spec.axis[0]}"
        )
        basename = "".join(
            ch if ch.isalnum() or ch in "-._" else "_" for ch in raw
        )
    return {
        "json": write_windows_json(
            profile, out_dir / f"{basename}.windows.json"
        ),
        "csv": write_windows_csv(
            profile, out_dir / f"{basename}.windows.csv"
        ),
    }
