"""Pipeline span tracing: nested wall-time spans and a Chrome exporter.

Where :mod:`repro.obs.metrics` answers "how much time did stage X take in
total", a span trace answers "what did *this* run actually do, in what
order, nested how" — one :class:`Span` per instrumented region, with its
start offset, duration, and ancestry.  The whole experiment pipeline is
instrumented: workload execution and trace-cache resolution
(:mod:`repro.analysis.trace_cache`, :mod:`repro.analysis.experiments`),
predictor training and evaluation (:mod:`repro.core.predictor`),
per-allocator replay (:mod:`repro.analysis.simulate`), table computation
(:mod:`repro.analysis.tables`), and every CLI subcommand (a root span).

Like the PR 2 telemetry probe, the tracer is free when off: the
process-wide :data:`TRACER` starts disabled, and a disabled
:meth:`SpanTracer.span` returns one shared no-op context manager — a
single attribute check per instrumented region, no allocation, no clock
read.  Enable it with the CLI's ``--spans-out`` flag (or
``REPRO_SPANS_OUT`` for benchmark sessions) and the finished spans export
two ways:

* :func:`chrome_trace` / :func:`write_chrome_trace` — Chrome trace-event
  JSON (``ph: "X"`` complete events), loadable in Perfetto or
  ``chrome://tracing``;
* :func:`~repro.obs.report.render_folded` — a folded-stack text view
  (``parent;child <self-microseconds>``), flamegraph-ready.

The exporters are deterministic: given the same recorded spans they emit
byte-identical output (sorted keys, stable event order) — the tests drive
a tracer with a fake clock and assert exactly that.
"""

from __future__ import annotations

import functools
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

__all__ = [
    "Span",
    "SpanTracer",
    "TRACER",
    "chrome_trace",
    "write_chrome_trace",
    "traced",
]


@dataclass(frozen=True)
class Span:
    """One finished instrumented region.

    ``ts_us``/``dur_us`` are integer microseconds relative to the
    tracer's first span; ``path`` is the chain of enclosing span names
    ending in this span's own, and ``seq`` is the enter order (the stable
    sort key for export — children enter after their parents).
    """

    name: str
    cat: str
    ts_us: int
    dur_us: int
    depth: int
    seq: int
    path: Tuple[str, ...]
    args: Dict[str, Any] = field(default_factory=dict)
    #: Logical thread lane for export.  Spans recorded in this process
    #: are lane 1; spans absorbed from pool workers keep their worker's
    #: lane so Perfetto shows parallel chunk decodes side by side.
    tid: int = 1

    @property
    def end_us(self) -> int:
        """The span's end offset in microseconds."""
        return self.ts_us + self.dur_us


class _NullSpan:
    """The shared no-op context manager a disabled tracer hands out."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """An open span; records itself into the tracer on exit."""

    __slots__ = ("_tracer", "name", "cat", "args", "_start_us", "_seq",
                 "_depth", "_path")

    def __init__(self, tracer: "SpanTracer", name: str, cat: str,
                 args: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args

    def __enter__(self) -> "_LiveSpan":
        self._tracer._enter(self)
        return self

    def __exit__(self, *exc) -> bool:
        self._tracer._exit(self)
        return False


class SpanTracer:
    """Recorder of nested pipeline spans for one process.

    ``clock`` is injectable (seconds, monotonic) so tests can drive the
    tracer deterministically; timestamps are stored as microsecond
    offsets from the first span ever entered, which keeps the export free
    of wall-clock epochs.
    """

    def __init__(self, enabled: bool = False,
                 clock: Callable[[], float] = time.perf_counter):
        self._enabled = enabled
        self._clock = clock
        self._origin: Optional[float] = None
        self._stack: List[str] = []
        self._open_depth = 0
        self._seq = 0
        self.spans: List[Span] = []

    @property
    def enabled(self) -> bool:
        """Whether :meth:`span` records anything right now."""
        return self._enabled

    def enable(self) -> None:
        """Start recording spans."""
        self._enabled = True

    def disable(self) -> None:
        """Stop recording; already-recorded spans are kept."""
        self._enabled = False

    def reset(self) -> None:
        """Drop every recorded span and restart the clock origin."""
        self._origin = None
        self._stack.clear()
        self._open_depth = 0
        self._seq = 0
        self.spans.clear()

    def span(self, name: str, cat: str = "pipeline", **args):
        """A context manager timing the enclosed block as one span.

        When the tracer is disabled this returns a shared no-op object —
        the only cost of leaving instrumentation in a hot path.
        """
        if not self._enabled:
            return _NULL_SPAN
        return _LiveSpan(self, name, cat, args)

    # ------------------------------------------------------------------
    # Internal: called by _LiveSpan
    # ------------------------------------------------------------------

    def _now_us(self) -> int:
        now = self._clock()
        if self._origin is None:
            self._origin = now
        return round((now - self._origin) * 1_000_000)

    def _enter(self, live: _LiveSpan) -> None:
        live._start_us = self._now_us()
        live._seq = self._seq
        self._seq += 1
        live._depth = len(self._stack)
        self._stack.append(live.name)
        live._path = tuple(self._stack)

    def _exit(self, live: _LiveSpan) -> None:
        end_us = self._now_us()
        if self._stack and self._stack[-1] == live.name:
            self._stack.pop()
        self.spans.append(
            Span(
                name=live.name,
                cat=live.cat,
                ts_us=live._start_us,
                dur_us=max(0, end_us - live._start_us),
                depth=live._depth,
                seq=live._seq,
                path=live._path,
                args=dict(live.args),
            )
        )

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def sorted_spans(self) -> List[Span]:
        """All finished spans in enter order (parents before children)."""
        return sorted(self.spans, key=lambda s: s.seq)

    def find(self, name: str) -> List[Span]:
        """Every finished span with ``name``, in enter order."""
        return [s for s in self.sorted_spans() if s.name == name]

    # ------------------------------------------------------------------
    # Cross-process merging (mirrors Metrics.merge for pool workers)
    # ------------------------------------------------------------------

    def state(self, start: int = 0) -> List[Dict[str, Any]]:
        """The spans recorded since index ``start`` as a picklable snapshot.

        A pool worker tracing its own work calls this on exit and returns
        the snapshot with its result; the parent folds it back in with
        :meth:`absorb`.  ``start`` lets a reused pool process snapshot
        only the spans of the current task.
        """
        spans = sorted(self.spans[start:], key=lambda s: s.seq)
        return [
            {
                "name": s.name,
                "cat": s.cat,
                "ts_us": s.ts_us,
                "dur_us": s.dur_us,
                "depth": s.depth,
                "path": list(s.path),
                "args": dict(s.args),
            }
            for s in spans
        ]

    def absorb(self, state: List[Dict[str, Any]], tid: int = 1) -> None:
        """Fold a worker's :meth:`state` snapshot into this tracer.

        Worker timestamps are offsets from the *worker's* clock origin,
        so they are shifted onto this tracer's timeline by anchoring the
        snapshot's latest end at the parent's current time (the moment
        the result crossed the pool boundary) and clamping at zero.
        Paths gain the parent's currently-open stack as a prefix, depths
        shift to match, sequence numbers are reassigned from the parent
        counter, and every absorbed span lands on lane ``tid`` so
        exports show worker activity beside the parent's.
        """
        if not self._enabled or not state:
            return
        now = self._now_us()
        offset = now - max(s["ts_us"] + s["dur_us"] for s in state)
        prefix = tuple(self._stack)
        for item in sorted(state, key=lambda s: (s["ts_us"], s["depth"])):
            self.spans.append(
                Span(
                    name=item["name"],
                    cat=item["cat"],
                    ts_us=max(0, item["ts_us"] + offset),
                    dur_us=item["dur_us"],
                    depth=item["depth"] + len(prefix),
                    seq=self._seq,
                    path=prefix + tuple(item["path"]),
                    args=dict(item["args"]),
                    tid=tid,
                )
            )
            self._seq += 1


#: Process-wide tracer, disabled by default.  The CLI's ``--spans-out``
#: flag and the benchmark conftest's ``REPRO_SPANS_OUT`` hook enable it.
TRACER = SpanTracer()


def traced(name: Optional[str] = None, cat: str = "pipeline"):
    """Decorator: run the function under a span on the global tracer.

    Costs one ``enabled`` check per call while tracing is off, so it is
    safe on functions called from benchmarks.
    """

    def decorate(fn):
        span_name = name if name is not None else fn.__name__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not TRACER.enabled:
                return fn(*args, **kwargs)
            with TRACER.span(span_name, cat=cat):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


def chrome_trace(tracer: SpanTracer,
                 process_name: str = "repro-alloc") -> Dict[str, Any]:
    """The tracer's spans as a Chrome trace-event document.

    One ``ph: "X"`` (complete) event per span; spans recorded in this
    process land on tid 1 and spans absorbed from pool workers keep
    their worker lane.  Nesting within a lane is carried by timestamp
    containment, which holds by construction because a child span starts
    after and ends before its parent.  Perfetto and ``chrome://tracing``
    both load the result.
    """
    events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": 1,
            "tid": 1,
            "args": {"name": process_name},
        }
    ]
    for span in tracer.sorted_spans():
        event: Dict[str, Any] = {
            "ph": "X",
            "name": span.name,
            "cat": span.cat,
            "ts": span.ts_us,
            "dur": span.dur_us,
            "pid": 1,
            "tid": span.tid,
        }
        if span.args:
            event["args"] = {
                key: span.args[key] for key in sorted(span.args)
            }
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: SpanTracer, path: Union[str, Path],
                       process_name: str = "repro-alloc") -> Path:
    """Write :func:`chrome_trace` as deterministic JSON and return the path."""
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    document = chrome_trace(tracer, process_name=process_name)
    with open(path, "w", encoding="utf-8", newline="\n") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path
