"""Time-series heap telemetry and per-site misprediction accounting.

A :class:`Telemetry` recorder rides along one trace replay.  It attaches
to the allocator through the probe interface on
:class:`~repro.alloc.base.Allocator` (``attach_probe``), receives one
``on_alloc``/``on_free`` callback per heap event, and produces:

* **time-series samples** — every ``interval`` allocation events (plus a
  final sample at the end of the replay) it snapshots the allocator's
  gauges via ``telemetry_snapshot()``: heap break, live bytes, external
  and internal fragmentation, free-list length, arena occupancy — plus
  derived series of its own (byte-time clock, windowed mean first-fit
  search depth, arena capture rate so far, cumulative mispredictions);
* **per-site misprediction counters** — keyed by the allocation
  :class:`~repro.core.sites.CallChain`, three failure modes:

  ``late_free``
      an object *predicted short-lived* (placed in an arena, or an arena
      overflow) that was freed only after the lifetime threshold — the
      arena-polluting misprediction of §5.2;
  ``overflow``
      a predicted-short-lived request that fell through to the general
      heap because every arena was occupied or the object was too large
      (footnote 1 of the paper);
  ``missed_short``
      an object the predictor sent to the general heap that actually died
      under the threshold — capture the predictor left on the table.

The recorder is passive: it never changes placement, sizes, or operation
counts, so a replay with telemetry attached produces byte-identical
simulation results (tests assert this).  When no recorder is attached the
allocators pay a single ``is None`` check per operation and ``replay()``
is unchanged — the hot path stays hot.

Aggregate totals (samples taken, mispredictions by kind) are mirrored
into a :class:`~repro.obs.metrics.Metrics` registry (the process-wide
:data:`~repro.obs.metrics.METRICS` by default) so pipeline timings and
simulation telemetry read out of one report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.predictor import DEFAULT_THRESHOLD
from repro.core.sites import CallChain
from repro.obs.metrics import METRICS, Metrics, record_peak_rss

__all__ = [
    "DEFAULT_SAMPLE_INTERVAL",
    "MISPREDICTION_KINDS",
    "NullTelemetry",
    "SiteCounters",
    "Telemetry",
]

#: Default sampling period, in allocation events.
DEFAULT_SAMPLE_INTERVAL = 1024

#: The misprediction failure modes tracked per site.
MISPREDICTION_KINDS = ("late_free", "overflow", "missed_short")

#: Placements whose objects were predicted short-lived at birth.
_PREDICTED_SHORT = ("arena", "overflow")


@dataclass
class SiteCounters:
    """Per-site allocation and misprediction tallies."""

    allocs: int = 0
    bytes: int = 0
    arena_allocs: int = 0
    late_free: int = 0
    overflow: int = 0
    missed_short: int = 0

    @property
    def mispredictions(self) -> int:
        """All misprediction events charged to this site."""
        return self.late_free + self.overflow + self.missed_short


class NullTelemetry:
    """A no-op recorder: probe dispatch cost without any recording.

    Useful for benchmarking the probe interface itself; real runs either
    attach a :class:`Telemetry` or nothing at all.
    """

    def attach(self, allocator, program: str = "?", dataset: str = "?") -> None:
        allocator.attach_probe(self)
        self._allocator = allocator

    def on_alloc(self, addr: int, size: int,
                 chain: Optional[CallChain], placement: str) -> None:
        pass

    def on_free(self, addr: int) -> None:
        pass

    def finish(self) -> None:
        self._allocator.attach_probe(None)


class Telemetry:
    """Recorder of heap time-series samples and misprediction counters.

    One recorder serves one replay: :meth:`attach` it to the allocator
    (``replay()`` does this when given a ``telemetry`` argument), and read
    :attr:`samples`, :attr:`sites`, and :meth:`totals` afterwards.

    ``threshold`` is the short-lived cutoff in byte-time used to classify
    ``late_free`` / ``missed_short``; when omitted it is taken from the
    allocator's predictor at attach time (falling back to the paper's
    32 KB default).
    """

    def __init__(
        self,
        interval: int = DEFAULT_SAMPLE_INTERVAL,
        threshold: Optional[int] = None,
        metrics: Optional[Metrics] = None,
    ):
        if interval < 1:
            raise ValueError(f"sample interval must be >= 1, got {interval}")
        self.interval = interval
        self.threshold = threshold
        self.metrics = metrics if metrics is not None else METRICS
        self.program = "?"
        self.dataset = "?"
        self.allocator_name = "?"
        self.samples: List[Dict[str, Any]] = []
        self.sites: Dict[CallChain, SiteCounters] = {}
        self._allocator = None
        self._clock = 0  # byte-time: cumulative bytes requested
        self._allocs = 0
        self._frees = 0
        self._bytes_by_placement: Dict[str, int] = {}
        self._allocs_by_placement: Dict[str, int] = {}
        # addr -> (chain, placement, birth byte-time, size)
        self._live: Dict[int, Tuple[Optional[CallChain], str, int, int]] = {}
        self._last_scanned = 0
        self._last_allocs = 0
        self._sampled_at = -1

    # ------------------------------------------------------------------
    # Probe interface (called by the allocator)
    # ------------------------------------------------------------------

    def attach(self, allocator, program: str = "?", dataset: str = "?") -> None:
        """Start recording ``allocator``; called once, before the replay."""
        self._allocator = allocator
        self.allocator_name = allocator.name
        self.program = program
        self.dataset = dataset
        if self.threshold is None:
            predictor = getattr(allocator, "predictor", None)
            self.threshold = getattr(
                predictor, "threshold", DEFAULT_THRESHOLD
            ) if predictor is not None else DEFAULT_THRESHOLD
        allocator.attach_probe(self)

    def on_alloc(self, addr: int, size: int,
                 chain: Optional[CallChain], placement: str) -> None:
        """One object born at ``addr``; ``placement`` is where it went.

        ``placement`` is ``"arena"`` (predicted short, bump-allocated),
        ``"overflow"`` (predicted short, arenas full → general heap),
        ``"general"`` (predicted long-lived), or ``"unpredicted"`` (no
        predictor consulted — baseline allocators).
        """
        self._clock += size
        self._allocs += 1
        self._allocs_by_placement[placement] = (
            self._allocs_by_placement.get(placement, 0) + 1
        )
        self._bytes_by_placement[placement] = (
            self._bytes_by_placement.get(placement, 0) + size
        )
        self._live[addr] = (chain, placement, self._clock, size)
        if chain is not None:
            site = self.sites.get(chain)
            if site is None:
                site = self.sites[chain] = SiteCounters()
            site.allocs += 1
            site.bytes += size
            if placement == "arena":
                site.arena_allocs += 1
            elif placement == "overflow":
                site.overflow += 1
        if self._allocs % self.interval == 0:
            self._sample()

    def on_free(self, addr: int) -> None:
        """The object at ``addr`` died; classify its prediction outcome."""
        record = self._live.pop(addr, None)
        if record is None:  # born before the recorder attached
            return
        chain, placement, birth, _size = record
        self._frees += 1
        if chain is None:
            return
        lifetime = self._clock - birth
        if placement in _PREDICTED_SHORT:
            if lifetime >= self.threshold:
                self.sites[chain].late_free += 1
        elif placement == "general":
            if lifetime < self.threshold:
                self.sites[chain].missed_short += 1

    def finish(self) -> None:
        """Detach and emit the final sample (so no replay samples zero)."""
        if self._allocs > 0 and self._allocs != self._sampled_at:
            self._sample()
        totals = self.totals()
        self.metrics.incr("telemetry.samples", len(self.samples))
        for kind in MISPREDICTION_KINDS:
            self.metrics.incr(f"telemetry.mispredict.{kind}", totals[kind])
        record_peak_rss(self.metrics)
        if self._allocator is not None:
            self._allocator.attach_probe(None)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def _sample(self) -> None:
        ops = self._allocator.ops
        allocs_delta = self._allocs - self._last_allocs
        scanned = self._total_blocks_scanned()
        scanned_delta = scanned - self._last_scanned
        totals = self.totals()
        row: Dict[str, Any] = {
            "event": self._allocs,
            "byte_time": self._clock,
            "live_objects": self._allocs - self._frees,
            "capture_rate": _frac(ops.arena_allocs, ops.allocs),
            "search_depth": _frac(scanned_delta, allocs_delta, pct=False),
            "mispredictions": sum(
                totals[kind] for kind in MISPREDICTION_KINDS
            ),
        }
        row.update(self._allocator.telemetry_snapshot())
        self.samples.append(row)
        self._last_scanned = scanned
        self._last_allocs = self._allocs
        self._sampled_at = self._allocs

    def _total_blocks_scanned(self) -> int:
        """First-fit free-list blocks examined, including a general heap's."""
        total = self._allocator.ops.blocks_scanned
        general = getattr(self._allocator, "general", None)
        if general is not None:
            total += general.ops.blocks_scanned
        return total

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------

    def totals(self) -> Dict[str, int]:
        """Aggregate event and misprediction counts for the whole replay."""
        totals = {
            "allocs": self._allocs,
            "frees": self._frees,
            "bytes": self._clock,
            "sites": len(self.sites),
        }
        for kind in MISPREDICTION_KINDS:
            totals[kind] = sum(getattr(s, kind) for s in self.sites.values())
        for placement in ("arena", "overflow", "general", "unpredicted"):
            totals[f"{placement}_allocs"] = self._allocs_by_placement.get(
                placement, 0
            )
            totals[f"{placement}_bytes"] = self._bytes_by_placement.get(
                placement, 0
            )
        return totals

    def top_sites(self, top: int = 10) -> List[Tuple[CallChain, SiteCounters]]:
        """The ``top`` sites by misprediction count (ties: more allocs,
        then chain order, so the ranking is deterministic)."""
        ranked = [
            (chain, site)
            for chain, site in self.sites.items()
            if site.mispredictions > 0
        ]
        ranked.sort(key=lambda cs: (-cs[1].mispredictions, -cs[1].allocs, cs[0]))
        return ranked[:top]

    def series(self, key: str) -> List[Any]:
        """One column of the sample table (missing values become 0)."""
        return [row.get(key, 0) for row in self.samples]


def _frac(numerator: int, denominator: int, pct: bool = False) -> float:
    if denominator == 0:
        return 0.0
    value = numerator / denominator
    return round(100.0 * value if pct else value, 6)
