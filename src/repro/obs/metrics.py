"""Shared timing and counter registry for pipeline and simulation.

Every expensive stage of the experiment pipeline (workload execution,
trace-cache loads and stores, table computation) records its wall time and
event counts here, and the simulation telemetry layer
(:mod:`repro.obs.telemetry`) records its sample and misprediction totals
into the same registry — one report covers the whole system.  The CLI's
``warm -v`` prints the report, and the benchmarks import :data:`METRICS`
to surface cache behaviour across sessions.

The design is deliberately tiny: a :class:`Metrics` object holds named
stage timings (call count + total seconds) and named counters.  A single
process-wide instance, :data:`METRICS`, is the default sink; components
accept a ``metrics`` argument so tests can isolate their measurements.

Because worker processes get their own registry, :meth:`Metrics.merge`
folds a worker's :meth:`Metrics.to_dict` snapshot back into the parent —
this is how ``TraceStore.warm(jobs=N)`` keeps child-process timings in
the session report.
"""

from __future__ import annotations

import json
import sys
from contextlib import contextmanager
import time
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Set, Union

__all__ = [
    "Metrics",
    "StageTiming",
    "METRICS",
    "peak_rss_kb",
    "record_peak_rss",
]


@dataclass
class StageTiming:
    """Aggregate wall time of one named pipeline stage."""

    calls: int = 0
    seconds: float = 0.0

    @property
    def mean(self) -> float:
        """Mean seconds per call (0.0 before the first call)."""
        return self.seconds / self.calls if self.calls else 0.0


class Metrics:
    """Named wall-time accumulators and event counters."""

    def __init__(self) -> None:
        self._timings: Dict[str, StageTiming] = {}
        self._counters: Dict[str, int] = {}
        self._gauges: Set[str] = set()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time the enclosed block under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - start)

    def add_time(self, name: str, seconds: float) -> None:
        """Add one timed call of ``seconds`` to stage ``name``."""
        timing = self._timings.setdefault(name, StageTiming())
        timing.calls += 1
        timing.seconds += seconds

    def incr(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def set_max(self, name: str, value: int) -> None:
        """Raise counter ``name`` to ``value`` if it is below it.

        Marks ``name`` as a high-water-mark gauge (e.g. peak RSS):
        :meth:`merge` takes the *max* of gauges rather than adding them —
        worker peaks are concurrent highs of separate address spaces, and
        summing them would report memory no process ever used.
        """
        self._gauges.add(name)
        if value > self._counters.get(name, 0):
            self._counters[name] = value

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def timing(self, name: str) -> StageTiming:
        """The timing for stage ``name`` (zeros if never recorded)."""
        return self._timings.get(name, StageTiming())

    def counter(self, name: str) -> int:
        """The value of counter ``name`` (0 if never incremented)."""
        return self._counters.get(name, 0)

    @property
    def timings(self) -> Dict[str, StageTiming]:
        """Snapshot of all stage timings."""
        return dict(self._timings)

    @property
    def counters(self) -> Dict[str, int]:
        """Snapshot of all counters."""
        return dict(self._counters)

    def gauge_values(self) -> Dict[str, int]:
        """Current value of every high-water-mark gauge, sorted by name.

        Gauges are the counters recorded via :meth:`set_max` (e.g.
        ``peak_rss_kb``); exporters ship them as their own section so
        diff tooling can treat them as informational rather than
        additive counters.
        """
        return {
            name: self._counters.get(name, 0)
            for name in sorted(self._gauges)
        }

    def reset(self) -> None:
        """Drop all recorded timings and counters."""
        self._timings.clear()
        self._counters.clear()
        self._gauges.clear()

    # ------------------------------------------------------------------
    # Aggregation and export
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, dict]:
        """A JSON-serializable snapshot of every timing and counter."""
        return {
            "timings": {
                name: {"calls": t.calls, "seconds": t.seconds}
                for name, t in sorted(self._timings.items())
            },
            "counters": dict(sorted(self._counters.items())),
            "gauges": sorted(self._gauges),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The :meth:`to_dict` snapshot as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def merge(self, other: Union["Metrics", Dict[str, dict]]) -> None:
        """Fold another registry (or its :meth:`to_dict` form) into this one.

        Timings add call counts and seconds; counters add values — except
        gauges (anything either side recorded via :meth:`set_max`), which
        merge by maximum: a worker's peak RSS is a concurrent high, not a
        disjoint contribution.  This is how per-worker measurements from a
        process pool reach the parent's report instead of dying with the
        child.  Snapshots from before gauges were tracked simply have no
        ``"gauges"`` list and merge as pure counters.
        """
        if isinstance(other, Metrics):
            other = other.to_dict()
        for name, entry in other.get("timings", {}).items():
            timing = self._timings.setdefault(name, StageTiming())
            timing.calls += int(entry["calls"])
            timing.seconds += float(entry["seconds"])
        gauges = set(other.get("gauges", ()))
        for name, value in other.get("counters", {}).items():
            if name in gauges or name in self._gauges:
                self.set_max(name, int(value))
            else:
                self.incr(name, int(value))

    def report(self, title: Optional[str] = None) -> str:
        """A human-readable summary of every timing and counter."""
        lines = []
        if title:
            lines.append(title)
        if self._timings:
            width = max(len(name) for name in self._timings)
            for name in sorted(self._timings):
                timing = self._timings[name]
                lines.append(
                    f"  {name:<{width}}  {timing.seconds:8.3f}s"
                    f"  ({timing.calls} calls, {timing.mean:.3f}s/call)"
                )
        if self._counters:
            width = max(len(name) for name in self._counters)
            for name in sorted(self._counters):
                lines.append(f"  {name:<{width}}  {self._counters[name]}")
        if len(lines) == (1 if title else 0):
            lines.append("  (no measurements recorded)")
        return "\n".join(lines)


def peak_rss_kb() -> int:
    """This process's peak resident set size in kilobytes.

    Read from ``getrusage(RUSAGE_SELF).ru_maxrss`` (kilobytes on Linux,
    bytes on macOS — normalized here).  Returns 0 on platforms without
    the :mod:`resource` module, so callers never need a platform guard.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platform
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS units
        peak //= 1024
    return int(peak)


def record_peak_rss(metrics: Optional[Metrics] = None) -> int:
    """Record :func:`peak_rss_kb` under the ``peak_rss_kb`` gauge.

    Records into ``metrics`` (default: the process-wide :data:`METRICS`)
    via :meth:`Metrics.set_max` and returns the sampled value, so one
    call both updates the registry and feeds a report line.
    """
    peak = peak_rss_kb()
    (metrics if metrics is not None else METRICS).set_max(
        "peak_rss_kb", peak
    )
    return peak


#: Process-wide default sink shared by the CLI, TraceStore, telemetry,
#: and benchmarks.
METRICS = Metrics()
