"""Terminal rendering for telemetry and span-trace views.

Pure formatting: an ASCII/Unicode sparkline per gauge for ``timeline``, a
per-site misprediction table for ``stats`` (both over a finished
:class:`~repro.obs.telemetry.Telemetry`), and a folded-stack text view of
a :class:`~repro.obs.spans.SpanTracer` for flamegraph tooling.  No I/O
happens here, so the renderers are trivially testable and the CLI stays a
thin shell.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.obs.spans import SpanTracer
from repro.obs.telemetry import Telemetry

__all__ = ["sparkline", "render_stats", "render_timeline", "render_folded"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """A fixed-width sparkline; values are bucket-averaged down to width.

    A flat series renders at the lowest level so that changes, not
    absolute magnitudes, stand out.
    """
    if not values:
        return ""
    if len(values) > width:
        values = _bucket_means(values, width)
    lo = min(values)
    hi = max(values)
    span = hi - lo
    if span == 0:
        return _SPARK_LEVELS[0] * len(values)
    top = len(_SPARK_LEVELS) - 1
    return "".join(
        _SPARK_LEVELS[round((v - lo) / span * top)] for v in values
    )


def _bucket_means(values: Sequence[float], width: int) -> List[float]:
    out = []
    n = len(values)
    for i in range(width):
        start = i * n // width
        stop = max(start + 1, (i + 1) * n // width)
        chunk = values[start:stop]
        out.append(sum(chunk) / len(chunk))
    return out


def _fmt(value: float) -> str:
    if isinstance(value, float) and value != int(value):
        return f"{value:.4f}" if abs(value) < 10 else f"{value:,.1f}"
    return f"{int(value):,}"


def _chain_label(chain, depth: int = 4) -> str:
    tail = chain[-depth:]
    label = ">".join(tail)
    return ("…" + label) if len(chain) > depth else label


def render_timeline(telemetry: Telemetry, width: int = 60) -> str:
    """Sparkline view of the recorded gauges with min/max annotations."""
    header = (
        f"timeline: {telemetry.program}/{telemetry.dataset}"
        f" · {telemetry.allocator_name}"
        f" · {len(telemetry.samples)} samples"
        f" (every {telemetry.interval} allocs)"
    )
    lines = [header]
    gauges = [
        ("heap_size", "heap size (bytes)"),
        ("live_bytes", "live bytes"),
        ("free_blocks", "free-list length"),
        ("external_frag", "external frag"),
        ("internal_frag", "internal frag"),
        ("search_depth", "search depth"),
        ("capture_rate", "capture rate"),
        ("arena_occupancy", "arena occupancy"),
        ("mispredictions", "mispredictions"),
    ]
    label_width = max(len(label) for _, label in gauges)
    for key, label in gauges:
        series = telemetry.series(key)
        if not series or all(v == 0 for v in series):
            continue
        lines.append(
            f"  {label:<{label_width}} {sparkline(series, width)} "
            f"[{_fmt(min(series))} .. {_fmt(max(series))}]"
        )
    if len(lines) == 1:
        lines.append("  (no samples recorded)")
    return "\n".join(lines)


def render_stats(telemetry: Telemetry, top: int = 10) -> str:
    """Per-allocator totals and the top-K misprediction sites."""
    totals = telemetry.totals()
    lines = [
        f"stats: {telemetry.program}/{telemetry.dataset}"
        f" · {telemetry.allocator_name}"
        f" · threshold {telemetry.threshold} bytes",
        f"  allocs {totals['allocs']:,} · frees {totals['frees']:,}"
        f" · bytes {totals['bytes']:,} · sites {totals['sites']:,}"
        f" · samples {len(telemetry.samples)}",
    ]
    placements = [
        ("arena", "arena"),
        ("overflow", "overflow->general"),
        ("general", "predicted-long"),
        ("unpredicted", "unpredicted"),
    ]
    placed = [
        f"{label} {totals[f'{key}_allocs']:,}"
        f" ({_pct(totals[f'{key}_bytes'], totals['bytes'])} of bytes)"
        for key, label in placements
        if totals[f"{key}_allocs"]
    ]
    if placed:
        lines.append("  placement: " + " · ".join(placed))
    lines.append(
        "  mispredictions:"
        f" late-free {totals['late_free']:,}"
        f" · overflow {totals['overflow']:,}"
        f" · missed-short {totals['missed_short']:,}"
    )
    ranked = telemetry.top_sites(top)
    if ranked:
        lines.append(f"  top {len(ranked)} misprediction sites:")
        lines.append(
            "    late-free  overflow  missed-short  allocs  site"
        )
        for chain, site in ranked:
            lines.append(
                f"    {site.late_free:>9,}  {site.overflow:>8,}"
                f"  {site.missed_short:>12,}  {site.allocs:>6,}"
                f"  {_chain_label(chain)}"
            )
    else:
        lines.append("  no mispredictions recorded")
    return "\n".join(lines)


def _pct(numerator: int, denominator: int) -> str:
    if denominator == 0:
        return "0.0%"
    return f"{100.0 * numerator / denominator:.1f}%"


def render_folded(tracer: SpanTracer) -> str:
    """The tracer's spans as folded stacks: ``a;b;c <self-microseconds>``.

    One line per unique span path, semicolon-joined, with the path's
    *self* time (total duration minus the time spent in child spans) —
    the format ``flamegraph.pl`` and speedscope consume directly.  Lines
    are sorted by path so the output is deterministic.
    """
    total: Dict[Tuple[str, ...], int] = {}
    child_time: Dict[Tuple[str, ...], int] = {}
    for span in tracer.spans:
        total[span.path] = total.get(span.path, 0) + span.dur_us
        if len(span.path) > 1:
            parent = span.path[:-1]
            child_time[parent] = child_time.get(parent, 0) + span.dur_us
    lines = []
    for path in sorted(total):
        self_us = max(0, total[path] - child_time.get(path, 0))
        lines.append(f"{';'.join(path)} {self_us}")
    return "\n".join(lines)
