"""Telemetry artifact writers: JSONL samples, JSON summary, CSV.

Everything written here is deterministic: keys are sorted, floats are
rounded where they are produced (see :mod:`repro.obs.telemetry`), and no
wall-clock timestamps are embedded — the same trace replayed at the same
sample interval yields byte-identical files, which the test suite
asserts.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.obs.telemetry import MISPREDICTION_KINDS, Telemetry

__all__ = [
    "DEFAULT_TELEMETRY_DIR",
    "export_timeline",
    "telemetry_summary",
    "write_csv",
    "write_jsonl",
]

#: Where the CLI drops timeline artifacts unless told otherwise.
DEFAULT_TELEMETRY_DIR = Path("results") / "telemetry"


def write_jsonl(rows: Iterable[Dict[str, Any]],
                path: Union[str, Path]) -> Path:
    """Write one JSON object per line (sorted keys, '\\n' endings)."""
    path = Path(path)
    with open(path, "w", encoding="utf-8", newline="\n") as handle:
        for row in rows:
            handle.write(json.dumps(row, sort_keys=True))
            handle.write("\n")
    return path


def write_csv(rows: List[Dict[str, Any]], path: Union[str, Path]) -> Path:
    """Write samples as CSV over the union of keys (missing cells empty).

    Cells go through the :mod:`csv` module, so values containing the
    field separator, quotes, or newlines are quoted per RFC 4180 and
    round-trip through any conforming reader (``newline=""`` +
    ``lineterminator="\\n"`` keep the bytes platform-independent).
    """
    path = Path(path)
    columns: List[str] = []
    seen = set()
    for row in rows:
        for key in row:
            if key not in seen:
                seen.add(key)
                columns.append(key)
    columns.sort()
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle, lineterminator="\n")
        writer.writerow(columns)
        for row in rows:
            writer.writerow([_csv_cell(row.get(col)) for col in columns])
    return path


def _csv_cell(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return repr(value)
    return str(value)


def telemetry_summary(telemetry: Telemetry, top: int = 20) -> Dict[str, Any]:
    """A JSON-serializable summary of one recorded replay."""
    return {
        "program": telemetry.program,
        "dataset": telemetry.dataset,
        "allocator": telemetry.allocator_name,
        "interval": telemetry.interval,
        "threshold": telemetry.threshold,
        "sample_count": len(telemetry.samples),
        "totals": telemetry.totals(),
        # High-water-mark gauges (peak_rss_kb et al.) from the replay's
        # metrics registry.  Environment-dependent — diff tooling treats
        # them as informational, and the byte-identity tests strip them.
        "gauges": telemetry.metrics.gauge_values(),
        "top_misprediction_sites": [
            {
                "chain": list(chain),
                "allocs": site.allocs,
                "bytes": site.bytes,
                "arena_allocs": site.arena_allocs,
                **{kind: getattr(site, kind) for kind in MISPREDICTION_KINDS},
            }
            for chain, site in telemetry.top_sites(top)
        ],
        "final_sample": telemetry.samples[-1] if telemetry.samples else None,
    }


def export_timeline(
    telemetry: Telemetry,
    out_dir: Union[str, Path] = DEFAULT_TELEMETRY_DIR,
    basename: Optional[str] = None,
    top: int = 20,
) -> Dict[str, Path]:
    """Write the samples (JSONL + CSV) and summary (JSON) under ``out_dir``.

    Returns ``{"samples": ..., "csv": ..., "summary": ...}`` paths.  The
    basename defaults to ``<program>-<dataset>-<allocator>`` with spaces
    and slashes flattened.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    if basename is None:
        raw = f"{telemetry.program}-{telemetry.dataset}-{telemetry.allocator_name}"
        basename = "".join(
            ch if ch.isalnum() or ch in "-._" else "_" for ch in raw
        )
    paths = {
        "samples": write_jsonl(
            telemetry.samples, out_dir / f"{basename}.samples.jsonl"
        ),
        "csv": write_csv(telemetry.samples, out_dir / f"{basename}.csv"),
    }
    summary_path = out_dir / f"{basename}.summary.json"
    with open(summary_path, "w", encoding="utf-8", newline="\n") as handle:
        json.dump(telemetry_summary(telemetry, top=top), handle,
                  indent=2, sort_keys=True)
        handle.write("\n")
    paths["summary"] = summary_path
    return paths
