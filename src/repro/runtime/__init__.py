"""Traced allocation runtime — the reproduction's substitute for AE tracing.

Workload programs allocate through a :class:`~repro.runtime.heap.TracedHeap`,
which maintains the call chain, advances the byte-time clock, and records
every birth/death into a :class:`~repro.runtime.events.Trace`.  Traces are
serialized by :mod:`repro.runtime.tracefile`.
"""

from repro.runtime.events import LiveStats, ObjectView, Trace, TraceBuilder
from repro.runtime.heap import HeapError, HeapObject, TracedHeap, traced
from repro.runtime.stackcap import StackTracedHeap, capture_chain
from repro.runtime.tracefile import TraceFormatError, load_trace, save_trace

__all__ = [
    "LiveStats",
    "ObjectView",
    "Trace",
    "TraceBuilder",
    "HeapError",
    "HeapObject",
    "TracedHeap",
    "traced",
    "StackTracedHeap",
    "capture_chain",
    "TraceFormatError",
    "load_trace",
    "save_trace",
]
