"""Traced allocation runtime — the reproduction's substitute for AE tracing.

Workload programs allocate through a :class:`~repro.runtime.heap.TracedHeap`,
which maintains the call chain, advances the byte-time clock, and records
every birth/death into a :class:`~repro.runtime.events.Trace`.  Traces are
serialized by :mod:`repro.runtime.tracefile` and stream through the event
protocol of :mod:`repro.runtime.stream`.
"""

from repro.runtime.events import LiveStats, ObjectView, Trace, TraceBuilder
from repro.runtime.heap import HeapError, HeapObject, TracedHeap, traced
from repro.runtime.stackcap import StackTracedHeap, capture_chain
from repro.runtime.tracefile import (
    TraceFormatError,
    convert_trace,
    load_trace,
    open_trace_stream,
    save_trace,
)
from repro.runtime.stream import (
    EventSource,
    StreamHeader,
    StreamSummary,
    TraceEventSource,
    as_event_source,
    build_trace,
)

__all__ = [
    "LiveStats",
    "ObjectView",
    "Trace",
    "TraceBuilder",
    "HeapError",
    "HeapObject",
    "TracedHeap",
    "traced",
    "StackTracedHeap",
    "capture_chain",
    "TraceFormatError",
    "load_trace",
    "save_trace",
    "open_trace_stream",
    "convert_trace",
    "EventSource",
    "StreamHeader",
    "StreamSummary",
    "TraceEventSource",
    "as_event_source",
    "build_trace",
]
