"""The typed event protocol behind every trace consumer.

An event stream is::

    StreamHeader                     (prologue: identity + chain table)
    (tag, ...) event tuples          (program order)
    StreamSummary                    (epilogue: aggregate counters)

Events are plain tuples with an integer tag first, chosen for hot-path
speed — the replay loop dispatches on ``ev[0]`` without attribute lookups:

* ``(EV_ALLOC, obj_id, chain_id, size, birth)`` — an object birth.  The
  chain id indexes the header's chain table; carrying size and chain in
  the event is what lets consumers run without a materialized object
  table (and removes the per-event ``size_of``/``chain_of`` lookups the
  old replay loop did).
* ``(EV_FREE, obj_id, death, touches)`` — an explicit free at byte-time
  ``death``; ``touches`` is the object's lifetime reference count.
* ``(EV_TOUCH, obj_id, count)`` — ``count`` heap references to a live
  object (present only when the trace was recorded with touch events).

Object ids are dense in allocation order — the ``n``-th ``EV_ALLOC`` of a
stream carries ``obj_id == n`` — which is what lets
:func:`build_trace` rebuild the parallel-array :class:`Trace` with pure
appends.

An :class:`EventSource` bundles the header, the summary, and a
*re-iterable* event sequence: ``events()`` returns a fresh iterator on
every call, so one source can be replayed several times (Table 8 replays
the same trace against three allocators).  Consumers that accept "a
trace" take either a :class:`~repro.runtime.events.Trace` or an
:class:`EventSource` and normalize via :func:`as_event_source`; the
memory model is then the source's: O(1) extra for a wrapped in-memory
trace, O(live objects + one chunk) for a v3 file
(:class:`~repro.runtime.stream.v3.TraceFileSource`).

Objects never freed follow the trace convention — they die at program
exit (``summary.end_time``).  Their identity is implicit (everything
still in a consumer's live set when the stream ends); only their touch
counts need carrying, which ``summary.unfreed_touches`` does in
O(live-at-exit) space.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Iterator, Tuple, Union

from repro.core.sites import ChainTable
from repro.runtime.events import _NEVER_FREED, LiveStats, Trace

__all__ = [
    "EV_ALLOC",
    "EV_FREE",
    "EV_TOUCH",
    "Event",
    "StreamHeader",
    "StreamSummary",
    "EventSource",
    "TraceEventSource",
    "as_event_source",
    "build_trace",
    "iter_object_lifetimes",
    "iter_object_records",
    "source_identity",
    "stream_live_stats",
]

#: Event tags.  Values match the low-bit tags packed into
#: :class:`~repro.runtime.events.Trace` event codes, so wrapping a trace
#: is a shift-and-mask, not a translation table.
EV_ALLOC = 0
EV_FREE = 1
EV_TOUCH = 2

Event = Tuple[int, ...]


@dataclass(frozen=True)
class StreamHeader:
    """Stream prologue: execution identity plus the interned chain table.

    Available before the first event, so consumers can resolve
    ``chain_id`` -> :class:`~repro.core.sites.CallChain` while streaming.
    """

    program: str
    dataset: str
    chains: ChainTable
    has_touch_events: bool


@dataclass(frozen=True)
class StreamSummary:
    """Stream epilogue: the aggregate counters a trace carries.

    ``end_time`` is the final byte-time clock value (total bytes
    allocated); ``unfreed_touches`` holds ``(obj_id, touches)`` pairs for
    never-freed objects with a nonzero touch count, sorted by object id —
    by definition O(live objects at exit).
    """

    total_calls: int
    heap_refs: int
    non_heap_refs: int
    end_time: int
    total_objects: int
    event_count: int
    unfreed_touches: Tuple[Tuple[int, int], ...] = ()


class EventSource:
    """One execution's event stream: header, events, summary.

    ``events()`` must return a *fresh* iterator each call.  ``header``
    and ``summary`` are available without consuming events (the v3 file
    format keeps its footer reachable through a fixed-size trailer for
    exactly this reason).
    """

    @property
    def header(self) -> StreamHeader:
        raise NotImplementedError

    @property
    def summary(self) -> StreamSummary:
        raise NotImplementedError

    def events(self) -> Iterator[Event]:
        """The event tuples in program order (a fresh iterator per call)."""
        raise NotImplementedError


class TraceEventSource(EventSource):
    """An in-memory :class:`Trace` viewed through the event protocol."""

    def __init__(self, trace: Trace):
        self.trace = trace
        arrays = trace.raw_arrays()
        self._chain_ids = arrays["chain_ids"]
        self._sizes = arrays["sizes"]
        self._births = arrays["births"]
        self._deaths = arrays["deaths"]
        self._touches = arrays["touches"]
        self._codes = arrays["events"]
        self._touch_counts = arrays["touch_counts"]
        self._header = StreamHeader(
            program=trace.program,
            dataset=trace.dataset,
            chains=trace.chains,
            has_touch_events=trace.has_touch_events,
        )
        self._summary: Union[StreamSummary, None] = None

    @property
    def header(self) -> StreamHeader:
        return self._header

    @property
    def summary(self) -> StreamSummary:
        if self._summary is None:
            trace = self.trace
            unfreed = tuple(
                (obj_id, self._touches[obj_id])
                for obj_id in range(len(self._sizes))
                if self._deaths[obj_id] == _NEVER_FREED
                and self._touches[obj_id] != 0
            )
            self._summary = StreamSummary(
                total_calls=trace.total_calls,
                heap_refs=trace.heap_refs,
                non_heap_refs=trace.non_heap_refs,
                end_time=trace.end_time,
                total_objects=trace.total_objects,
                event_count=trace.event_count,
                unfreed_touches=unfreed,
            )
        return self._summary

    def events(self) -> Iterator[Event]:
        chain_ids = self._chain_ids
        sizes = self._sizes
        births = self._births
        deaths = self._deaths
        touches = self._touches
        touch_counts = self._touch_counts
        touch_index = 0
        for code in self._codes:
            tag = code & 3
            obj_id = code >> 2
            if tag == EV_ALLOC:
                yield (
                    EV_ALLOC, obj_id,
                    chain_ids[obj_id], sizes[obj_id], births[obj_id],
                )
            elif tag == EV_FREE:
                yield (EV_FREE, obj_id, deaths[obj_id], touches[obj_id])
            else:
                yield (EV_TOUCH, obj_id, touch_counts[touch_index])
                touch_index += 1


def as_event_source(trace: Union[Trace, EventSource]) -> EventSource:
    """Normalize "a trace" to an :class:`EventSource`.

    Every consumer that historically took a :class:`Trace` funnels
    through this, so materialized and streaming callers share one code
    path (and therefore one set of results).
    """
    if isinstance(trace, EventSource):
        return trace
    if isinstance(trace, Trace):
        return TraceEventSource(trace)
    raise TypeError(
        f"expected a Trace or EventSource, got {type(trace).__name__}"
    )


def source_identity(trace: Union[Trace, EventSource]) -> Tuple[str, str]:
    """``(program, dataset)`` of a trace or source, without wrapping it."""
    header = getattr(trace, "header", None)
    if header is not None:
        return header.program, header.dataset
    return trace.program, trace.dataset


def build_trace(source: EventSource) -> Trace:
    """Materialize an event stream back into an in-memory :class:`Trace`.

    The inverse of :class:`TraceEventSource`: alloc events arrive in
    dense object-id order, so the parallel arrays are rebuilt with pure
    appends and the result round-trips exactly (same events, arrays, and
    aggregates).
    """
    header = source.header
    chain_ids = array("i")
    sizes = array("q")
    births = array("q")
    deaths = array("q")
    touches = array("q")
    events = array("q")
    touch_counts = array("q")
    for ev in source.events():
        tag = ev[0]
        obj_id = ev[1]
        if tag == EV_ALLOC:
            if obj_id != len(sizes):
                raise ValueError(
                    f"alloc events out of order: expected object "
                    f"{len(sizes)}, got {obj_id}"
                )
            chain_ids.append(ev[2])
            sizes.append(ev[3])
            births.append(ev[4])
            deaths.append(_NEVER_FREED)
            touches.append(0)
            events.append((obj_id << 2) | EV_ALLOC)
        elif tag == EV_FREE:
            deaths[obj_id] = ev[2]
            touches[obj_id] = ev[3]
            events.append((obj_id << 2) | EV_FREE)
        else:
            events.append((obj_id << 2) | EV_TOUCH)
            touch_counts.append(ev[2])
    summary = source.summary
    for obj_id, count in summary.unfreed_touches:
        touches[obj_id] = count
    return Trace(
        program=header.program,
        dataset=header.dataset,
        chains=header.chains,
        chain_ids=chain_ids,
        sizes=sizes,
        births=births,
        deaths=deaths,
        touches=touches,
        events=events,
        total_calls=summary.total_calls,
        heap_refs=summary.heap_refs,
        non_heap_refs=summary.non_heap_refs,
        touch_counts=touch_counts,
    )


def iter_object_lifetimes(
    source: EventSource,
) -> Iterator[Tuple[int, int, int, int]]:
    """``(chain_id, size, lifetime, touches)`` per object, one stream pass.

    Freed objects are yielded at their free event (lifetime =
    ``death - birth``); objects never freed are yielded after the stream
    ends, in object-id order, with the trace convention lifetime
    ``end_time - birth``.  The working set is the live-object dict.

    Every per-object accumulation in the pipeline that is
    order-independent — the all-short-lived site folds behind each
    predictor family, survival curves, lifetime quantile inputs — is fed
    from this iterator, which is why the streaming and materialized
    paths produce identical predictor databases and tables.
    """
    live = {}
    for ev in source.events():
        tag = ev[0]
        if tag == EV_ALLOC:
            live[ev[1]] = (ev[2], ev[3], ev[4])
        elif tag == EV_FREE:
            chain_id, size, birth = live.pop(ev[1])
            yield (chain_id, size, ev[2] - birth, ev[3])
    summary = source.summary
    end_time = summary.end_time
    unfreed_touches = dict(summary.unfreed_touches)
    for obj_id in sorted(live):
        chain_id, size, birth = live[obj_id]
        yield (chain_id, size, end_time - birth, unfreed_touches.get(obj_id, 0))


def iter_object_records(
    source: EventSource,
) -> Iterator[Tuple[int, int, int, int, int, int]]:
    """``(obj_id, chain_id, size, birth, death, touches)`` per object.

    The positional sibling of :func:`iter_object_lifetimes`: same single
    stream pass, same live-object working set, same never-freed tail
    convention (death at ``summary.end_time``, object-id order) — but the
    absolute birth/death byte-times and the dense object id survive
    instead of being collapsed into a lifetime.  Folds that partition the
    run into windows key on exactly these positions, which is why the
    shard engine feeds its folds through the same tuple shape (see
    :meth:`~repro.runtime.shard.folds.LifetimeFold.add_object`).
    """
    live = {}
    for ev in source.events():
        tag = ev[0]
        if tag == EV_ALLOC:
            live[ev[1]] = (ev[2], ev[3], ev[4])
        elif tag == EV_FREE:
            chain_id, size, birth = live.pop(ev[1])
            yield (ev[1], chain_id, size, birth, ev[2], ev[3])
    summary = source.summary
    end_time = summary.end_time
    unfreed_touches = dict(summary.unfreed_touches)
    for obj_id in sorted(live):
        chain_id, size, birth = live[obj_id]
        yield (
            obj_id, chain_id, size, birth, end_time,
            unfreed_touches.get(obj_id, 0),
        )


def stream_live_stats(source: EventSource) -> LiveStats:
    """High-water marks of live bytes/objects from one stream pass.

    Same accumulation as :meth:`Trace.live_stats`; a wrapped in-memory
    trace delegates to it so the per-trace cache keeps working.
    """
    if isinstance(source, TraceEventSource):
        return source.trace.live_stats()
    live_sizes = {}
    live_bytes = live_objects = 0
    max_bytes = max_objects = 0
    for ev in source.events():
        tag = ev[0]
        if tag == EV_TOUCH:
            continue
        if tag == EV_FREE:
            live_bytes -= live_sizes.pop(ev[1])
            live_objects -= 1
        else:
            live_sizes[ev[1]] = ev[3]
            live_bytes += ev[3]
            live_objects += 1
            if live_bytes > max_bytes:
                max_bytes = live_bytes
            if live_objects > max_objects:
                max_objects = live_objects
    return LiveStats(max_bytes, max_objects)
