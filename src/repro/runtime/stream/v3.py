"""Trace format v3: chunked, length-prefixed gzip frames + footer index.

Layout (all integers little-endian)::

    offset 0   magic            b"RPRTRC3\\n"                     8 bytes
               H frame          gzip JSON header (identity, chain
                                table, has_touch_events)
               E frame ...      gzip JSON event chunks, ~64k events
                                each, in program order
               F frame          gzip JSON footer (aggregate counters,
                                unfreed touch counts, chunk index)
    trailer    b"RPRTRIDX" + u64 footer offset + magic            24 bytes

    frame   =  1-byte kind (H/E/F) + u32 payload length + gzip payload

The fixed-size trailer makes the footer reachable with one backward
seek, so a reader exposes the :class:`~repro.runtime.stream.protocol.
StreamSummary` *at open time* without touching the event frames; events
then stream one chunk at a time, giving O(live objects + one chunk)
replay memory.  The chunk index in the footer records every E frame's
offset and event count for future sharded/partial readers.

Writes go through :func:`repro.runtime.tracefile.atomic_output` — the
same temp-file + ``os.replace`` path as the v2 writer — and gzip with
``mtime=0``, so a given stream always produces byte-identical files and
an interrupted write never publishes a partial one.  Reads validate the
magic, the trailer, every frame boundary, and the final event count
against the footer: a truncated or corrupt mid-stream chunk raises
:class:`~repro.runtime.tracefile.TraceFormatError`, never a silently
short trace.
"""

from __future__ import annotations

import gzip
import json
import os
import struct
import zlib
from typing import BinaryIO, Iterator, Tuple

from repro.core.sites import ChainTable
from repro.runtime.stream.protocol import (
    EV_ALLOC,
    EV_FREE,
    EV_TOUCH,
    Event,
    EventSource,
    StreamHeader,
    StreamSummary,
)
from repro.runtime import tracefile

__all__ = [
    "DEFAULT_CHUNK_EVENTS",
    "TraceFileSource",
    "read_chunk_events",
    "write_trace_v3",
]

#: Events per E frame.  Large enough that gzip compresses well and the
#: per-frame overhead vanishes, small enough that one decoded chunk is
#: a few megabytes at most.
DEFAULT_CHUNK_EVENTS = 65536

_TRAILER_MAGIC = b"RPRTRIDX"
#: kind byte + u32 payload length.
_FRAME = struct.Struct("<cI")
#: trailer magic + u64 footer offset + file magic.
_TRAILER = struct.Struct("<8sQ8s")

_KIND_HEADER = b"H"
_KIND_EVENTS = b"E"
_KIND_FOOTER = b"F"

#: Expected tuple length per event tag (frame validation).
_EVENT_LENGTHS = {EV_ALLOC: 5, EV_FREE: 4, EV_TOUCH: 3}


def _pack_frame(kind: bytes, doc: dict) -> bytes:
    data = json.dumps(doc, separators=(",", ":")).encode("utf-8")
    # mtime=0 keeps the bytes deterministic for a given stream.
    payload = gzip.compress(data, compresslevel=9, mtime=0)
    return _FRAME.pack(kind, len(payload)) + payload


def write_trace_v3(
    source: EventSource,
    path: "tracefile.PathLike",
    chunk_events: int = DEFAULT_CHUNK_EVENTS,
) -> None:
    """Write ``source``'s stream to ``path`` in v3 format (atomically).

    Consumes the events exactly once; peak memory is one chunk's worth
    of event tuples, so a disk-to-disk conversion never materializes the
    trace.
    """
    if chunk_events < 1:
        raise ValueError(f"chunk_events must be >= 1, got {chunk_events}")
    header = source.header
    header_doc = {
        "format": "repro-trace-stream",
        "version": 3,
        "program": header.program,
        "dataset": header.dataset,
        "has_touch_events": header.has_touch_events,
        "chains": [list(chain) for chain in header.chains.to_list()],
    }
    with tracefile.atomic_output(path) as fh:
        fh.write(tracefile.V3_MAGIC)
        offset = len(tracefile.V3_MAGIC)
        offset += fh.write(_pack_frame(_KIND_HEADER, header_doc))
        chunks = []
        event_count = 0
        buffer = []
        for ev in source.events():
            buffer.append(list(ev))
            if len(buffer) >= chunk_events:
                chunks.append([offset, len(buffer)])
                event_count += len(buffer)
                offset += fh.write(
                    _pack_frame(_KIND_EVENTS, {"events": buffer})
                )
                buffer = []
        if buffer:
            chunks.append([offset, len(buffer)])
            event_count += len(buffer)
            offset += fh.write(_pack_frame(_KIND_EVENTS, {"events": buffer}))
        summary = source.summary
        if summary.event_count != event_count:
            raise ValueError(
                f"source summary declares {summary.event_count} events "
                f"but {event_count} were streamed"
            )
        footer_doc = {
            "total_calls": summary.total_calls,
            "heap_refs": summary.heap_refs,
            "non_heap_refs": summary.non_heap_refs,
            "end_time": summary.end_time,
            "total_objects": summary.total_objects,
            "event_count": event_count,
            "unfreed_touches": [list(pair) for pair in summary.unfreed_touches],
            "chunks": chunks,
        }
        fh.write(_pack_frame(_KIND_FOOTER, footer_doc))
        fh.write(_TRAILER.pack(_TRAILER_MAGIC, offset, tracefile.V3_MAGIC))


class TraceFileSource(EventSource):
    """Streaming reader over a v3 trace file.

    Opening reads only the header and footer frames (via the trailer),
    then closes the file; every :meth:`events` call opens its own
    handle, so one source supports repeated and concurrent replays.
    """

    def __init__(self, path: "tracefile.PathLike"):
        self.path = os.fspath(path)
        with open(self.path, "rb") as fh:
            fh.seek(0, os.SEEK_END)
            size = fh.tell()
            floor = len(tracefile.V3_MAGIC) + _TRAILER.size
            if size < floor:
                raise tracefile.TraceFormatError(
                    f"{self.path}: truncated v3 trace ({size} bytes)"
                )
            fh.seek(0)
            if fh.read(len(tracefile.V3_MAGIC)) != tracefile.V3_MAGIC:
                raise tracefile.TraceFormatError(
                    f"{self.path}: not a v3 trace file (bad magic)"
                )
            fh.seek(size - _TRAILER.size)
            trailer_magic, footer_offset, end_magic = _TRAILER.unpack(
                fh.read(_TRAILER.size)
            )
            if (trailer_magic != _TRAILER_MAGIC
                    or end_magic != tracefile.V3_MAGIC):
                raise tracefile.TraceFormatError(
                    f"{self.path}: truncated v3 trace (bad trailer)"
                )
            if not len(tracefile.V3_MAGIC) <= footer_offset <= size - floor:
                raise tracefile.TraceFormatError(
                    f"{self.path}: footer offset {footer_offset} outside file"
                )
            self._data_end = footer_offset
            fh.seek(footer_offset)
            kind, footer_doc = _read_frame(fh, self.path, size - _TRAILER.size)
            if kind != _KIND_FOOTER:
                raise tracefile.TraceFormatError(
                    f"{self.path}: expected footer frame at {footer_offset}, "
                    f"got kind {kind!r}"
                )
            fh.seek(len(tracefile.V3_MAGIC))
            kind, header_doc = _read_frame(fh, self.path, footer_offset)
            if kind != _KIND_HEADER:
                raise tracefile.TraceFormatError(
                    f"{self.path}: expected header frame, got kind {kind!r}"
                )
            self._first_event_offset = fh.tell()
        try:
            chains = ChainTable.from_list(
                [tuple(chain) for chain in header_doc["chains"]]
            )
            self._header = StreamHeader(
                program=header_doc["program"],
                dataset=header_doc["dataset"],
                chains=chains,
                has_touch_events=bool(header_doc["has_touch_events"]),
            )
            self._summary = StreamSummary(
                total_calls=footer_doc["total_calls"],
                heap_refs=footer_doc["heap_refs"],
                non_heap_refs=footer_doc["non_heap_refs"],
                end_time=footer_doc["end_time"],
                total_objects=footer_doc["total_objects"],
                event_count=footer_doc["event_count"],
                unfreed_touches=tuple(
                    (int(obj_id), int(count))
                    for obj_id, count in footer_doc["unfreed_touches"]
                ),
            )
            self.chunk_index: Tuple[Tuple[int, int], ...] = tuple(
                (int(off), int(count)) for off, count in footer_doc["chunks"]
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise tracefile.TraceFormatError(
                f"{self.path}: malformed v3 header/footer: {exc}"
            ) from exc

    @property
    def header(self) -> StreamHeader:
        return self._header

    @property
    def summary(self) -> StreamSummary:
        return self._summary

    @property
    def data_end(self) -> int:
        """First offset past the event region (the footer frame offset).

        Together with :attr:`chunk_index` this is everything a sharded
        reader needs to hand a worker one chunk: the index supplies the
        frame offset and expected event count, ``data_end`` bounds the
        frame so a corrupt length field cannot read into the footer.
        """
        return self._data_end

    def events(self) -> Iterator[Event]:
        yielded = 0
        with open(self.path, "rb") as fh:
            fh.seek(self._first_event_offset)
            while fh.tell() < self._data_end:
                kind, doc = _read_frame(fh, self.path, self._data_end)
                if kind != _KIND_EVENTS:
                    raise tracefile.TraceFormatError(
                        f"{self.path}: unexpected {kind!r} frame in the "
                        f"event region"
                    )
                events = doc.get("events")
                if not isinstance(events, list):
                    raise tracefile.TraceFormatError(
                        f"{self.path}: event chunk without an event list"
                    )
                for ev in events:
                    if (not isinstance(ev, list) or not ev
                            or _EVENT_LENGTHS.get(ev[0]) != len(ev)):
                        raise tracefile.TraceFormatError(
                            f"{self.path}: malformed event {ev!r}"
                        )
                    yield tuple(ev)
                yielded += len(events)
        if yielded != self._summary.event_count:
            raise tracefile.TraceFormatError(
                f"{self.path}: event stream ended after {yielded} events, "
                f"footer declares {self._summary.event_count}"
            )


def read_chunk_events(
    path: "tracefile.PathLike", offset: int, count: int, data_end: int
) -> Tuple[Event, ...]:
    """Decode one E frame named by a footer chunk-index entry.

    ``offset`` and ``count`` come straight from a
    :attr:`TraceFileSource.chunk_index` entry and ``data_end`` from
    :attr:`TraceFileSource.data_end`; validation matches the serial
    reader's (frame kind, per-event tuple shapes) plus the index's own
    declared event count, so a corrupted index entry raises
    :class:`~repro.runtime.tracefile.TraceFormatError` instead of
    silently mis-partitioning a sharded replay.  This is the worker-side
    primitive of :mod:`repro.runtime.shard`: it needs no state beyond
    the four integers/strings, so process-pool workers can decode
    chunks independently.
    """
    name = os.fspath(path)
    with open(name, "rb") as fh:
        fh.seek(offset)
        kind, doc = _read_frame(fh, name, data_end)
    if kind != _KIND_EVENTS:
        raise tracefile.TraceFormatError(
            f"{name}: chunk index points at a {kind!r} frame at "
            f"offset {offset}, expected an event frame"
        )
    events = doc.get("events")
    if not isinstance(events, list):
        raise tracefile.TraceFormatError(
            f"{name}: event chunk without an event list"
        )
    if len(events) != count:
        raise tracefile.TraceFormatError(
            f"{name}: chunk at offset {offset} holds {len(events)} "
            f"events, index declares {count}"
        )
    out = []
    for ev in events:
        if (not isinstance(ev, list) or not ev
                or _EVENT_LENGTHS.get(ev[0]) != len(ev)):
            raise tracefile.TraceFormatError(
                f"{name}: malformed event {ev!r}"
            )
        out.append(tuple(ev))
    return tuple(out)


def _read_frame(
    fh: BinaryIO, path: str, limit: int
) -> Tuple[bytes, dict]:
    """Read one frame; every failure mode is a :class:`TraceFormatError`.

    ``limit`` is the first offset past the region this frame must fit in
    (the footer offset for event frames), so a corrupted length field
    cannot silently read into the footer or past EOF.
    """
    raw = fh.read(_FRAME.size)
    if len(raw) != _FRAME.size:
        raise tracefile.TraceFormatError(
            f"{path}: truncated frame header at offset "
            f"{fh.tell() - len(raw)}"
        )
    kind, length = _FRAME.unpack(raw)
    if fh.tell() + length > limit:
        raise tracefile.TraceFormatError(
            f"{path}: frame of {length} bytes at offset {fh.tell()} "
            f"overruns its region (ends past {limit})"
        )
    payload = fh.read(length)
    if len(payload) != length:
        raise tracefile.TraceFormatError(
            f"{path}: truncated frame payload "
            f"({len(payload)} of {length} bytes)"
        )
    try:
        data = gzip.decompress(payload)
    except (EOFError, zlib.error, gzip.BadGzipFile) as exc:
        raise tracefile.TraceFormatError(
            f"{path}: corrupt frame payload: {exc}"
        ) from exc
    try:
        doc = json.loads(data)
    except json.JSONDecodeError as exc:
        raise tracefile.TraceFormatError(
            f"{path}: frame is not valid JSON: {exc}"
        ) from exc
    if not isinstance(doc, dict):
        raise tracefile.TraceFormatError(
            f"{path}: frame document is not an object"
        )
    return kind, doc
