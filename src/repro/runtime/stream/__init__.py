"""Streaming trace IR: the event pipeline from workload to tables.

The paper's method is trace-driven end to end, but nothing in the math
requires the whole trace in memory: replay, profile training, and the
survival/locality analyses all consume events single-pass (the P^2
quantile trainer is one-pass by construction).  This package defines the
typed event protocol those consumers share:

* :mod:`repro.runtime.stream.protocol` — event tuples (alloc/free/touch),
  the chain-table prologue (:class:`StreamHeader`) and aggregate-counters
  epilogue (:class:`StreamSummary`), and the :class:`EventSource`
  abstraction of which the in-memory :class:`~repro.runtime.events.Trace`
  is one implementation (:class:`TraceEventSource`);
* :mod:`repro.runtime.stream.v3` — trace format v3: chunked,
  length-prefixed gzip frames with a footer index, replayable from disk
  in O(live objects + one chunk) memory via
  :func:`~repro.runtime.tracefile.open_trace_stream`.
"""

from repro.runtime.stream.protocol import (
    EV_ALLOC,
    EV_FREE,
    EV_TOUCH,
    EventSource,
    StreamHeader,
    StreamSummary,
    TraceEventSource,
    as_event_source,
    build_trace,
    iter_object_lifetimes,
    source_identity,
    stream_live_stats,
)
from repro.runtime.stream.v3 import (
    DEFAULT_CHUNK_EVENTS,
    TraceFileSource,
    write_trace_v3,
)

__all__ = [
    "EV_ALLOC",
    "EV_FREE",
    "EV_TOUCH",
    "EventSource",
    "StreamHeader",
    "StreamSummary",
    "TraceEventSource",
    "as_event_source",
    "build_trace",
    "iter_object_lifetimes",
    "source_identity",
    "stream_live_stats",
    "DEFAULT_CHUNK_EVENTS",
    "TraceFileSource",
    "write_trace_v3",
]
