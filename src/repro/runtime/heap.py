"""The traced heap: the reproduction's instrumented allocation runtime.

Barrett & Zorn instrumented real C programs with Larus' AE tool so that
every ``malloc``/``free`` carried the current call chain.  A Python
reproduction cannot instrument the interpreter's hidden heap, so the
workloads in :mod:`repro.workloads` are written against this explicit
runtime instead: every dynamic object they create is obtained from a
:class:`TracedHeap`, which

* maintains the current call chain (functions push/pop frames via the
  :func:`traced` decorator or the :meth:`TracedHeap.frame` context
  manager),
* advances the byte-time clock by the size of each allocation (the paper's
  lifetime unit, §3.2),
* records every birth and death into a :class:`~repro.runtime.events.Trace`,
* counts function calls (needed to cost call-chain encryption) and memory
  references (heap references via :meth:`TracedHeap.touch`, non-heap
  references charged automatically per function call), supplying the data
  behind the paper's Heap Refs and New Ref columns.

The heap hands out :class:`HeapObject` handles.  Handles carry an arbitrary
``payload`` so a workload's real data (bignum digit arrays, parse-tree
nodes, interpreter values) lives on the handle; the traced size is the
modelled C size of that data, which each workload computes from its own
layout rules.
"""

from __future__ import annotations

import functools
from contextlib import contextmanager
from typing import Any, Callable, Iterator, List, Optional, TypeVar

from repro.runtime.events import Trace, TraceBuilder

__all__ = ["HeapObject", "TracedHeap", "traced", "HeapError"]

#: Non-heap (stack/global) memory references charged per traced function
#: call: frame setup, saved registers, spilled locals.  A modelling
#: constant; see DESIGN.md §2.
NON_HEAP_REFS_PER_CALL = 2


class HeapError(Exception):
    """Raised on misuse of the traced heap (double free, foreign object)."""


class HeapObject:
    """Handle for one object allocated from a :class:`TracedHeap`.

    ``payload`` is workload-private data.  ``size`` is the modelled size in
    bytes — what the workload's C original would have passed to ``malloc``.
    """

    __slots__ = ("obj_id", "size", "payload", "_heap", "_touches", "_freed")

    def __init__(self, obj_id: int, size: int, heap: "TracedHeap"):
        self.obj_id = obj_id
        self.size = size
        self.payload: Any = None
        self._heap = heap
        self._touches = 0
        self._freed = False

    @property
    def freed(self) -> bool:
        """Whether this object has been returned to the heap."""
        return self._freed

    @property
    def touches(self) -> int:
        """Heap references made to this object so far."""
        return self._touches

    def touch(self, count: int = 1) -> None:
        """Convenience for ``heap.touch(self, count)``."""
        self._heap.touch(self, count)

    def free(self) -> None:
        """Convenience for ``heap.free(self)``."""
        self._heap.free(self)

    def __repr__(self) -> str:
        state = "freed" if self._freed else "live"
        return f"<HeapObject #{self.obj_id} size={self.size} {state}>"


class TracedHeap:
    """An instrumented allocation arena for one traced program execution.

    Typical use::

        heap = TracedHeap("cfrac", dataset="train")
        with heap.frame("main"):
            run_the_workload(heap)
        trace = heap.finish()

    The heap is single-use: after :meth:`finish` it refuses further
    allocation.
    """

    def __init__(
        self,
        program: str,
        dataset: str = "default",
        root: str = "main",
        non_heap_refs_per_call: int = NON_HEAP_REFS_PER_CALL,
        record_touches: bool = False,
    ):
        self._builder = TraceBuilder(
            program=program, dataset=dataset, record_touches=record_touches
        )
        self._record_touches = record_touches
        self._stack: List[str] = [root]
        self._clock = 0  # byte-time: total bytes allocated so far
        self._live_bytes = 0
        self._live_objects = 0
        self._finished = False
        self._non_heap_refs_per_call = non_heap_refs_per_call

    # ------------------------------------------------------------------
    # Call-chain maintenance
    # ------------------------------------------------------------------

    @property
    def call_chain(self) -> tuple:
        """The current call chain, outermost function first."""
        return tuple(self._stack)

    @property
    def depth(self) -> int:
        """Current call-stack depth."""
        return len(self._stack)

    @contextmanager
    def frame(self, name: str) -> Iterator[None]:
        """Push ``name`` onto the call chain for the duration of the block.

        Every entry counts as one function call for the trace's
        ``total_calls`` and charges the modelled non-heap references.
        """
        self._enter(name)
        try:
            yield
        finally:
            self._exit()

    def _enter(self, name: str) -> None:
        self._stack.append(name)
        self._builder.total_calls += 1
        self._builder.non_heap_refs += self._non_heap_refs_per_call

    def _exit(self) -> None:
        self._stack.pop()

    # ------------------------------------------------------------------
    # Allocation interface
    # ------------------------------------------------------------------

    @property
    def clock(self) -> int:
        """Current byte-time (total bytes allocated so far)."""
        return self._clock

    @property
    def live_bytes(self) -> int:
        """Bytes currently allocated and not yet freed."""
        return self._live_bytes

    @property
    def live_objects(self) -> int:
        """Objects currently allocated and not yet freed."""
        return self._live_objects

    def malloc(self, size: int, payload: Any = None) -> HeapObject:
        """Allocate ``size`` modelled bytes at the current call chain.

        ``size`` must be positive — the traced programs model C ``malloc``
        calls, which the workloads never issue for zero bytes.
        """
        self._check_open()
        if size <= 0:
            raise HeapError(f"allocation size must be positive, got {size}")
        obj_id = self._builder.add_alloc(
            chain=tuple(self._stack), size=size, birth=self._clock
        )
        self._clock += size
        self._live_bytes += size
        self._live_objects += 1
        obj = HeapObject(obj_id, size, self)
        obj.payload = payload
        return obj

    def free(self, obj: HeapObject) -> None:
        """Return ``obj`` to the heap, recording its death time.

        Raises :class:`HeapError` on double free or on an object belonging
        to a different heap.
        """
        self._check_open()
        if obj._heap is not self:
            raise HeapError("object belongs to a different heap")
        if obj._freed:
            raise HeapError(f"double free of {obj!r}")
        obj._freed = True
        self._live_bytes -= obj.size
        self._live_objects -= 1
        self._builder.add_free(obj.obj_id, death=self._clock, touches=obj._touches)

    def realloc(self, obj: HeapObject, size: int) -> HeapObject:
        """Model C ``realloc``: free ``obj`` and allocate a new object.

        The payload is carried over to the new handle.  Like the C original,
        this counts as a fresh allocation event at the current site.
        """
        payload = obj.payload
        self.free(obj)
        return self.malloc(size, payload=payload)

    def touch(self, obj: HeapObject, count: int = 1) -> None:
        """Record ``count`` heap memory references to ``obj``.

        Workloads call this at the natural use points of their algorithms
        (reading a digit array, walking a list node); the aggregate feeds
        the Heap Refs and New Ref measurements.

        Raises :class:`HeapError` after :meth:`finish` — the trace is
        sealed, so late touches would be silently lost.
        """
        self._check_open()
        if count < 0:
            raise HeapError(f"touch count must be non-negative, got {count}")
        if obj._freed:
            raise HeapError(f"touch after free of {obj!r}")
        obj._touches += count
        self._builder.heap_refs += count
        if self._record_touches and count:
            self._builder.add_touch_event(obj.obj_id, count)

    def non_heap_refs(self, count: int) -> None:
        """Record ``count`` additional non-heap memory references.

        Raises :class:`HeapError` after :meth:`finish`, like the other
        mutators.
        """
        self._check_open()
        if count < 0:
            raise HeapError(f"ref count must be non-negative, got {count}")
        self._builder.non_heap_refs += count

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------

    def finish(self) -> Trace:
        """Seal the heap and return the completed trace.

        Objects still live keep ``death=None`` in the trace (their touch
        counts are flushed here); every consumer treats them as long-lived.
        """
        self._check_open()
        self._finished = True
        return self._builder.build()

    def _check_open(self) -> None:
        if self._finished:
            raise HeapError("heap already finished")


F = TypeVar("F", bound=Callable[..., Any])


def traced(fn: F) -> F:
    """Method decorator: push the function's name onto the traced call chain.

    Decorated methods must belong to an object exposing the heap as
    ``self.heap`` — the convention every workload class in
    :mod:`repro.workloads` follows::

        class Factorizer:
            def __init__(self, heap):
                self.heap = heap

            @traced
            def factor(self, n):
                ...  # allocations here carry "factor" on their chain

    The chain name is the bare function name (not the qualified name): the
    paper's chains are function chains, and two workload classes reusing a
    method name model two C programs reusing a function name, which never
    happens within one trace.
    """
    name = fn.__name__

    @functools.wraps(fn)
    def wrapper(self, *args: Any, **kwargs: Any) -> Any:
        heap: TracedHeap = self.heap
        heap._enter(name)
        try:
            return fn(self, *args, **kwargs)
        finally:
            heap._exit()

    return wrapper  # type: ignore[return-value]
