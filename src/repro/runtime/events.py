"""Allocation trace data model.

A :class:`Trace` is the reproduction's stand-in for the address/event traces
Barrett & Zorn generated with Larus' AE tool: the complete record of one
program execution's allocation behaviour.  It holds

* one record per heap object — allocation chain, requested size, birth and
  death on the byte-time clock, and how many times the object was touched;
* the interleaved event sequence (alloc/free in program order), which the
  trace-driven allocator simulations replay;
* aggregate counters: function calls executed (needed to amortize
  call-chain-encryption cost, §5.1) and heap/non-heap memory reference
  counts (needed for the Heap Refs column of Table 2 and the New Ref
  columns of Table 6).

Time is the paper's byte-time: the total number of bytes allocated so far
(§3.2).  An object's lifetime is ``death - birth`` in those units; objects
still live when the program ends have no death time and are treated as
long-lived by every consumer.

Object records are stored as parallel arrays so multi-hundred-thousand
object traces stay cheap; :meth:`Trace.record` materializes a lightweight
view when record-at-a-time access is clearer.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.core.sites import AllocationSite, CallChain, ChainTable

__all__ = ["ObjectView", "Trace", "TraceBuilder", "LiveStats"]

#: Sentinel stored in the deaths array for objects never freed.
_NEVER_FREED = -1

#: Event tags in the low two bits of each event code (object id above).
TAG_ALLOC = 0
TAG_FREE = 1
TAG_TOUCH = 2


@dataclass(frozen=True)
class ObjectView:
    """Read-only view of one traced object.

    ``lifetime`` follows the paper's convention: bytes allocated between
    birth and death, where an object never explicitly freed dies at
    program exit (its lifetime runs to the end of the trace — this is why
    the paper's maximum lifetimes equal each program's total allocation).
    ``death`` is ``None`` for such objects; ``freed`` distinguishes them.
    """

    obj_id: int
    chain_id: int
    size: int
    birth: int
    death: Optional[int]
    touches: int
    lifetime: int

    @property
    def freed(self) -> bool:
        """Whether the object was freed before the program ended."""
        return self.death is not None


@dataclass(frozen=True)
class LiveStats:
    """High-water marks of live heap data over a whole execution."""

    max_live_bytes: int
    max_live_objects: int


class Trace:
    """One program execution's complete allocation trace."""

    def __init__(
        self,
        program: str,
        dataset: str,
        chains: ChainTable,
        chain_ids: array,
        sizes: array,
        births: array,
        deaths: array,
        touches: array,
        events: array,
        total_calls: int,
        heap_refs: int,
        non_heap_refs: int,
        touch_counts: array = None,
    ):
        self.program = program
        self.dataset = dataset
        self.chains = chains
        self._chain_ids = chain_ids
        self._sizes = sizes
        self._births = births
        self._deaths = deaths
        self._touches = touches
        self._events = events
        self.total_calls = total_calls
        self.heap_refs = heap_refs
        self.non_heap_refs = non_heap_refs
        self._touch_counts = touch_counts if touch_counts is not None else array("q")
        self._live_stats: Optional[LiveStats] = None
        self._total_bytes: Optional[int] = None

    # ------------------------------------------------------------------
    # Object records
    # ------------------------------------------------------------------

    @property
    def total_objects(self) -> int:
        """Number of objects allocated during the execution."""
        return len(self._sizes)

    @property
    def total_bytes(self) -> int:
        """Total bytes allocated; also the final byte-time clock value."""
        if self._total_bytes is None:
            self._total_bytes = sum(self._sizes)
        return self._total_bytes

    @property
    def end_time(self) -> int:
        """The byte-time clock at program exit (equals ``total_bytes``)."""
        return self.total_bytes

    def record(self, obj_id: int) -> ObjectView:
        """The record of object ``obj_id`` (ids are dense from 0)."""
        if not 0 <= obj_id < len(self._sizes):
            raise IndexError(f"no object {obj_id} in trace")
        death = self._deaths[obj_id]
        return ObjectView(
            obj_id=obj_id,
            chain_id=self._chain_ids[obj_id],
            size=self._sizes[obj_id],
            birth=self._births[obj_id],
            death=None if death == _NEVER_FREED else death,
            touches=self._touches[obj_id],
            lifetime=self.lifetime_of(obj_id),
        )

    def records(self) -> Iterator[ObjectView]:
        """All object records in allocation order."""
        for obj_id in range(len(self._sizes)):
            yield self.record(obj_id)

    def chain_of(self, obj_id: int) -> CallChain:
        """The raw (unpruned) call chain of object ``obj_id``."""
        return self.chains.chain(self._chain_ids[obj_id])

    def site_of(self, obj_id: int) -> AllocationSite:
        """The allocation site (chain + size) of object ``obj_id``."""
        return AllocationSite(
            chain=self.chain_of(obj_id), size=self._sizes[obj_id]
        )

    def size_of(self, obj_id: int) -> int:
        """Requested size of object ``obj_id`` in bytes."""
        return self._sizes[obj_id]

    def lifetime_of(self, obj_id: int) -> int:
        """Lifetime of object ``obj_id`` in byte-time.

        Objects never explicitly freed die at program exit, so their
        lifetime runs to the end of the trace (the paper's convention —
        each program's maximum lifetime in Table 3 equals its total
        allocation).
        """
        death = self._deaths[obj_id]
        if death == _NEVER_FREED:
            death = self.end_time
        return death - self._births[obj_id]

    def freed(self, obj_id: int) -> bool:
        """Whether object ``obj_id`` was explicitly freed before exit."""
        return self._deaths[obj_id] != _NEVER_FREED

    def touches_of(self, obj_id: int) -> int:
        """How many heap references were made to object ``obj_id``."""
        return self._touches[obj_id]

    # ------------------------------------------------------------------
    # Event sequence
    # ------------------------------------------------------------------

    def events(self) -> Iterator[Tuple[str, int]]:
        """Alloc/free events in program order as ``("alloc"|"free", obj_id)``.

        Touch events, if recorded, are skipped; use :meth:`full_events`
        for the complete reference timeline.
        """
        for code in self._events:
            tag = code & 3
            if tag == TAG_ALLOC:
                yield ("alloc", code >> 2)
            elif tag == TAG_FREE:
                yield ("free", code >> 2)

    def full_events(self) -> Iterator[Tuple[str, int, int]]:
        """Every event in program order as ``(kind, obj_id, count)``.

        ``kind`` is ``"alloc"``, ``"free"``, or ``"touch"``; ``count`` is
        the number of references for touch events and 1 otherwise.  Touch
        events are present only when the trace was recorded with
        ``record_touches`` enabled (see :class:`~repro.runtime.heap.TracedHeap`).
        """
        touch_index = 0
        for code in self._events:
            tag = code & 3
            obj_id = code >> 2
            if tag == TAG_ALLOC:
                yield ("alloc", obj_id, 1)
            elif tag == TAG_FREE:
                yield ("free", obj_id, 1)
            else:
                yield ("touch", obj_id, self._touch_counts[touch_index])
                touch_index += 1

    @property
    def has_touch_events(self) -> bool:
        """Whether per-reference touch events were recorded."""
        return len(self._touch_counts) > 0

    @property
    def event_count(self) -> int:
        """Total number of recorded events (alloc + free + touch)."""
        return len(self._events)

    def live_stats(self) -> LiveStats:
        """Maximum simultaneously-live bytes and objects (Table 2 columns).

        Computed by replaying the event sequence; cached after first call.
        """
        if self._live_stats is None:
            live_bytes = live_objects = 0
            max_bytes = max_objects = 0
            for code in self._events:
                tag = code & 3
                if tag == TAG_TOUCH:
                    continue
                size = self._sizes[code >> 2]
                if tag == TAG_FREE:
                    live_bytes -= size
                    live_objects -= 1
                else:
                    live_bytes += size
                    live_objects += 1
                    if live_bytes > max_bytes:
                        max_bytes = live_bytes
                    if live_objects > max_objects:
                        max_objects = live_objects
            self._live_stats = LiveStats(max_bytes, max_objects)
        return self._live_stats

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    @property
    def total_refs(self) -> int:
        """All modelled memory references, heap and non-heap."""
        return self.heap_refs + self.non_heap_refs

    @property
    def heap_ref_fraction(self) -> float:
        """Fraction of modelled memory references that touch the heap."""
        total = self.total_refs
        if total == 0:
            return 0.0
        return self.heap_refs / total

    def raw_arrays(self):
        """Internal arrays, for serialization.  Treat as read-only."""
        return {
            "chain_ids": self._chain_ids,
            "sizes": self._sizes,
            "births": self._births,
            "deaths": self._deaths,
            "touches": self._touches,
            "events": self._events,
            "touch_counts": self._touch_counts,
        }


@dataclass
class TraceBuilder:
    """Incremental construction of a :class:`Trace`.

    The traced heap drives this builder: one :meth:`add_alloc` per object
    birth, one :meth:`add_free` per death, then :meth:`build`.  Ids are
    assigned densely in allocation order.
    """

    program: str
    dataset: str
    chains: ChainTable = field(default_factory=ChainTable)

    record_touches: bool = False

    def __post_init__(self) -> None:
        self._chain_ids = array("i")
        self._sizes = array("q")
        self._births = array("q")
        self._deaths = array("q")
        self._touches = array("q")
        self._events = array("q")
        self._touch_counts = array("q")
        self.total_calls = 0
        self.heap_refs = 0
        self.non_heap_refs = 0

    def add_alloc(self, chain: CallChain, size: int, birth: int) -> int:
        """Record an object birth; returns the new object's id."""
        obj_id = len(self._sizes)
        self._chain_ids.append(self.chains.intern(chain))
        self._sizes.append(size)
        self._births.append(birth)
        self._deaths.append(_NEVER_FREED)
        self._touches.append(0)
        self._events.append((obj_id << 2) | TAG_ALLOC)
        return obj_id

    def add_free(self, obj_id: int, death: int, touches: int) -> None:
        """Record the death of object ``obj_id`` at byte-time ``death``."""
        if self._deaths[obj_id] != _NEVER_FREED:
            raise ValueError(f"object {obj_id} freed twice")
        self._deaths[obj_id] = death
        self._touches[obj_id] = touches
        self._events.append((obj_id << 2) | TAG_FREE)

    def set_touches(self, obj_id: int, touches: int) -> None:
        """Record touch counts for an object that is never freed."""
        self._touches[obj_id] = touches

    def add_touch_event(self, obj_id: int, count: int) -> None:
        """Record one touch event (only when ``record_touches`` is set)."""
        self._events.append((obj_id << 2) | TAG_TOUCH)
        self._touch_counts.append(count)

    def build(self) -> Trace:
        """Finalize and return the immutable :class:`Trace`."""
        return Trace(
            program=self.program,
            dataset=self.dataset,
            chains=self.chains,
            chain_ids=self._chain_ids,
            sizes=self._sizes,
            births=self._births,
            deaths=self._deaths,
            touches=self._touches,
            events=self._events,
            total_calls=self.total_calls,
            heap_refs=self.heap_refs,
            non_heap_refs=self.non_heap_refs,
            touch_counts=self._touch_counts,
        )
