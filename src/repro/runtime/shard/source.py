"""Ordered chunk-parallel decoding of a v3 trace file.

:class:`ShardedTraceSource` is a drop-in
:class:`~repro.runtime.stream.v3.TraceFileSource` whose :meth:`events`
ships chunk *decoding* — the gzip + JSON + tuple-validation work that
dominates a streamed replay — to a process pool, while the parent
yields decoded chunks strictly in index order.

That ordering is the determinism argument for every order-*dependent*
consumer: the event sequence this source yields is identical, tuple for
tuple, to the serial reader's, so history-dependent folds (allocator
free lists in the Table 7-9 replays, the P^2 quantile trainers,
telemetry sampling) see exactly the serial input and produce
byte-identical output by construction.  Order-*independent* per-object
folds can do better — skip the parent bottleneck entirely and fold
inside the workers — which is what :mod:`repro.runtime.shard.engine`
provides; consumers dispatch on :attr:`ShardedTraceSource.shard_jobs`
to pick that path up.

Memory stays bounded: at most ``jobs + 1`` chunks are in flight (one
decoded in the parent, the rest as pending futures), so the streamed
replay's O(live objects + one chunk) model degrades only to O(live
objects + jobs chunks) — the sharded CI smoke test runs under the same
self-calibrated RLIMIT_AS cap as the serial stream.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.obs.spans import TRACER
from repro.runtime import tracefile
from repro.runtime.stream.protocol import Event
from repro.runtime.stream.v3 import TraceFileSource, read_chunk_events

__all__ = ["ShardedTraceSource"]


def _decode_chunk_job(
    path: "tracefile.PathLike",
    offset: int,
    count: int,
    data_end: int,
    trace_spans: bool = False,
) -> Tuple[List[Event], Optional[List[Dict[str, Any]]]]:
    """Decode one chunk in a pool worker, optionally under a span.

    Returns the decoded events plus the worker's span snapshot (None
    when tracing is off) for the parent tracer to absorb — mirroring
    the Metrics-snapshot merge that keeps worker timings visible.
    """
    if not trace_spans:
        return read_chunk_events(path, offset, count, data_end), None
    TRACER.enable()
    mark = len(TRACER.spans)
    with TRACER.span("shard.decode", cat="shard",
                     offset=offset, events=count):
        events = read_chunk_events(path, offset, count, data_end)
    return events, TRACER.state(mark)


class ShardedTraceSource(TraceFileSource):
    """A v3 file source that decodes chunks in worker processes.

    ``jobs`` is the worker count; ``jobs=1`` (or a single-chunk file)
    falls back to the serial reader, so wrapping is always safe.  Each
    :meth:`events` call owns its pool, so one source still supports the
    repeated replays Table 8 performs.  Construction additionally
    cross-checks the chunk index's event totals against the footer —
    the sharded paths trust the index, the serial reader does not need
    to.
    """

    def __init__(self, path: "tracefile.PathLike", jobs: int = 2):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        super().__init__(path)
        declared = sum(count for _, count in self.chunk_index)
        if declared != self.summary.event_count:
            raise tracefile.TraceFormatError(
                f"{self.path}: chunk index declares {declared} events, "
                f"footer declares {self.summary.event_count}"
            )
        self.jobs = jobs

    @property
    def shard_jobs(self) -> int:
        """Worker count; shardable fold consumers dispatch on this."""
        return self.jobs

    def events(self) -> Iterator[Event]:
        if self.jobs <= 1 or len(self.chunk_index) <= 1:
            yield from super().events()
            return
        chunks = self.chunk_index
        window = self.jobs + 1
        yielded = 0
        trace_spans = TRACER.enabled
        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            pending = deque()
            index = 0
            while index < len(chunks) or pending:
                while index < len(chunks) and len(pending) < window:
                    offset, count = chunks[index]
                    pending.append((index, pool.submit(
                        _decode_chunk_job,
                        self.path, offset, count, self.data_end,
                        trace_spans,
                    )))
                    index += 1
                chunk_no, future = pending.popleft()
                decoded, span_state = future.result()
                if span_state:
                    TRACER.absorb(span_state, tid=2 + (chunk_no % self.jobs))
                yielded += len(decoded)
                yield from decoded
        if yielded != self.summary.event_count:
            raise tracefile.TraceFormatError(
                f"{self.path}: sharded decode produced {yielded} events, "
                f"footer declares {self.summary.event_count}"
            )
