"""Order-independent lifetime folds for the sharded replay engine.

A :class:`LifetimeFold` consumes the same ``(chain_id, size, lifetime,
touches)`` tuples :func:`~repro.runtime.stream.protocol.
iter_object_lifetimes` yields, under two contracts that make it safe to
run in parallel shards:

* ``add`` must be order-independent — folding the same multiset of
  objects in any order gives the same state; and
* ``merge`` must be commutative and associative — merging per-shard
  folds equals folding everything in one place.

Instances cross the process boundary twice (empty to the worker, full
back to the parent), so they must be picklable; everything they carry —
chain tables, predictor databases, plain dicts and sets — is.

The engine delivers each object through :meth:`LifetimeFold.add_object`
with its full ``(obj_id, chain_id, size, birth, death, touches)`` record;
the default implementation collapses that to the classic ``add`` tuple,
so lifetime-only folds are unchanged while position-aware folds (the
windowed time series of :mod:`repro.obs.windows`) override ``add_object``
and key on the byte-time positions directly — all three values are
intrinsic to the object, so order-independence is preserved.

The concrete folds mirror the pipeline's per-object accumulations:
:class:`EvaluateFold` is :func:`repro.core.predictor.evaluate`'s body
(integer sums plus key-set unions); :class:`SiteSelectFold` keeps only
each site's maximum lifetime, which is all the paper's all-short-lived
selection rule reads; :class:`SizeOnlyFold` AND-folds per-size
shortness; :class:`ShortBytesFold` is the oracle byte sum.  The
order-*dependent* accumulations (P^2 quantiles, live-byte high-water
marks, allocator state) are deliberately absent — those replay through
the ordered :class:`~repro.runtime.shard.source.ShardedTraceSource`
instead.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Set

from repro.core.predictor import (
    LifetimePredictor,
    PredictionEvaluation,
    SitePredictor,
    StaticEscapePredictor,
)
from repro.core.sites import ChainTable, site_key
from repro.runtime.stream.protocol import StreamHeader, StreamSummary

__all__ = [
    "LifetimeFold",
    "EvaluateFold",
    "SiteSelectFold",
    "SizeOnlyFold",
    "ShortBytesFold",
]


class LifetimeFold:
    """Contract for per-object folds the shard engine parallelizes."""

    def add(
        self, chain_id: int, size: int, lifetime: int, touches: int
    ) -> None:
        """Fold one object (order-independent by contract)."""
        raise NotImplementedError

    def add_object(
        self,
        obj_id: int,
        chain_id: int,
        size: int,
        birth: int,
        death: int,
        touches: int,
    ) -> None:
        """Fold one object with its absolute position in the run.

        The engine always calls this richer form; the default collapses
        it to :meth:`add`, so folds that only need the lifetime stay
        one-method.  Position-aware folds (windowed time series) override
        it instead — ``obj_id`` is the dense allocation index, ``birth``
        and ``death`` are byte-times, and all three are intrinsic to the
        object, so overriding keeps ``add_object`` order-independent.
        """
        self.add(chain_id, size, death - birth, touches)

    def merge(self, other: "LifetimeFold") -> None:
        """Fold another shard's state into this one (commutative)."""
        raise NotImplementedError


class EvaluateFold(LifetimeFold):
    """The accumulators of :func:`repro.core.predictor.evaluate`.

    Integer sums plus matched/test key-set unions — exactly the state
    the serial ``_evaluate`` loop keeps, so :meth:`result` rebuilds an
    identical :class:`~repro.core.predictor.PredictionEvaluation`.
    """

    def __init__(self, predictor: LifetimePredictor, chains: ChainTable):
        self.predictor = predictor
        self.chains = chains
        self.total_bytes = 0
        self.actual_short = 0
        self.predicted_short = 0
        self.error_bytes = 0
        self.predicted_objects = 0
        self.predicted_refs = 0
        self.matched_keys: Set = set()
        self.test_keys: Set = set()
        self._site_based = isinstance(predictor, SitePredictor)
        self._static = isinstance(predictor, StaticEscapePredictor)

    def add(
        self, chain_id: int, size: int, lifetime: int, touches: int
    ) -> None:
        predictor = self.predictor
        chain = self.chains.chain(chain_id)
        self.total_bytes += size
        short = lifetime < predictor.threshold
        if short:
            self.actual_short += size
        if self._site_based:
            key = predictor.key_for(chain, size)  # type: ignore[attr-defined]
            self.test_keys.add(key)
            hit = key in predictor.sites  # type: ignore[attr-defined]
            if hit:
                self.matched_keys.add(key)
        elif self._static:
            self.test_keys.add(
                predictor.key_for(chain, size)  # type: ignore[attr-defined]
            )
            hit = predictor.predicts_short_lived(chain, size)
            if hit:
                self.matched_keys.update(
                    predictor.matching_keys(chain, size)  # type: ignore[attr-defined]
                )
        else:
            self.test_keys.add(size)
            hit = predictor.predicts_short_lived(chain, size)
            if hit:
                self.matched_keys.add(size)
        if hit:
            self.predicted_objects += 1
            self.predicted_refs += touches
            if short:
                self.predicted_short += size
            else:
                self.error_bytes += size

    def merge(self, other: "EvaluateFold") -> None:
        self.total_bytes += other.total_bytes
        self.actual_short += other.actual_short
        self.predicted_short += other.predicted_short
        self.error_bytes += other.error_bytes
        self.predicted_objects += other.predicted_objects
        self.predicted_refs += other.predicted_refs
        self.matched_keys |= other.matched_keys
        self.test_keys |= other.test_keys

    def result(
        self,
        header: StreamHeader,
        summary: StreamSummary,
        count_matched_sites: bool = True,
    ) -> PredictionEvaluation:
        """The finished evaluation (identical to the serial pass's)."""
        sites_used = (
            len(self.matched_keys) if count_matched_sites
            else self.predictor.site_count
        )
        return PredictionEvaluation(
            program=header.program,
            dataset=header.dataset,
            threshold=self.predictor.threshold,
            total_sites=len(self.test_keys),
            sites_used=sites_used,
            total_bytes=self.total_bytes,
            actual_short_bytes=self.actual_short,
            predicted_short_bytes=self.predicted_short,
            error_bytes=self.error_bytes,
            predicted_objects=self.predicted_objects,
            total_heap_refs=summary.heap_refs,
            predicted_heap_refs=self.predicted_refs,
        )


class SiteSelectFold(LifetimeFold):
    """Per-site maximum lifetime at one abstraction level.

    The all-short-lived rule reads nothing else ("all objects lived
    less than 32 kilobytes" is ``max_lifetime < threshold``), and max
    is a commutative fold — so the sharded site predictor selects
    exactly the serial trainer's frozenset, which is why the saved
    databases stay byte-identical (the writer sorts its site list).
    """

    def __init__(
        self,
        chains: ChainTable,
        chain_length: Optional[int],
        size_rounding: int,
    ):
        self.chains = chains
        self.chain_length = chain_length
        self.size_rounding = size_rounding
        self.max_lifetime: Dict = {}

    def add(
        self, chain_id: int, size: int, lifetime: int, touches: int
    ) -> None:
        key = site_key(
            self.chains.chain(chain_id), size,
            length=self.chain_length, size_rounding=self.size_rounding,
        )
        current = self.max_lifetime.get(key)
        if current is None or lifetime > current:
            self.max_lifetime[key] = lifetime

    def merge(self, other: "SiteSelectFold") -> None:
        mine = self.max_lifetime
        for key, lifetime in other.max_lifetime.items():
            current = mine.get(key)
            if current is None or lifetime > current:
                mine[key] = lifetime

    def short_lived_sites(self, threshold: int) -> FrozenSet:
        """Site keys whose every object died under ``threshold``."""
        return frozenset(
            key for key, lifetime in self.max_lifetime.items()
            if lifetime < threshold
        )


class SizeOnlyFold(LifetimeFold):
    """Per-size all-short-lived AND fold (the Table 5 ablation)."""

    def __init__(self, threshold: int):
        self.threshold = threshold
        self.per_size: Dict[int, bool] = {}

    def add(
        self, chain_id: int, size: int, lifetime: int, touches: int
    ) -> None:
        short = lifetime < self.threshold
        self.per_size[size] = self.per_size.get(size, True) and short

    def merge(self, other: "SizeOnlyFold") -> None:
        mine = self.per_size
        for size, short in other.per_size.items():
            mine[size] = mine.get(size, True) and short

    def short_lived_sizes(self) -> FrozenSet[int]:
        """Sizes whose every object died under the threshold."""
        return frozenset(
            size for size, short in self.per_size.items() if short
        )


class ShortBytesFold(LifetimeFold):
    """Oracle sum: bytes of objects that truly died under threshold."""

    def __init__(self, threshold: int):
        self.threshold = threshold
        self.total = 0

    def add(
        self, chain_id: int, size: int, lifetime: int, touches: int
    ) -> None:
        if lifetime < self.threshold:
            self.total += size

    def merge(self, other: "ShortBytesFold") -> None:
        self.total += other.total
