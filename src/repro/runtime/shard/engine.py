"""Map/reduce over shards with a live-object handoff frontier.

The map side (:func:`_shard_worker`) replays one shard's chunks and
folds every object whose alloc *and* free both fall inside the shard.
Objects that cross the boundary come back raw: ``opens`` (allocated
here, not freed here) and ``closes`` (freed here, allocated earlier).

The reduce side walks shards in trace order carrying the *frontier* —
the live-object map at each shard boundary, exactly the dict the serial
:func:`~repro.runtime.stream.protocol.iter_object_lifetimes` pass would
hold at that point in the stream.  Each shard's closes resolve against
the frontier (allocated in shard i, freed in shard j > i), then its
opens join it.  Whatever survives the last shard is the never-freed
set, folded with the trace convention (death at ``summary.end_time``,
touches from ``summary.unfreed_touches``) in object-id order — the same
tail the serial iterator emits.

Determinism is structural: every object is folded exactly once with the
same ``(obj_id, chain_id, size, birth, death, touches)`` record the
serial :func:`~repro.runtime.stream.protocol.iter_object_records` pass
computes, and :class:`~repro.runtime.shard.folds.LifetimeFold`
add_object/merge are order-independent by contract — so the merged fold
state equals the serial fold state, not just approximately but field for
field.  Lifetime-only folds see ``death - birth`` through the default
``add_object`` -> ``add`` collapse; position-aware folds (windowed time
series) read the absolute byte-times directly.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.spans import TRACER
from repro.runtime import tracefile
from repro.runtime.stream.protocol import (
    EV_ALLOC,
    EV_FREE,
    EventSource,
    iter_object_records,
)
from repro.runtime.stream.v3 import TraceFileSource, read_chunk_events
from repro.runtime.shard.folds import LifetimeFold
from repro.runtime.shard.plan import Shard, plan_shards

__all__ = ["fold_object_lifetimes"]

#: opens: obj_id -> (chain_id, size, birth); closes: obj_id -> (death, touches)
_Opens = Dict[int, Tuple[int, int, int]]
_Closes = Dict[int, Tuple[int, int]]


def _shard_worker(
    path: str,
    data_end: int,
    shard: Shard,
    fold: LifetimeFold,
    trace_spans: bool = False,
) -> Tuple[LifetimeFold, _Opens, _Closes, Optional[List[Dict[str, Any]]]]:
    """Replay one shard; fold in-shard objects, report boundary crossers.

    With ``trace_spans`` the worker records its own ``shard.fold`` span
    and ships the snapshot back for the parent tracer to absorb — pool
    processes are reused, so only spans recorded past the entry mark
    belong to this task.
    """
    mark = 0
    if trace_spans:
        TRACER.enable()
        mark = len(TRACER.spans)
    live: _Opens = {}
    closes: _Closes = {}
    add_object = fold.add_object
    with TRACER.span("shard.fold", cat="shard",
                     shard=shard.index, chunks=len(shard.chunks)):
        for offset, count in shard.chunks:
            for ev in read_chunk_events(path, offset, count, data_end):
                tag = ev[0]
                if tag == EV_ALLOC:
                    live[ev[1]] = (ev[2], ev[3], ev[4])
                elif tag == EV_FREE:
                    entry = live.pop(ev[1], None)
                    if entry is None:
                        closes[ev[1]] = (ev[2], ev[3])
                    else:
                        chain_id, size, birth = entry
                        add_object(
                            ev[1], chain_id, size, birth, ev[2], ev[3]
                        )
    span_state = TRACER.state(mark) if trace_spans else None
    return fold, live, closes, span_state


def fold_object_lifetimes(
    source: EventSource,
    fold_factory: Callable[[], LifetimeFold],
    jobs: Optional[int] = None,
) -> LifetimeFold:
    """Fold every object lifetime of ``source``, sharded when possible.

    ``jobs`` defaults to the source's :attr:`shard_jobs` (1 for plain
    sources), and anything that cannot shard — an in-memory source, one
    worker, a single-chunk file — falls back to the serial
    :func:`iter_object_lifetimes` pass, so this is always safe to call.
    ``fold_factory`` builds one fresh fold per shard (plus the parent's
    accumulator); it runs in the parent, and its folds travel to the
    workers by pickling.
    """
    if jobs is None:
        jobs = getattr(source, "shard_jobs", 1)
    fold = fold_factory()
    chunk_index = getattr(source, "chunk_index", None)
    if (
        jobs <= 1
        or not isinstance(source, TraceFileSource)
        or chunk_index is None
        or len(chunk_index) <= 1
    ):
        add_object = fold.add_object
        for record in iter_object_records(source):
            add_object(*record)
        return fold

    summary = source.summary
    shards = plan_shards(chunk_index, jobs, event_count=summary.event_count)
    path = source.path
    data_end = source.data_end
    frontier: _Opens = {}
    trace_spans = TRACER.enabled
    with ProcessPoolExecutor(max_workers=min(jobs, len(shards))) as pool:
        futures = [
            pool.submit(_shard_worker, path, data_end, shard,
                        fold_factory(), trace_spans)
            for shard in shards
        ]
        for index, future in enumerate(futures):
            shard_fold, opens, closes, span_state = future.result()
            if span_state:
                TRACER.absorb(span_state, tid=2 + (index % jobs))
            for obj_id, (death, touches) in closes.items():
                entry = frontier.pop(obj_id, None)
                if entry is None:
                    raise tracefile.TraceFormatError(
                        f"{path}: free of object {obj_id} with no "
                        f"allocation in any earlier shard"
                    )
                chain_id, size, birth = entry
                fold.add_object(obj_id, chain_id, size, birth, death, touches)
            frontier.update(opens)
            fold.merge(shard_fold)
    end_time = summary.end_time
    unfreed_touches = dict(summary.unfreed_touches)
    for obj_id in sorted(frontier):
        chain_id, size, birth = frontier[obj_id]
        fold.add_object(
            obj_id, chain_id, size, birth, end_time,
            unfreed_touches.get(obj_id, 0),
        )
    return fold
