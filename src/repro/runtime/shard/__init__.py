"""Sharded parallel replay over the v3 footer chunk index.

Two complementary engines, both gated by byte-identity against the
serial streamed path (see DESIGN.md §11):

* :class:`ShardedTraceSource` — *ordered* chunk-parallel decode.  The
  expensive per-chunk work (gzip + JSON + validation) runs in a process
  pool while the parent yields chunks strictly in index order, so every
  consumer — including history-dependent ones like the Table 7-9
  allocator replays and the P^2 quantile trainers — sees the exact
  serial event sequence and produces byte-identical output by
  construction.

* :func:`fold_object_lifetimes` — true map/reduce for the
  order-independent per-object folds (predictor training, evaluation,
  the short-bytes oracle).  Shards replay concurrently and a
  deterministic reducer resolves cross-shard lifetimes (allocated in
  shard i, freed in shard j) through a live-object handoff frontier
  walked in trace order.

:func:`plan_shards` partitions the chunk index into balanced contiguous
shards; the :mod:`~repro.runtime.shard.folds` module defines the fold
contract and the concrete folds.
"""

from repro.runtime.shard.engine import fold_object_lifetimes
from repro.runtime.shard.folds import (
    EvaluateFold,
    LifetimeFold,
    ShortBytesFold,
    SiteSelectFold,
    SizeOnlyFold,
)
from repro.runtime.shard.plan import Shard, plan_shards
from repro.runtime.shard.source import ShardedTraceSource

__all__ = [
    "EvaluateFold",
    "LifetimeFold",
    "Shard",
    "ShardedTraceSource",
    "ShortBytesFold",
    "SiteSelectFold",
    "SizeOnlyFold",
    "fold_object_lifetimes",
    "plan_shards",
]
