"""Shard planning over the v3 footer chunk index.

A shard is a *contiguous* run of E-frame chunks — contiguity is what
makes the reduction deterministic: walking shards in index order is
walking the trace in program order, so the live-object handoff frontier
in :mod:`repro.runtime.shard.engine` sees every allocation before the
shard that frees it.

:func:`plan_shards` balances shards by event count (chunks are all the
same nominal size except the last, but a plan must not care), is a pure
function of the index and the job count, and validates the index's
declared totals against the footer's event count so a damaged file
fails loudly before any worker starts.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from repro.runtime import tracefile

__all__ = ["Shard", "plan_shards"]


@dataclass(frozen=True)
class Shard:
    """One worker's contiguous slice of a trace's chunk index.

    ``chunks`` holds ``(offset, event_count)`` entries exactly as the
    footer records them; ``index`` is the shard's position in trace
    order (the reducer folds shards in this order).
    """

    index: int
    chunks: Tuple[Tuple[int, int], ...]

    @property
    def event_count(self) -> int:
        """Events this shard decodes."""
        return sum(count for _, count in self.chunks)


def plan_shards(
    chunk_index: Iterable[Tuple[int, int]],
    jobs: int,
    event_count: Optional[int] = None,
) -> Tuple[Shard, ...]:
    """Partition ``chunk_index`` into at most ``jobs`` balanced shards.

    Boundaries fall where the cumulative event count crosses ``k/jobs``
    of the total (integer arithmetic only, so the plan is deterministic
    for a given index), constrained so every shard gets at least one
    chunk.  Passing the footer's ``event_count`` cross-checks the
    index's declared totals; a mismatch raises
    :class:`~repro.runtime.tracefile.TraceFormatError`.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    chunks = tuple((int(off), int(count)) for off, count in chunk_index)
    total = sum(count for _, count in chunks)
    if event_count is not None and total != event_count:
        raise tracefile.TraceFormatError(
            f"chunk index declares {total} events, footer declares "
            f"{event_count}"
        )
    if not chunks:
        return ()
    bound = min(jobs, len(chunks))
    cumulative = []
    running = 0
    for _, count in chunks:
        running += count
        cumulative.append(running)
    boundaries = [0]
    for k in range(1, bound):
        target = (total * k + bound - 1) // bound
        split = bisect_left(cumulative, target) + 1
        # Keep every shard non-empty: at least one chunk behind this
        # boundary, and enough chunks left for the shards after it.
        split = max(boundaries[-1] + 1, min(split, len(chunks) - (bound - k)))
        boundaries.append(split)
    boundaries.append(len(chunks))
    return tuple(
        Shard(index=i, chunks=chunks[boundaries[i]:boundaries[i + 1]])
        for i in range(bound)
    )
