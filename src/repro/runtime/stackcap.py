"""Capturing call chains from the live Python stack.

The built-in workloads maintain their call chains explicitly (the
:func:`~repro.runtime.heap.traced` decorator), which is fast and
deterministic.  For *user* programs that just want to profile their own
allocation behaviour without threading a heap through every function,
this module captures the chain the way the paper's AE instrumentation
did — from the actual runtime stack:

* :func:`capture_chain` walks the interpreter frames below the caller and
  returns the function-name chain, outermost first;
* :class:`StackTracedHeap` is a :class:`~repro.runtime.heap.TracedHeap`
  whose ``malloc`` captures the live Python chain automatically, so
  ordinary undecorated functions produce correctly-attributed sites.

The cost is a frame walk per allocation (micro-, not nano-seconds);
prefer the explicit runtime for the bundled workloads and benchmarks.
"""

from __future__ import annotations

import sys
from typing import Any, Optional

from repro.runtime.heap import HeapObject, TracedHeap

__all__ = ["capture_chain", "StackTracedHeap", "CAPTURE_DEPTH"]

#: Canonical chain-capture depth: the maximum number of frames any chain
#: capture walks, and therefore the deepest call chain a recorded site can
#: carry.  This is *the* depth constant for the whole reproduction — the
#: static analyzer (:mod:`repro.static`) bounds its feasible-chain
#: enumeration with it, and alloclint's R004 uses it to flag allocation
#: wrappers whose captured chains would be truncated.  Import it instead
#: of copying the number.
CAPTURE_DEPTH = 64

#: Frames whose function names start with these prefixes are tracing
#: machinery, not program structure, and are skipped.
_MACHINERY = ("capture_chain", "malloc")


def capture_chain(
    skip: int = 0,
    stop_at: Optional[str] = None,
    limit: int = CAPTURE_DEPTH,
) -> tuple:
    """The current Python call chain, outermost function first.

    ``skip`` drops that many innermost frames beyond this function itself;
    ``stop_at`` truncates the chain at (and including) the first frame
    with that function name, walking outward — use it to cut test harness
    or REPL frames; ``limit`` bounds the walk.
    """
    frame = sys._getframe(1 + skip)
    names = []
    depth = 0
    while frame is not None and depth < limit:
        name = frame.f_code.co_name
        if name == stop_at:
            names.append(name)
            break
        names.append(name)
        frame = frame.f_back
        depth += 1
    names.reverse()
    return tuple(names)


class StackTracedHeap(TracedHeap):
    """A traced heap that reads call chains off the live Python stack.

    ``malloc`` attributes each allocation to the real function chain of
    its caller, with no decorators required::

        heap = StackTracedHeap("myprog", root="main")

        def make_node():
            return heap.malloc(48)       # chain ends ... > make_node

    ``root`` names the outermost chain entry; frames outside ``stop_at``
    (default: the function that created the heap) are replaced by it, so
    harness frames never pollute sites.
    """

    def __init__(
        self,
        program: str,
        dataset: str = "default",
        root: str = "main",
        stop_at: Optional[str] = None,
        **kwargs: Any,
    ):
        super().__init__(program, dataset=dataset, root=root, **kwargs)
        self._stop_at = (
            stop_at if stop_at is not None
            else sys._getframe(1).f_code.co_name
        )
        self._root_name = root

    def malloc(self, size: int, payload: Any = None) -> HeapObject:
        """Allocate with the chain captured from the interpreter stack.

        Note: because no frames are pushed explicitly, the trace's
        ``total_calls`` counts only what the program reports through
        :meth:`~repro.runtime.heap.TracedHeap.frame` — usually nothing —
        so the CCE cost amortization of Table 9 does not apply to
        stack-captured traces.
        """
        chain = capture_chain(skip=1, stop_at=self._stop_at)
        # Replace everything at or above the stop frame with the root.
        if chain and chain[0] == self._stop_at:
            chain = chain[1:]
        self._stack = [self._root_name, *chain]
        try:
            return super().malloc(size, payload=payload)
        finally:
            self._stack = [self._root_name]
