"""Trace serialization.

Traces are written as (optionally gzipped) JSON with a small header, the
interned chain table, the per-object parallel arrays, and the event
sequence.  JSON keeps the format debuggable with standard tools; gzip keeps
multi-hundred-thousand-event traces to a few megabytes.  The format is
versioned so stored training traces survive library upgrades.
"""

from __future__ import annotations

import gzip
import json
import os
import tempfile
import zlib
from array import array
from typing import Union

from repro.core.sites import ChainTable
from repro.runtime.events import Trace

__all__ = ["save_trace", "load_trace", "TraceFormatError", "FORMAT_VERSION"]

FORMAT_VERSION = 2

PathLike = Union[str, "os.PathLike[str]"]


class TraceFormatError(Exception):
    """Raised when a trace file is malformed or from an unknown version."""


def save_trace(trace: Trace, path: PathLike) -> None:
    """Write ``trace`` to ``path``; gzip-compress if the name ends ``.gz``."""
    arrays = trace.raw_arrays()
    doc = {
        "format": "repro-trace",
        "version": FORMAT_VERSION,
        "program": trace.program,
        "dataset": trace.dataset,
        "total_calls": trace.total_calls,
        "heap_refs": trace.heap_refs,
        "non_heap_refs": trace.non_heap_refs,
        "chains": [list(chain) for chain in trace.chains.to_list()],
        "chain_ids": arrays["chain_ids"].tolist(),
        "sizes": arrays["sizes"].tolist(),
        "births": arrays["births"].tolist(),
        "deaths": arrays["deaths"].tolist(),
        "touches": arrays["touches"].tolist(),
        "events": arrays["events"].tolist(),
        "touch_counts": arrays["touch_counts"].tolist(),
    }
    data = json.dumps(doc, separators=(",", ":")).encode("utf-8")
    name = os.fspath(path)
    # Write-then-rename: an interrupted write must never leave a truncated
    # file under the final name (the persistent trace cache relies on
    # every published entry being complete).  The temp file lives in the
    # destination directory so os.replace stays on one filesystem.
    directory = os.path.dirname(name) or "."
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(name) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            if name.endswith(".gz"):
                # mtime=0 keeps the bytes deterministic for a given trace.
                with gzip.GzipFile(fileobj=fh, mode="wb", mtime=0) as gz:
                    gz.write(data)
            else:
                fh.write(data)
        os.replace(tmp, name)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def load_trace(path: PathLike) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    if str(path).endswith(".gz"):
        with gzip.open(path, "rb") as fh:
            try:
                data = fh.read()
            except (EOFError, zlib.error, gzip.BadGzipFile) as exc:
                raise TraceFormatError(
                    f"{path}: truncated or corrupt gzip data: {exc}"
                ) from exc
    else:
        with open(path, "rb") as fh:
            data = fh.read()
    try:
        doc = json.loads(data)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("format") != "repro-trace":
        raise TraceFormatError(f"{path}: not a repro trace file")
    if doc.get("version") != FORMAT_VERSION:
        raise TraceFormatError(
            f"{path}: unsupported trace version {doc.get('version')!r} "
            f"(this library reads version {FORMAT_VERSION})"
        )
    try:
        chains = ChainTable.from_list(
            [tuple(chain) for chain in doc["chains"]]
        )
        return Trace(
            program=doc["program"],
            dataset=doc["dataset"],
            chains=chains,
            chain_ids=array("i", doc["chain_ids"]),
            sizes=array("q", doc["sizes"]),
            births=array("q", doc["births"]),
            deaths=array("q", doc["deaths"]),
            touches=array("q", doc["touches"]),
            events=array("q", doc["events"]),
            touch_counts=array("q", doc.get("touch_counts", [])),
            total_calls=doc["total_calls"],
            heap_refs=doc["heap_refs"],
            non_heap_refs=doc["non_heap_refs"],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceFormatError(f"{path}: malformed trace file: {exc}") from exc
