"""Trace serialization.

Two on-disk formats share this entry point:

* **v2** — one (optionally gzipped) JSON document holding the chain
  table, the per-object parallel arrays, and the event sequence.  JSON
  keeps the format debuggable with standard tools; loading materializes
  the whole :class:`~repro.runtime.events.Trace`.
* **v3** — the streaming format of :mod:`repro.runtime.stream.v3`:
  chunked, length-prefixed gzip frames with a footer index, replayable
  via :func:`open_trace_stream` in O(live objects + one chunk) memory.

:func:`save_trace` picks the format from the file name (``.rtr3`` means
v3, anything else writes the v2 document unchanged — existing call
sites keep producing byte-identical files); :func:`load_trace` sniffs
the leading magic so either format materializes, and
:func:`convert_trace` rewrites one format as the other.  Both formats
are versioned so stored training traces survive library upgrades, and
both publish atomically through :func:`atomic_output`.
"""

from __future__ import annotations

import gzip
import json
import os
import tempfile
import zlib
from array import array
from contextlib import contextmanager
from typing import BinaryIO, Iterator, Union

from repro.core.sites import ChainTable
from repro.runtime.events import Trace

__all__ = [
    "save_trace",
    "load_trace",
    "open_trace_stream",
    "convert_trace",
    "atomic_output",
    "TraceFormatError",
    "FORMAT_VERSION",
    "V2_FORMAT_VERSION",
    "V3_MAGIC",
]

#: Current trace format generation (what the cache keys embed).
FORMAT_VERSION = 3
#: The materialized single-document JSON format, still read and written.
V2_FORMAT_VERSION = 2

#: Leading magic of a v3 streaming trace file.
V3_MAGIC = b"RPRTRC3\n"

PathLike = Union[str, "os.PathLike[str]"]


class TraceFormatError(Exception):
    """Raised when a trace file is malformed or from an unknown version."""


@contextmanager
def atomic_output(path: PathLike) -> Iterator[BinaryIO]:
    """Open ``path`` for writing via a temp file published by ``os.replace``.

    Write-then-rename: an interrupted write must never leave a truncated
    file under the final name (the persistent trace cache relies on
    every published entry being complete).  The temp file lives in the
    destination directory so ``os.replace`` stays on one filesystem.
    Both the v2 and v3 writers go through here.
    """
    name = os.fspath(path)
    directory = os.path.dirname(name) or "."
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(name) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            yield fh
        os.replace(tmp, name)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def save_trace(trace: Trace, path: PathLike, version: int = None) -> None:
    """Write ``trace`` to ``path``.

    ``version`` defaults by file name — ``.rtr3`` writes the v3
    streaming format, everything else the v2 JSON document
    (gzip-compressed when the name ends ``.gz``).
    """
    name = os.fspath(path)
    if version is None:
        version = FORMAT_VERSION if name.endswith(".rtr3") else V2_FORMAT_VERSION
    if version == FORMAT_VERSION:
        from repro.runtime.stream.protocol import TraceEventSource
        from repro.runtime.stream.v3 import write_trace_v3

        write_trace_v3(TraceEventSource(trace), name)
        return
    if version != V2_FORMAT_VERSION:
        raise ValueError(f"unknown trace format version {version!r}")
    arrays = trace.raw_arrays()
    doc = {
        "format": "repro-trace",
        "version": V2_FORMAT_VERSION,
        "program": trace.program,
        "dataset": trace.dataset,
        "total_calls": trace.total_calls,
        "heap_refs": trace.heap_refs,
        "non_heap_refs": trace.non_heap_refs,
        "chains": [list(chain) for chain in trace.chains.to_list()],
        "chain_ids": arrays["chain_ids"].tolist(),
        "sizes": arrays["sizes"].tolist(),
        "births": arrays["births"].tolist(),
        "deaths": arrays["deaths"].tolist(),
        "touches": arrays["touches"].tolist(),
        "events": arrays["events"].tolist(),
        "touch_counts": arrays["touch_counts"].tolist(),
    }
    data = json.dumps(doc, separators=(",", ":")).encode("utf-8")
    with atomic_output(name) as fh:
        if name.endswith(".gz"):
            # mtime=0 keeps the bytes deterministic for a given trace.
            with gzip.GzipFile(fileobj=fh, mode="wb", mtime=0) as gz:
                gz.write(data)
        else:
            fh.write(data)


def _sniff_v3(path: PathLike) -> bool:
    """Whether ``path`` starts with the v3 magic (missing file raises)."""
    with open(path, "rb") as fh:
        return fh.read(len(V3_MAGIC)) == V3_MAGIC


def load_trace(path: PathLike) -> Trace:
    """Read a trace previously written by :func:`save_trace` (v2 or v3).

    A v3 file is materialized through its event stream; prefer
    :func:`open_trace_stream` when the consumer can take an
    :class:`~repro.runtime.stream.protocol.EventSource` instead.
    """
    if _sniff_v3(path):
        from repro.runtime.stream.protocol import build_trace
        from repro.runtime.stream.v3 import TraceFileSource

        return build_trace(TraceFileSource(path))
    if str(path).endswith(".gz"):
        with gzip.open(path, "rb") as fh:
            try:
                data = fh.read()
            except (EOFError, zlib.error, gzip.BadGzipFile) as exc:
                raise TraceFormatError(
                    f"{path}: truncated or corrupt gzip data: {exc}"
                ) from exc
    else:
        with open(path, "rb") as fh:
            data = fh.read()
    try:
        doc = json.loads(data)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("format") != "repro-trace":
        raise TraceFormatError(f"{path}: not a repro trace file")
    if doc.get("version") != V2_FORMAT_VERSION:
        raise TraceFormatError(
            f"{path}: unsupported trace version {doc.get('version')!r} "
            f"(this library reads versions {V2_FORMAT_VERSION} "
            f"and {FORMAT_VERSION})"
        )
    try:
        chains = ChainTable.from_list(
            [tuple(chain) for chain in doc["chains"]]
        )
        return Trace(
            program=doc["program"],
            dataset=doc["dataset"],
            chains=chains,
            chain_ids=array("i", doc["chain_ids"]),
            sizes=array("q", doc["sizes"]),
            births=array("q", doc["births"]),
            deaths=array("q", doc["deaths"]),
            touches=array("q", doc["touches"]),
            events=array("q", doc["events"]),
            touch_counts=array("q", doc.get("touch_counts", [])),
            total_calls=doc["total_calls"],
            heap_refs=doc["heap_refs"],
            non_heap_refs=doc["non_heap_refs"],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceFormatError(f"{path}: malformed trace file: {exc}") from exc


def open_trace_stream(path: PathLike):
    """An :class:`~repro.runtime.stream.protocol.EventSource` over a file.

    A v3 file streams from disk in O(live objects + one chunk) memory; a
    v2 file has no index to stream from, so it is loaded fully and
    wrapped (documented fallback — run :func:`convert_trace` once to get
    true streaming replays of an old trace).
    """
    from repro.runtime.stream.protocol import TraceEventSource
    from repro.runtime.stream.v3 import TraceFileSource

    if _sniff_v3(path):
        return TraceFileSource(path)
    return TraceEventSource(load_trace(path))


def convert_trace(src: PathLike, dst: PathLike, version: int = None) -> int:
    """Rewrite trace file ``src`` as ``dst``; returns the version written.

    ``version`` defaults by destination name exactly like
    :func:`save_trace`.  Converting v3 -> v3 streams disk-to-disk
    without materializing; converting *from* v2 necessarily loads the
    source document first (that is the format being escaped).
    """
    name = os.fspath(dst)
    if version is None:
        version = FORMAT_VERSION if name.endswith(".rtr3") else V2_FORMAT_VERSION
    source = open_trace_stream(src)
    if version == FORMAT_VERSION:
        from repro.runtime.stream.v3 import write_trace_v3

        write_trace_v3(source, name)
    elif version == V2_FORMAT_VERSION:
        from repro.runtime.stream.protocol import build_trace

        save_trace(build_trace(source), name, version=V2_FORMAT_VERSION)
    else:
        raise ValueError(f"unknown trace format version {version!r}")
    return version
