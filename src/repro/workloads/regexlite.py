"""Regex-lite: the shared pattern matcher of the interpreter workloads.

Backs mini-Perl's ``m/../`` and ``split`` and mini-AWK's ``~`` operator
and ``/pattern/`` rules.

Supports the subset a perl4-era report-extraction script leans on:
literal characters, ``.``, character classes ``[a-z0-9]`` (with ranges and
``^`` negation), the escapes ``\\d``, ``\\w``, ``\\s``, anchors ``^``/``$``,
and the postfix quantifiers ``*``, ``+``, ``?`` on single atoms.  Matching
is a classic backtracking walk (Thompson would disapprove; Perl 4 would
not).

Compiled patterns are traced allocations — one node per atom, compiled
once per script and long-lived, like Perl's compiled regexps.  Each
``match`` call allocates one short-lived match-state record, modelling the
per-match scratch the original interpreter mallocs.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.runtime.heap import HeapObject, TracedHeap

__all__ = ["RegexError", "Regex", "compile_pattern", "RX_NODE_SIZE",
           "MATCH_STATE_SIZE"]

#: Modelled size of one compiled pattern node.
RX_NODE_SIZE = 24
#: Modelled size of the per-match scratch state.
MATCH_STATE_SIZE = 32


class RegexError(Exception):
    """Raised on malformed regex-lite patterns."""


class _Atom:
    """One compiled pattern element."""

    __slots__ = ("kind", "data", "repeat", "handle")

    def __init__(self, kind: str, data: object, handle: HeapObject):
        self.kind = kind  # "char" | "any" | "class"
        self.data = data
        self.repeat = ""  # "", "*", "+", "?"
        self.handle = handle


def _expand_class(body: str) -> Tuple[bool, frozenset]:
    """Parse a character-class body into (negated, member set)."""
    negated = body.startswith("^")
    if negated:
        body = body[1:]
    members = set()
    i = 0
    while i < len(body):
        if i + 2 < len(body) and body[i + 1] == "-":
            lo, hi = ord(body[i]), ord(body[i + 2])
            if lo > hi:
                raise RegexError(f"bad range {body[i:i+3]!r}")
            members.update(chr(c) for c in range(lo, hi + 1))
            i += 3
        else:
            members.add(body[i])
            i += 1
    return negated, frozenset(members)


_ESCAPES = {
    "d": (False, frozenset("0123456789")),
    "w": (False, frozenset(
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_"
    )),
    "s": (False, frozenset(" \t\n\r")),
}


class Regex:
    """A compiled regex-lite pattern."""

    def __init__(self, heap: TracedHeap, pattern: str,
                 atoms: List[_Atom], anchored_start: bool, anchored_end: bool):
        self.heap = heap
        self.pattern = pattern
        self.atoms = atoms
        self.anchored_start = anchored_start
        self.anchored_end = anchored_end

    def match(self, text: str, state_alloc: Callable[[int], HeapObject]) -> bool:
        """Whether the pattern occurs in ``text`` (Perl's ``=~`` semantics).

        ``state_alloc`` supplies the traced allocation for the match state
        so the caller's chain owns the allocation site.
        """
        state = state_alloc(MATCH_STATE_SIZE)
        try:
            starts = range(1) if self.anchored_start else range(len(text) + 1)
            for start in starts:
                if self._match_here(text, start, 0):
                    return True
            return False
        finally:
            self.heap.free(state)

    def _match_here(self, text: str, pos: int, atom_index: int) -> bool:
        if atom_index == len(self.atoms):
            return pos == len(text) if self.anchored_end else True
        atom = self.atoms[atom_index]
        self.heap.touch(atom.handle, 1)
        if atom.repeat == "*":
            return self._match_repeat(text, pos, atom_index, minimum=0)
        if atom.repeat == "+":
            return self._match_repeat(text, pos, atom_index, minimum=1)
        if atom.repeat == "?":
            if (
                pos < len(text)
                and self._matches_atom(atom, text[pos])
                and self._match_here(text, pos + 1, atom_index + 1)
            ):
                return True
            return self._match_here(text, pos, atom_index + 1)
        if pos < len(text) and self._matches_atom(atom, text[pos]):
            return self._match_here(text, pos + 1, atom_index + 1)
        return False

    def _match_repeat(self, text: str, pos: int, atom_index: int,
                      minimum: int) -> bool:
        atom = self.atoms[atom_index]
        count = 0
        # Greedy: consume as much as possible, then backtrack.
        while pos + count < len(text) and self._matches_atom(
            atom, text[pos + count]
        ):
            count += 1
        while count >= minimum:
            if self._match_here(text, pos + count, atom_index + 1):
                return True
            count -= 1
        return False

    @staticmethod
    def _matches_atom(atom: _Atom, ch: str) -> bool:
        if atom.kind == "char":
            return ch == atom.data
        if atom.kind == "any":
            return True
        negated, members = atom.data
        return (ch in members) != negated


def compile_pattern(
    heap: TracedHeap,
    pattern: str,
    node_alloc: Callable[[int], HeapObject],
) -> Regex:
    """Compile ``pattern``, allocating one traced node per atom."""
    src = pattern
    anchored_start = src.startswith("^")
    if anchored_start:
        src = src[1:]
    anchored_end = src.endswith("$") and not src.endswith("\\$")
    if anchored_end:
        src = src[:-1]

    atoms: List[_Atom] = []
    i = 0
    while i < len(src):
        ch = src[i]
        handle = node_alloc(RX_NODE_SIZE)
        if ch == "\\":
            i += 1
            if i >= len(src):
                raise RegexError(f"{pattern!r}: trailing backslash")
            escape = src[i]
            if escape in _ESCAPES:
                atom = _Atom("class", _ESCAPES[escape], handle)
            else:
                atom = _Atom("char", escape, handle)
        elif ch == ".":
            atom = _Atom("any", None, handle)
        elif ch == "[":
            end = src.find("]", i + 1)
            if end < 0:
                raise RegexError(f"{pattern!r}: unterminated class")
            atom = _Atom("class", _expand_class(src[i + 1 : end]), handle)
            i = end
        elif ch in "*+?":
            raise RegexError(f"{pattern!r}: quantifier with nothing to repeat")
        else:
            atom = _Atom("char", ch, handle)
        i += 1
        if i < len(src) and src[i] in "*+?":
            atom.repeat = src[i]
            i += 1
        atoms.append(atom)
    return Regex(heap, pattern, atoms, anchored_start, anchored_end)
