"""The five traced workload programs (see :mod:`repro.workloads.base`)."""

from repro.workloads.base import DatasetSpec, Workload, WorkloadError

__all__ = ["DatasetSpec", "Workload", "WorkloadError"]
