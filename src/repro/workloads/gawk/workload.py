"""The gawk workload: paragraph-filling an input dictionary with mini-AWK.

The paper ran GNU AWK 2.11 with "an AWK script to format the words of
several dictionaries into filled paragraphs".  This workload runs the same
kind of script — paragraph filling plus word statistics — through the
traced mini-AWK interpreter.

Its two datasets use the *same script on different dictionaries*, which is
exactly how the paper's GAWK inputs differed ("the two GAWK inputs use the
same gawk program and only differ in what data the gawk program is fed");
true prediction should therefore be nearly as good as self prediction
(99.3% / 99.3% in the paper's Table 4).
"""

from __future__ import annotations

import random

from repro.runtime.heap import TracedHeap, traced
from repro.workloads.base import DatasetSpec, Workload
from repro.workloads.gawk.interp import Interp
from repro.workloads.inputs import word_list

__all__ = ["GawkWorkload", "FILL_SCRIPT", "STATS_SCRIPT"]

#: The AWK program under test: fill words into 60-column paragraphs — the
#: paper's "format the words of several dictionaries into filled
#: paragraphs" job.  All of its values are short-lived by construction:
#: a paragraph's worth of line buffer is the longest-lived temporary.
FILL_SCRIPT = """
BEGIN { line = "" }
{
  for (i = 1; i <= NF; i++) {
    word = $i
    if (length(line) + length(word) + 1 > 60) {
      print line
      line = word
    } else if (line == "") {
      line = word
    } else {
      line = line " " word
    }
  }
}
END { print line }
"""

#: A statistics-flavoured variant exercising associative arrays,
#: increment, and for-in.  Used by the ``stats`` dataset (and the test
#: suite); its count table is deliberately long-lived, so it is *not* a
#: good lifetime-prediction subject — which is itself instructive.
STATS_SCRIPT = """
/^[aeiou]/ { vowellines++ }
{
  for (i = 1; i <= NF; i++) {
    count[$i]++
    total++
    if (length($i) > maxlen) maxlen = length($i)
    if ($i ~ /[0-9]/) numeric++
  }
}
END {
  distinct = 0
  for (w in count) distinct++
  print "words:" total " distinct:" distinct " maxlen:" maxlen \
        " vowel-lines:" vowellines " numeric:" numeric
}
"""


class GawkWorkload(Workload):
    """Run the paragraph-filling script over a generated dictionary."""

    name = "gawk"
    DATASETS = {
        "train": DatasetSpec(
            "train",
            "dictionary A (seed 1001), ~4-word lines",
            relation="same script as test, different dictionary",
        ),
        "test": DatasetSpec(
            "test",
            "dictionary B (seed 2002), ~4-word lines",
            relation="same script as train, different dictionary",
        ),
        "stats": DatasetSpec(
            "stats",
            "word-statistics script over dictionary A",
            relation="different script: long-lived count table",
        ),
        "tiny": DatasetSpec("tiny", "40 lines, for tests"),
    }

    def __init__(self, heap: TracedHeap):
        super().__init__(heap)
        self.interp = Interp(heap)

    def run(self, dataset: str, scale: float = 1.0) -> None:
        self.dataset_spec(dataset)
        if dataset == "tiny":
            self.execute(FILL_SCRIPT, _dictionary_records(lines=40, seed=31))
            return
        if dataset == "stats":
            records = _dictionary_records(
                lines=max(10, round(500 * scale)), seed=1001
            )
            self.execute(STATS_SCRIPT, records)
            return
        seed = 1001 if dataset == "train" else 2002
        records = _dictionary_records(
            lines=max(10, round(700 * scale)), seed=seed
        )
        self.execute(FILL_SCRIPT, records)

    @traced
    def execute(self, script: str, records: list) -> None:
        """Compile and run ``script`` over ``records``."""
        self.interp.compile(script)
        self.interp.run(records)

    @property
    def output(self) -> list:
        """Lines printed by the AWK program."""
        return self.interp.output


def _dictionary_records(lines: int, seed: int) -> list:
    """Dictionary-file records: a few words per line, seeded."""
    rng = random.Random(seed)
    words = word_list(lines * 4, seed=seed ^ 0xD1C7)
    records = []
    index = 0
    for _ in range(lines):
        take = rng.randint(2, 6)
        records.append(" ".join(words[index : index + take]))
        index = (index + take) % max(1, len(words) - 8)
    return records
