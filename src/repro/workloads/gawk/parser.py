"""Lexer and parser for the mini-AWK language of the gawk workload.

Implements the AWK subset the workload's report script needs: BEGIN/END
and main rules, blocks, ``if``/``else``, C-style ``for``, ``for (v in
array)``, ``print``, assignment, increment, comparison, arithmetic, string
concatenation (juxtaposition), field references (``$i``), array indexing,
and the ``length`` builtin.

The parser allocates one traced node per AST vertex (modelled on gawk's
``NODE`` structure) through the workload's allocation layers, so the parse
tree shows up in traces as the long-lived structure it is in real gawk.
Syntax errors raise :class:`AwkSyntaxError` with line information.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.runtime.heap import HeapObject

__all__ = ["AwkSyntaxError", "Node", "Lexer", "Parser", "NODE_SIZE", "Token"]

#: Modelled size of gawk's NODE structure.
NODE_SIZE = 32


class AwkSyntaxError(Exception):
    """Raised on malformed mini-AWK source."""


Token = Tuple[str, object, int]  # (kind, value, line)

_KEYWORDS = {"BEGIN", "END", "if", "else", "for", "in", "print"}
#: Built-in functions; lexed as ("builtin", name) tokens.
_BUILTINS = {"length", "substr", "index", "split", "toupper", "tolower"}
_TWO_CHAR = {"==", "!=", "<=", ">=", "&&", "||", "++", "--", "!~"}
_ONE_CHAR = set("+-*/%<>=!(){}[];,$~")


class Lexer:
    """Tokenizes mini-AWK source.

    ``/`` begins a regex literal where a division cannot appear: after
    ``~`` or ``!~``, at the start of a rule, or after ``(``, ``&&``,
    ``||`` — AWK's own disambiguation rule.
    """

    #: Previous-token states after which "/" starts a regex literal.
    _REGEX_AFTER = {None, ("op", "~"), ("op", "!~"), ("op", "("),
                    ("op", "&&"), ("op", "||"), ("op", "{"), ("op", ";"),
                    ("op", "}")}

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self._prev = None

    def tokens(self) -> List[Token]:
        """The full token stream, ending with an ``eof`` token."""
        result: List[Token] = []
        while True:
            tok = self._next()
            result.append(tok)
            self._prev = (tok[0], tok[1]) if tok[0] == "op" else tok[0]
            if tok[0] == "eof":
                return result

    def _next(self) -> Token:
        src, n = self.source, len(self.source)
        while self.pos < n:
            ch = src[self.pos]
            if ch == "\n":
                self.line += 1
                self.pos += 1
            elif ch in " \t\r":
                self.pos += 1
            elif ch == "#":
                while self.pos < n and src[self.pos] != "\n":
                    self.pos += 1
            else:
                break
        if self.pos >= n:
            return ("eof", None, self.line)
        ch = src[self.pos]
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._number()
        if ch.isalpha() or ch == "_":
            return self._name()
        if ch == '"':
            return self._string()
        if ch == "/" and self._prev in self._REGEX_AFTER:
            return self._regex()
        two = src[self.pos : self.pos + 2]
        if two in _TWO_CHAR:
            self.pos += 2
            return ("op", two, self.line)
        if ch in _ONE_CHAR:
            self.pos += 1
            return ("op", ch, self.line)
        raise AwkSyntaxError(f"line {self.line}: unexpected character {ch!r}")

    def _peek(self, ahead: int) -> str:
        index = self.pos + ahead
        return self.source[index] if index < len(self.source) else ""

    def _number(self) -> Token:
        start = self.pos
        src, n = self.source, len(self.source)
        while self.pos < n and (src[self.pos].isdigit() or src[self.pos] == "."):
            self.pos += 1
        return ("number", float(src[start : self.pos]), self.line)

    def _name(self) -> Token:
        start = self.pos
        src, n = self.source, len(self.source)
        while self.pos < n and (src[self.pos].isalnum() or src[self.pos] == "_"):
            self.pos += 1
        word = src[start : self.pos]
        if word in _KEYWORDS:
            return (word, word, self.line)
        if word in _BUILTINS:
            return ("builtin", word, self.line)
        return ("name", word, self.line)

    def _regex(self) -> Token:
        self.pos += 1  # opening slash
        chars: List[str] = []
        src, n = self.source, len(self.source)
        while self.pos < n and src[self.pos] != "/":
            ch = src[self.pos]
            if ch == "\\" and self.pos + 1 < n:
                chars.append(ch)
                self.pos += 1
                ch = src[self.pos]
            chars.append(ch)
            self.pos += 1
        if self.pos >= n:
            raise AwkSyntaxError(f"line {self.line}: unterminated regex")
        self.pos += 1  # closing slash
        return ("regex", "".join(chars), self.line)

    def _string(self) -> Token:
        self.pos += 1  # opening quote
        chars: List[str] = []
        src, n = self.source, len(self.source)
        while self.pos < n and src[self.pos] != '"':
            ch = src[self.pos]
            if ch == "\\" and self.pos + 1 < n:
                self.pos += 1
                escape = src[self.pos]
                ch = {"n": "\n", "t": "\t"}.get(escape, escape)
            chars.append(ch)
            self.pos += 1
        if self.pos >= n:
            raise AwkSyntaxError(f"line {self.line}: unterminated string")
        self.pos += 1  # closing quote
        return ("string", "".join(chars), self.line)


class Node:
    """One mini-AWK AST vertex, paired with its traced heap allocation."""

    __slots__ = ("kind", "value", "kids", "handle")

    def __init__(self, kind: str, value: object, kids: List["Node"],
                 handle: HeapObject):
        self.kind = kind
        self.value = value
        self.kids = kids
        self.handle = handle

    def __repr__(self) -> str:
        return f"<{self.kind} {self.value!r} kids={len(self.kids)}>"


class Parser:
    """Recursive-descent / precedence-climbing parser for mini-AWK.

    ``alloc_node`` is the workload's traced node allocator, so parse-tree
    allocations carry the workload's call chains.
    """

    def __init__(self, tokens: List[Token],
                 alloc_node: Callable[[], HeapObject]):
        self._tokens = tokens
        self._index = 0
        self._alloc_node = alloc_node

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        tok = self._tokens[self._index]
        if tok[0] != "eof":
            self._index += 1
        return tok

    def _match(self, kind: str, value: Optional[object] = None) -> bool:
        tok = self._peek()
        if tok[0] != kind or (value is not None and tok[1] != value):
            return False
        self._advance()
        return True

    def _expect(self, kind: str, value: Optional[object] = None) -> Token:
        tok = self._peek()
        if tok[0] != kind or (value is not None and tok[1] != value):
            want = value if value is not None else kind
            raise AwkSyntaxError(
                f"line {tok[2]}: expected {want!r}, found {tok[1]!r}"
            )
        return self._advance()

    def _node(self, kind: str, value: object = None,
              kids: Optional[List[Node]] = None) -> Node:
        return Node(kind, value, kids or [], self._alloc_node())

    # ------------------------------------------------------------------
    # Grammar
    # ------------------------------------------------------------------

    def parse_program(self) -> List[Node]:
        """Parse a sequence of pattern-action rules."""
        rules = []
        while self._peek()[0] != "eof":
            rules.append(self._rule())
        return rules

    def _rule(self) -> Node:
        tok = self._peek()
        if tok[0] in ("BEGIN", "END"):
            self._advance()
            body = self._block()
            return self._node("rule", tok[0], [body])
        if tok[0] == "regex":
            # /pattern/ { action }: run the action for matching records.
            self._advance()
            body = self._block()
            return self._node("rule", ("pattern", tok[1]), [body])
        body = self._block()
        return self._node("rule", "main", [body])

    def _block(self) -> Node:
        self._expect("op", "{")
        stmts = []
        while not self._match("op", "}"):
            if self._peek()[0] == "eof":
                raise AwkSyntaxError("unexpected end of program in block")
            stmts.append(self._statement())
        return self._node("block", None, stmts)

    def _statement(self) -> Node:
        tok = self._peek()
        if tok[0] == "op" and tok[1] == "{":
            return self._block()
        if tok[0] == "if":
            return self._if_statement()
        if tok[0] == "for":
            return self._for_statement()
        if tok[0] == "print":
            return self._print_statement()
        expr = self._expression()
        self._match("op", ";")
        return self._node("expr-stmt", None, [expr])

    def _if_statement(self) -> Node:
        self._expect("if")
        self._expect("op", "(")
        cond = self._expression()
        self._expect("op", ")")
        then = self._statement()
        kids = [cond, then]
        if self._match("else"):
            kids.append(self._statement())
        return self._node("if", None, kids)

    def _for_statement(self) -> Node:
        self._expect("for")
        self._expect("op", "(")
        # Distinguish `for (v in arr)` from `for (init; cond; step)`.
        if (
            self._peek()[0] == "name"
            and self._tokens[self._index + 1][0] == "in"
        ):
            var = self._advance()[1]
            self._expect("in")
            array = self._advance()
            if array[0] != "name":
                raise AwkSyntaxError(
                    f"line {array[2]}: expected array name after 'in'"
                )
            self._expect("op", ")")
            body = self._statement()
            return self._node("for-in", (var, array[1]), [body])
        init = self._expression()
        self._expect("op", ";")
        cond = self._expression()
        self._expect("op", ";")
        step = self._expression()
        self._expect("op", ")")
        body = self._statement()
        return self._node("for", None, [init, cond, step, body])

    def _print_statement(self) -> Node:
        self._expect("print")
        args = [self._expression()]
        while self._match("op", ","):
            args.append(self._expression())
        self._match("op", ";")
        return self._node("print", None, args)

    # Expression precedence, lowest first.
    def _expression(self) -> Node:
        return self._assignment()

    def _assignment(self) -> Node:
        target = self._comparison()
        tok = self._peek()
        if tok[0] == "op" and tok[1] == "=":
            if target.kind not in ("var", "index"):
                raise AwkSyntaxError(
                    f"line {tok[2]}: assignment to non-lvalue {target.kind}"
                )
            self._advance()
            value = self._assignment()
            return self._node("assign", None, [target, value])
        return target

    def _comparison(self) -> Node:
        left = self._concat()
        tok = self._peek()
        if tok[0] == "op" and tok[1] in ("==", "!=", "<", "<=", ">", ">="):
            self._advance()
            right = self._concat()
            return self._node("compare", tok[1], [left, right])
        if tok[0] == "op" and tok[1] in ("~", "!~"):
            self._advance()
            pattern = self._expect("regex")
            return self._node("match", (pattern[1], tok[1] == "!~"), [left])
        return left

    #: Token starts that can begin a concatenation operand.
    _CONCAT_STARTS = ("number", "string", "name", "builtin")

    def _concat(self) -> Node:
        left = self._additive()
        while True:
            tok = self._peek()
            # Like AWK, a newline ends the expression: concatenation
            # operands must start on the line the expression is on.
            same_line = self._index > 0 and tok[2] == self._tokens[self._index - 1][2]
            starts_operand = same_line and (
                tok[0] in self._CONCAT_STARTS
                or (tok[0] == "op" and tok[1] in ("$", "("))
            )
            if not starts_operand:
                return left
            right = self._additive()
            left = self._node("concat", None, [left, right])

    def _additive(self) -> Node:
        left = self._multiplicative()
        while True:
            tok = self._peek()
            if tok[0] == "op" and tok[1] in ("+", "-"):
                self._advance()
                right = self._multiplicative()
                left = self._node("arith", tok[1], [left, right])
            else:
                return left

    def _multiplicative(self) -> Node:
        left = self._unary()
        while True:
            tok = self._peek()
            if tok[0] == "op" and tok[1] in ("*", "/", "%"):
                self._advance()
                right = self._unary()
                left = self._node("arith", tok[1], [left, right])
            else:
                return left

    def _unary(self) -> Node:
        tok = self._peek()
        if tok[0] == "op" and tok[1] == "-":
            self._advance()
            return self._node("neg", None, [self._unary()])
        if tok[0] == "op" and tok[1] == "$":
            self._advance()
            return self._node("field", None, [self._unary()])
        if tok[0] == "op" and tok[1] == "++":
            self._advance()
            target = self._unary()
            return self._node("preincr", None, [target])
        return self._postfix()

    def _postfix(self) -> Node:
        expr = self._primary()
        if self._peek()[0] == "op" and self._peek()[1] == "++":
            self._advance()
            return self._node("postincr", None, [expr])
        return expr

    def _primary(self) -> Node:
        tok = self._advance()
        if tok[0] == "number":
            return self._node("number", tok[1])
        if tok[0] == "string":
            return self._node("string", tok[1])
        if tok[0] == "builtin":
            return self._builtin_call(tok[1], tok[2])
        if tok[0] == "name":
            if self._match("op", "["):
                index = self._expression()
                self._expect("op", "]")
                return self._node("index", tok[1], [index])
            return self._node("var", tok[1])
        if tok[0] == "op" and tok[1] == "(":
            inner = self._expression()
            self._expect("op", ")")
            return inner
        raise AwkSyntaxError(f"line {tok[2]}: unexpected token {tok[1]!r}")

    def _builtin_call(self, name: str, line: int) -> Node:
        """Parse ``name(arg, ...)`` into a ``call`` node."""
        self._expect("op", "(")
        args: List[Node] = []
        if not self._match("op", ")"):
            while True:
                args.append(self._expression())
                if self._match("op", ")"):
                    break
                self._expect("op", ",")
        counts = {"length": (1, 1), "substr": (2, 3), "index": (2, 2),
                  "split": (2, 2), "toupper": (1, 1), "tolower": (1, 1)}
        lo, hi = counts[name]
        if not lo <= len(args) <= hi:
            raise AwkSyntaxError(
                f"line {line}: {name}() takes {lo}..{hi} arguments, "
                f"got {len(args)}"
            )
        if name == "split" and args[1].kind != "var":
            raise AwkSyntaxError(
                f"line {line}: split() needs an array name as its second "
                "argument"
            )
        return self._node("call", name, args)
