"""The gawk workload: a traced mini-AWK interpreter."""

from repro.workloads.gawk.interp import AwkRuntimeError, Cell, Interp
from repro.workloads.gawk.parser import AwkSyntaxError, Lexer, Node, Parser
from repro.workloads.gawk.workload import FILL_SCRIPT, GawkWorkload

__all__ = [
    "AwkRuntimeError",
    "Cell",
    "Interp",
    "AwkSyntaxError",
    "Lexer",
    "Node",
    "Parser",
    "FILL_SCRIPT",
    "GawkWorkload",
]
