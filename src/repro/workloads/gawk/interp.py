"""Tree-walking interpreter for the mini-AWK language.

Models gawk's runtime allocation behaviour: every value is a ``NODE``-sized
traced cell, string values additionally own a traced character buffer, and
the interpreter copies values on read and frees temporaries at statement
boundaries — the reference-count-free analogue of gawk's temporary-node
management.  The resulting churn of per-field strings and per-expression
temporaries is what made GAWK the paper's most predictable program (99.3%
of bytes short-lived from a handful of sites).

Ownership discipline: :meth:`Interp.eval` always returns a cell the caller
owns and must free (or store, transferring ownership).  Variables, array
entries, and fields own their cells; assignment frees the previous value.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.runtime.heap import HeapObject, TracedHeap, traced
from repro.workloads.gawk.parser import (
    NODE_SIZE,
    AwkSyntaxError,
    Lexer,
    Node,
    Parser,
)
from repro.workloads.regexlite import Regex, compile_pattern

__all__ = ["Cell", "Interp", "AwkRuntimeError"]

#: Modelled header of a gawk string buffer (length + refcount + pad).
STRBUF_HEADER = 16
#: Modelled size of an associative-array bucket node.
BUCKET_SIZE = 24
#: AWK output line width used by the formatting script.


class AwkRuntimeError(Exception):
    """Raised on runtime errors in the mini-AWK program."""


class Cell:
    """One AWK value: a traced NODE cell plus an optional string buffer."""

    __slots__ = ("kind", "num", "text", "node", "buf")

    def __init__(self, kind: str, num: float, text: str,
                 node: HeapObject, buf: Optional[HeapObject]):
        self.kind = kind  # "num" | "str" | "uninit"
        self.num = num
        self.text = text
        self.node = node
        self.buf = buf


class Interp:
    """Executes a parsed mini-AWK program over input records."""

    def __init__(self, heap: TracedHeap):
        self.heap = heap
        self.globals: Dict[str, Cell] = {}
        #: name -> key -> (bucket handle, value cell)
        self.arrays: Dict[str, Dict[str, Tuple[HeapObject, Cell]]] = {}
        self.fields: List[Cell] = []  # fields[0] is $0
        self.rules: List[Node] = []
        self.output: List[str] = []
        self.regex_cache: Dict[str, Regex] = {}

    # ------------------------------------------------------------------
    # Allocation layers
    # ------------------------------------------------------------------

    @traced
    def xalloc(self, size: int) -> HeapObject:
        """Checked allocation wrapper (gawk's ``emalloc``)."""
        return self.heap.malloc(size)

    @traced
    def node_alloc(self) -> HeapObject:
        """Allocate one NODE cell (gawk's ``newnode``)."""
        return self.xalloc(NODE_SIZE)

    @traced
    def make_num(self, value: float) -> Cell:
        """A fresh numeric cell."""
        node = self.node_alloc()
        self.heap.touch(node, 1)
        return Cell("num", value, "", node, None)

    @traced
    def make_str(self, text: str) -> Cell:
        """A fresh string cell owning a traced character buffer."""
        node = self.node_alloc()
        buf = self.xalloc(STRBUF_HEADER + max(1, len(text)))
        self.heap.touch(buf, 2 + len(text) // 2)
        return Cell("str", 0.0, text, node, buf)

    @traced
    def make_uninit(self) -> Cell:
        """The value of a never-assigned variable ("" and 0 at once)."""
        node = self.node_alloc()
        return Cell("uninit", 0.0, "", node, None)

    def free_cell(self, cell: Cell) -> None:
        """Release a cell and its buffer."""
        if cell.buf is not None:
            self.heap.free(cell.buf)
        self.heap.free(cell.node)

    @traced
    def copy_cell(self, cell: Cell) -> Cell:
        """A fresh cell with the same value (gawk's ``dupnode``)."""
        if cell.kind == "num":
            return self.make_num(cell.num)
        if cell.kind == "str":
            return self.make_str(cell.text)
        return self.make_uninit()

    # ------------------------------------------------------------------
    # Coercions
    # ------------------------------------------------------------------

    def num_of(self, cell: Cell) -> float:
        """Numeric value of a cell (no allocation, touches the cell)."""
        self.heap.touch(cell.node, 1)
        if cell.kind == "num":
            return cell.num
        if cell.kind == "uninit":
            return 0.0
        if cell.buf is not None:
            self.heap.touch(cell.buf, 1)
        try:
            return float(cell.text)
        except ValueError:
            return 0.0

    def str_of(self, cell: Cell) -> str:
        """String value of a cell (no allocation, touches the cell)."""
        self.heap.touch(cell.node, 1)
        if cell.kind == "str":
            if cell.buf is not None:
                self.heap.touch(cell.buf, 1 + len(cell.text) // 4)
            return cell.text
        if cell.kind == "uninit":
            return ""
        if cell.num == int(cell.num):
            return str(int(cell.num))
        return repr(cell.num)

    # ------------------------------------------------------------------
    # Program execution
    # ------------------------------------------------------------------

    @traced
    def compile(self, source: str) -> None:
        """Lex and parse ``source`` into this interpreter's rule list."""
        tokens = Lexer(source).tokens()
        parser = Parser(tokens, self.node_alloc)
        self.rules = parser.parse_program()
        if not self.rules:
            raise AwkSyntaxError("empty program")

    @traced
    def run(self, records: List[str]) -> None:
        """Run BEGIN rules, the main rules per record, then END rules."""
        for rule in self.rules:
            if rule.value == "BEGIN":
                self.exec_stmt(rule.kids[0])
        for record in records:
            self.run_record(record)
        self.clear_fields()
        for rule in self.rules:
            if rule.value == "END":
                self.exec_stmt(rule.kids[0])

    @traced
    def run_record(self, record: str) -> None:
        """Split one input record into fields and run the main rules."""
        self.clear_fields()
        self.fields.append(self.make_str(record))
        for word in record.split():
            self.fields.append(self.make_str(word))
        self.set_var("NF", self.make_num(float(len(self.fields) - 1)))
        for rule in self.rules:
            if rule.value == "main":
                self.exec_stmt(rule.kids[0])
            elif isinstance(rule.value, tuple) and rule.value[0] == "pattern":
                if self.match_pattern(rule.value[1], record):
                    self.exec_stmt(rule.kids[0])

    def clear_fields(self) -> None:
        """Free the previous record's field cells."""
        for cell in self.fields:
            self.free_cell(cell)
        self.fields = []

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    @traced
    def exec_stmt(self, node: Node) -> None:
        kind = node.kind
        if kind == "block":
            for stmt in node.kids:
                self.exec_stmt(stmt)
        elif kind == "if":
            cond = self.eval(node.kids[0])
            taken = self.truthy(cond)
            self.free_cell(cond)
            if taken:
                self.exec_stmt(node.kids[1])
            elif len(node.kids) > 2:
                self.exec_stmt(node.kids[2])
        elif kind == "for":
            init, cond, step, body = node.kids
            self.free_cell(self.eval(init))
            while True:
                test = self.eval(cond)
                go = self.truthy(test)
                self.free_cell(test)
                if not go:
                    break
                self.exec_stmt(body)
                self.free_cell(self.eval(step))
        elif kind == "for-in":
            self.exec_for_in(node)
        elif kind == "print":
            self.exec_print(node)
        elif kind == "expr-stmt":
            self.free_cell(self.eval(node.kids[0]))
        else:
            raise AwkRuntimeError(f"unknown statement kind {kind!r}")

    @traced
    def exec_for_in(self, node: Node) -> None:
        var, array_name = node.value
        table = self.arrays.get(array_name, {})
        for key in list(table):
            self.set_var(var, self.make_str(key))
            self.exec_stmt(node.kids[0])

    @traced
    def exec_print(self, node: Node) -> None:
        parts = []
        for arg in node.kids:
            cell = self.eval(arg)
            parts.append(self.str_of(cell))
            self.free_cell(cell)
        line = " ".join(parts)
        # gawk assembles the output record in a malloc'd buffer.
        buf = self.xalloc(STRBUF_HEADER + max(1, len(line)))
        self.heap.touch(buf, 1 + len(line) // 4)
        self.output.append(line)
        self.heap.free(buf)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    @traced
    def eval(self, node: Node) -> Cell:
        kind = node.kind
        if kind == "number":
            return self.make_num(node.value)
        if kind == "string":
            return self.make_str(node.value)
        if kind == "var":
            return self.read_var(node.value)
        if kind == "index":
            return self.eval_index(node)
        if kind == "field":
            return self.eval_field(node)
        if kind == "assign":
            return self.eval_assign(node)
        if kind == "concat":
            return self.eval_concat(node)
        if kind == "compare":
            return self.eval_compare(node)
        if kind == "arith":
            return self.eval_arith(node)
        if kind == "neg":
            operand = self.eval(node.kids[0])
            value = -self.num_of(operand)
            self.free_cell(operand)
            return self.make_num(value)
        if kind == "call":
            return self.eval_call(node)
        if kind in ("preincr", "postincr"):
            return self.eval_incr(node)
        if kind == "match":
            return self.eval_match(node)
        raise AwkRuntimeError(f"unknown expression kind {kind!r}")

    @traced
    def read_var(self, name: str) -> Cell:
        """The value of a variable, as a fresh copy the caller owns."""
        cell = self.globals.get(name)
        if cell is None:
            return self.make_uninit()
        return self.copy_cell(cell)

    def set_var(self, name: str, cell: Cell) -> None:
        """Store ``cell`` into a variable, taking ownership."""
        old = self.globals.get(name)
        if old is not None:
            self.free_cell(old)
        self.globals[name] = cell

    @traced
    def eval_index(self, node: Node) -> Cell:
        index = self.eval(node.kids[0])
        key = self.str_of(index)
        self.free_cell(index)
        table = self.arrays.get(node.value)
        if table is None or key not in table:
            return self.make_uninit()
        return self.copy_cell(table[key][1])

    @traced
    def eval_field(self, node: Node) -> Cell:
        index_cell = self.eval(node.kids[0])
        index = int(self.num_of(index_cell))
        self.free_cell(index_cell)
        if 0 <= index < len(self.fields):
            return self.copy_cell(self.fields[index])
        return self.make_uninit()

    @traced
    def eval_assign(self, node: Node) -> Cell:
        target, expr = node.kids
        value = self.eval(expr)
        self.store(target, value)
        # An assignment expression yields (a copy of) the stored value.
        return self.copy_cell(value)

    def store(self, target: Node, value: Cell) -> None:
        """Store ``value`` (ownership transferred) into an lvalue node."""
        if target.kind == "var":
            self.set_var(target.value, value)
        elif target.kind == "index":
            index = self.eval(target.kids[0])
            key = self.str_of(index)
            self.free_cell(index)
            self.array_set(target.value, key, value)
        else:
            raise AwkRuntimeError(f"cannot assign to {target.kind!r}")

    @traced
    def array_set(self, name: str, key: str, value: Cell) -> None:
        """Store into an associative array, allocating buckets on demand."""
        table = self.arrays.setdefault(name, {})
        entry = table.get(key)
        if entry is None:
            bucket = self.xalloc(BUCKET_SIZE + STRBUF_HEADER + len(key))
            self.heap.touch(bucket, 2)
            table[key] = (bucket, value)
        else:
            bucket, old = entry
            self.free_cell(old)
            self.heap.touch(bucket, 1)
            table[key] = (bucket, value)

    @traced
    def eval_concat(self, node: Node) -> Cell:
        left = self.eval(node.kids[0])
        right = self.eval(node.kids[1])
        text = self.str_of(left) + self.str_of(right)
        self.free_cell(left)
        self.free_cell(right)
        return self.make_str(text)

    @traced
    def eval_compare(self, node: Node) -> Cell:
        left = self.eval(node.kids[0])
        right = self.eval(node.kids[1])
        # AWK strnum semantics: compare numerically unless both operands
        # are strings that do not look like numbers (or a string operand
        # is non-numeric while the other is a number -> string compare of
        # the number's string value is AWK's rule only for two strings;
        # against a number, a numeric-looking string compares as a number).
        numeric = _comparable_as_number(left) and _comparable_as_number(right)
        if numeric:
            a, b = self.num_of(left), self.num_of(right)
        else:
            a, b = self.str_of(left), self.str_of(right)
        self.free_cell(left)
        self.free_cell(right)
        op = node.value
        result = {
            "==": a == b,
            "!=": a != b,
            "<": a < b,
            "<=": a <= b,
            ">": a > b,
            ">=": a >= b,
        }[op]
        return self.make_num(1.0 if result else 0.0)

    @traced
    def eval_arith(self, node: Node) -> Cell:
        left = self.eval(node.kids[0])
        right = self.eval(node.kids[1])
        a, b = self.num_of(left), self.num_of(right)
        self.free_cell(left)
        self.free_cell(right)
        op = node.value
        if op == "+":
            value = a + b
        elif op == "-":
            value = a - b
        elif op == "*":
            value = a * b
        elif op == "/":
            if b == 0:
                raise AwkRuntimeError("division by zero")
            value = a / b
        else:  # "%"
            if b == 0:
                raise AwkRuntimeError("division by zero")
            value = a - b * int(a / b)
        return self.make_num(value)

    @traced
    def eval_call(self, node: Node) -> Cell:
        """Built-in function call (length, substr, index, split, ...)."""
        name = node.value
        if name == "length":
            operand = self.eval(node.kids[0])
            text = self.str_of(operand)
            self.free_cell(operand)
            return self.make_num(float(len(text)))
        if name == "substr":
            return self.eval_substr(node)
        if name == "index":
            haystack = self.eval(node.kids[0])
            needle = self.eval(node.kids[1])
            # AWK's index() is 1-based; 0 means not found.
            position = self.str_of(haystack).find(self.str_of(needle)) + 1
            self.free_cell(haystack)
            self.free_cell(needle)
            return self.make_num(float(position))
        if name == "split":
            return self.eval_split(node)
        if name in ("toupper", "tolower"):
            operand = self.eval(node.kids[0])
            text = self.str_of(operand)
            self.free_cell(operand)
            return self.make_str(
                text.upper() if name == "toupper" else text.lower()
            )
        raise AwkRuntimeError(f"unknown builtin {name!r}")

    @traced
    def eval_substr(self, node: Node) -> Cell:
        """``substr(s, start[, len])`` with AWK's 1-based indexing."""
        source = self.eval(node.kids[0])
        start_cell = self.eval(node.kids[1])
        text = self.str_of(source)
        start = max(1, int(self.num_of(start_cell)))
        self.free_cell(source)
        self.free_cell(start_cell)
        if len(node.kids) > 2:
            length_cell = self.eval(node.kids[2])
            length = max(0, int(self.num_of(length_cell)))
            self.free_cell(length_cell)
            piece = text[start - 1 : start - 1 + length]
        else:
            piece = text[start - 1 :]
        return self.make_str(piece)

    @traced
    def eval_split(self, node: Node) -> Cell:
        """``split(s, arr)``: whitespace-split into arr[1..n]; returns n."""
        source = self.eval(node.kids[0])
        text = self.str_of(source)
        self.free_cell(source)
        array_name = node.kids[1].value
        # AWK clears the array before filling it.
        table = self.arrays.get(array_name)
        if table is not None:
            for bucket, cell in table.values():
                self.heap.free(bucket)
                self.free_cell(cell)
            table.clear()
        pieces = text.split()
        for position, piece in enumerate(pieces, start=1):
            self.array_set(array_name, str(position), self.make_str(piece))
        return self.make_num(float(len(pieces)))

    @traced
    def eval_match(self, node: Node) -> Cell:
        """``expr ~ /re/`` and ``expr !~ /re/``."""
        pattern, negated = node.value
        subject = self.eval(node.kids[0])
        text = self.str_of(subject)
        self.free_cell(subject)
        hit = self.match_pattern(pattern, text)
        return self.make_num(1.0 if hit != negated else 0.0)

    @traced
    def match_pattern(self, pattern: str, text: str) -> bool:
        """Match ``text`` against a (cached, compiled) regex literal."""
        regex = self.regex_cache.get(pattern)
        if regex is None:
            regex = compile_pattern(self.heap, pattern, self.xalloc)
            self.regex_cache[pattern] = regex
        return regex.match(text, self.xalloc)

    @traced
    def eval_incr(self, node: Node) -> Cell:
        target = node.kids[0]
        current = self.eval(target)
        old = self.num_of(current)
        self.free_cell(current)
        self.store(target, self.make_num(old + 1))
        return self.make_num(old + 1 if node.kind == "preincr" else old)

    def truthy(self, cell: Cell) -> bool:
        """AWK truth: nonzero number, non-empty string."""
        if cell.kind == "num":
            return cell.num != 0
        if cell.kind == "uninit":
            return False
        return cell.text != ""


def _comparable_as_number(cell: Cell) -> bool:
    """Whether a cell takes part in numeric comparison (strnum rule)."""
    if cell.kind in ("num", "uninit"):
        return True
    try:
        float(cell.text)
    except ValueError:
        return False
    return True
