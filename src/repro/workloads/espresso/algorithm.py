"""The espresso minimization loop.

A working implementation of the two-level minimizer's core: the unate
recursion paradigm (tautology checking and complementation by Shannon
expansion about the most binate variable), and the classic
EXPAND → IRREDUNDANT → REDUCE iteration over the on-set against the
computed off-set.  The result is a prime, irredundant cover of the input
function, verified by :meth:`EspressoMinimizer.verify`.

Allocation behaviour matches the original's reputation: the recursive
tautology and complement steps allocate cofactor covers that die as each
recursion frame returns (deeply short-lived), EXPAND allocates candidate
cubes per raised literal, REDUCE allocates sharp fragments, and the
evolving cover's cubes live from one iteration to the next — the mixed
lifetime spectrum that made ESPRESSO the paper's hardest prediction
subject (41.8% of bytes predicted against 91% actually short-lived).
"""

from __future__ import annotations

from typing import List, Optional

from repro.runtime.heap import TracedHeap, traced
from repro.workloads.espresso.cubes import Cover, Cube, CubeLib, CubeSpace

__all__ = ["EspressoMinimizer", "MinimizeResult"]

#: REDUCE gives up on a cube when its sharp decomposition explodes.
REDUCE_FRAGMENT_LIMIT = 256
#: Safety bound on EXPAND/IRREDUNDANT/REDUCE iterations.
MAX_ITERATIONS = 5


class MinimizeResult:
    """Outcome of one minimization: the final cover and statistics."""

    def __init__(self, cover: Cover, initial_cubes: int, iterations: int):
        self.cover = cover
        self.initial_cubes = initial_cubes
        self.iterations = iterations

    @property
    def final_cubes(self) -> int:
        """Number of cubes in the minimized cover."""
        return len(self.cover)


class EspressoMinimizer:
    """EXPAND/IRREDUNDANT/REDUCE minimization over a traced cube library."""

    def __init__(self, heap: TracedHeap, space: CubeSpace):
        self.heap = heap
        self.space = space
        self.lib = CubeLib(heap, space)

    # ------------------------------------------------------------------
    # Unate recursion: tautology and complement
    # ------------------------------------------------------------------

    @traced
    def tautology(self, cover: Cover) -> bool:
        """Whether ``cover`` covers the whole cube space.

        Shannon-expands about the most binate variable; a unate cover is a
        tautology iff it contains the universe cube (the unate reduction
        theorem).
        """
        for cube in cover.cubes:
            self.heap.touch(cube.handle, 1)
            if cube.mask == self.space.full:
                return True
        if not cover.cubes:
            return False
        var = self.lib.most_binate_var(cover)
        if var is None:
            return False  # unate without the universe cube
        for phase in (0, 1):
            cofactor = self.lib.cofactor_literal(cover, var, phase)
            try:
                if not self.tautology(cofactor):
                    return False
            finally:
                self.lib.cover_free(cofactor)
        return True

    @traced
    def complement(self, cover: Cover) -> Cover:
        """The complement of ``cover``, as a fresh cover."""
        result = self.lib.cover_new()
        self._complement_into(cover, restrict=None, result=result)
        return result

    def _complement_into(self, cover: Cover, restrict: Optional[int],
                         result: Cover) -> None:
        """Recursive complement; emitted cubes are ANDed with ``restrict``."""
        lib = self.lib
        if not cover.cubes:
            mask = self.space.full if restrict is None else restrict
            lib.cover_add(result, lib.cube_new(mask))
            return
        for cube in cover.cubes:
            lib.heap.touch(cube.handle, 1)
            if cube.mask == self.space.full:
                return  # complement is empty
        var = lib.most_binate_var(cover)
        if var is None:
            self._complement_unate(cover, restrict, result)
            return
        for phase in (0, 1):
            literal_bits = 0b10 if phase else 0b01
            literal_mask = (
                self.space.full
                & ~self.space.pair(var)
                | (literal_bits << (2 * var))
            )
            branch_restrict = (
                literal_mask if restrict is None else restrict & literal_mask
            )
            if not self.space.is_valid(branch_restrict):
                continue
            cofactor = lib.cofactor_literal(cover, var, phase)
            try:
                self._complement_into(cofactor, branch_restrict, result)
            finally:
                lib.cover_free(cofactor)

    @traced
    def _complement_unate(self, cover: Cover, restrict: Optional[int],
                          result: Cover) -> None:
        """Complement a unate cover by iterated sharp against the universe."""
        lib = self.lib
        base_mask = self.space.full if restrict is None else restrict
        parts = [lib.cube_new(base_mask)]
        for cube in cover.cubes:
            next_parts: List[Cube] = []
            for part in parts:
                next_parts.extend(lib.cube_sharp(part, cube))
                lib.cube_free(part)
            parts = next_parts
            if not parts:
                return
        for part in parts:
            lib.cover_add(result, part)

    # ------------------------------------------------------------------
    # The espresso loop
    # ------------------------------------------------------------------

    @traced
    def expand(self, cover: Cover, offset: Cover) -> Cover:
        """Raise each cube's literals as far as the off-set allows.

        Expanded cubes that contain earlier expanded cubes subsume them
        (single-cube containment, as espresso's EXPAND does).
        """
        lib = self.lib
        result = lib.cover_new()
        for cube in cover.cubes:
            lib.heap.touch(cube.handle, 1)
            mask = cube.mask
            for var in self.space.fixed_vars(mask):
                candidate = lib.cube_new(mask | self.space.pair(var))
                if self._intersects_cover(candidate, offset):
                    lib.cube_free(candidate)
                else:
                    mask = candidate.mask
                    lib.cube_free(candidate)
            expanded = lib.cube_new(mask)
            if self._add_with_containment(result, expanded):
                continue
        return result

    def _intersects_cover(self, cube: Cube, cover: Cover) -> bool:
        for other in cover.cubes:
            if self.lib.cubes_intersect(cube, other):
                return True
        return False

    def _add_with_containment(self, cover: Cover, cube: Cube) -> bool:
        """Add ``cube`` unless contained; drop members it contains."""
        lib = self.lib
        for existing in cover.cubes:
            if lib.cube_contains(existing, cube):
                lib.cube_free(cube)
                return False
        survivors = []
        for existing in cover.cubes:
            if lib.cube_contains(cube, existing):
                lib.cube_free(existing)
            else:
                survivors.append(existing)
        cover.cubes[:] = survivors
        lib.cover_add(cover, cube)
        return True

    @traced
    def irredundant(self, cover: Cover) -> Cover:
        """Drop cubes covered by the rest of the cover.

        A cube is redundant iff the others' cofactor against it is a
        tautology.  Greedy, in descending-size order, like espresso's
        quick irredundant pass.
        """
        lib = self.lib
        order = sorted(
            range(len(cover.cubes)),
            key=lambda i: self.space.literal_count(cover.cubes[i].mask),
            reverse=True,
        )
        keep = [True] * len(cover.cubes)
        for index in order:
            cube = cover.cubes[index]
            rest = lib.cover_new()
            for j, other in enumerate(cover.cubes):
                if j != index and keep[j]:
                    lib.heap.touch(other.handle, 1)
                    lib.cover_add(rest, lib.cube_new(other.mask))
            cofactor = lib.cofactor_cube(rest, cube)
            try:
                if self.tautology(cofactor):
                    keep[index] = False
            finally:
                lib.cover_free(cofactor)
                lib.cover_free(rest)
        result = lib.cover_new()
        for index, cube in enumerate(cover.cubes):
            if keep[index]:
                lib.cover_add(result, lib.cube_new(cube.mask))
        return result

    @traced
    def reduce(self, cover: Cover) -> Cover:
        """Shrink each cube to the supercube of its uniquely-covered part.

        Sequential, like espresso's REDUCE: cube *i* is reduced against the
        already-reduced cubes before it and the original cubes after it, so
        the union's coverage is preserved (reducing all cubes against the
        original cover simultaneously can drop mutually-overlapped
        minterms).
        """
        lib = self.lib
        working = [lib.cube_new(cube.mask) for cube in cover.cubes]
        for index in range(len(working)):
            cube = working[index]
            parts = [lib.cube_new(cube.mask)]
            exploded = False
            for j, other in enumerate(working):
                if j == index:
                    continue
                next_parts: List[Cube] = []
                for part in parts:
                    next_parts.extend(lib.cube_sharp(part, other))
                    lib.cube_free(part)
                parts = next_parts
                if len(parts) > REDUCE_FRAGMENT_LIMIT:
                    exploded = True
                    break
                if not parts:
                    break
            if exploded or not parts:
                for part in parts:
                    lib.cube_free(part)
                continue  # keep the cube as it is
            reduced = lib.supercube(parts)
            for part in parts:
                lib.cube_free(part)
            lib.cube_free(cube)
            working[index] = reduced
        result = lib.cover_new()
        for cube in working:
            lib.cover_add(result, cube)
        return result

    @traced
    def minimize(self, onset_masks: List[int]) -> MinimizeResult:
        """Run the full espresso loop on an on-set given as cube masks."""
        lib = self.lib
        onset = lib.cover_from_masks(onset_masks)
        offset = self.complement(onset)
        current = onset
        best_cost = self._cost(current)
        iterations = 0
        for _ in range(MAX_ITERATIONS):
            iterations += 1
            expanded = self.expand(current, offset)
            lib.cover_free(current)
            irredundant = self.irredundant(expanded)
            lib.cover_free(expanded)
            cost = self._cost(irredundant)
            if cost >= best_cost and iterations > 1:
                current = irredundant
                break
            best_cost = cost
            reduced = self.reduce(irredundant)
            lib.cover_free(irredundant)
            current = reduced
        # Leave the loop on a prime cover: expand once more if the last
        # step was a reduce.
        final = self.expand(current, offset)
        lib.cover_free(current)
        result = self.irredundant(final)
        lib.cover_free(final)
        lib.cover_free(offset)
        return MinimizeResult(
            result, initial_cubes=len(onset_masks), iterations=iterations
        )

    def _cost(self, cover: Cover) -> tuple:
        literals = sum(
            self.space.literal_count(cube.mask) for cube in cover.cubes
        )
        return (len(cover.cubes), literals)

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------

    @traced
    def verify(self, original_masks: List[int], minimized: Cover) -> bool:
        """Whether ``minimized`` computes exactly the original function.

        Checks (a) every original cube is covered — the cofactor of the
        minimized cover against it is a tautology — and (b) no minimized
        cube strays into the off-set.
        """
        lib = self.lib
        original = lib.cover_from_masks(original_masks)
        offset = self.complement(original)
        try:
            for cube in original.cubes:
                cofactor = lib.cofactor_cube(minimized, cube)
                try:
                    if not self.tautology(cofactor):
                        return False
                finally:
                    lib.cover_free(cofactor)
            for cube in minimized.cubes:
                if self._intersects_cover(cube, offset):
                    return False
            return True
        finally:
            lib.cover_free(original)
            lib.cover_free(offset)
