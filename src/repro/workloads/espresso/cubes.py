"""Positional-cube representation for the espresso workload.

Espresso represents a product term (cube) over *n* input variables with
two bits per variable — ``01`` for the complemented literal, ``10`` for
the true literal, ``11`` for "don't care" — and a cover as a set of cubes.
This module implements that representation: cube masks live in Python
integers for the bit manipulation, while every cube and cover carries a
traced heap allocation sized as the C ``pset``/``pset_family`` would be
(16-byte header plus one 32-bit word per 16 variables; covers grow by
doubling, reallocating their cube block exactly as ``sf_addset`` does).

All operations flow through :class:`CubeLib` methods so their allocation
sites carry espresso's layered call chains (``cube_and`` →
``cube_new`` → ``xalloc`` → malloc).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.runtime.heap import HeapObject, TracedHeap, traced

__all__ = ["Cube", "Cover", "CubeLib", "CubeSpace"]

CUBE_HEADER = 16
COVER_HEADER = 8
COVER_INITIAL_CAPACITY = 8


class CubeSpace:
    """Bit-mask geometry for an ``n``-variable cube space."""

    def __init__(self, nvars: int):
        if nvars < 1:
            raise ValueError(f"need at least one variable, got {nvars}")
        self.nvars = nvars
        #: ``01`` repeated: the low bit of every pair.
        self.lo_mask = sum(1 << (2 * i) for i in range(nvars))
        #: The universe cube: every variable free.
        self.full = (1 << (2 * nvars)) - 1

    def pair(self, var: int) -> int:
        """The two-bit field of variable ``var``."""
        return 0b11 << (2 * var)

    def cube_bytes(self) -> int:
        """Modelled C size of one cube."""
        return CUBE_HEADER + 4 * ((self.nvars + 15) // 16)

    def is_valid(self, mask: int) -> bool:
        """Whether no variable's pair is ``00`` (an empty intersection)."""
        return ((mask | (mask >> 1)) & self.lo_mask) == self.lo_mask

    def fixed_vars(self, mask: int) -> List[int]:
        """Variables bound to a single phase in ``mask``."""
        return [
            var for var in range(self.nvars)
            if (mask >> (2 * var)) & 0b11 != 0b11
        ]

    def literal_count(self, mask: int) -> int:
        """Number of fixed literals (espresso's cube cost)."""
        count = 0
        for var in range(self.nvars):
            if (mask >> (2 * var)) & 0b11 != 0b11:
                count += 1
        return count

    def from_string(self, term: str) -> int:
        """Parse a PLA input-plane term (``0``, ``1``, ``-``) into a mask."""
        if len(term) != self.nvars:
            raise ValueError(
                f"term {term!r} has {len(term)} columns, expected {self.nvars}"
            )
        mask = 0
        for var, ch in enumerate(term):
            if ch == "0":
                bits = 0b01
            elif ch == "1":
                bits = 0b10
            elif ch == "-":
                bits = 0b11
            else:
                raise ValueError(f"bad PLA character {ch!r} in {term!r}")
            mask |= bits << (2 * var)
        return mask

    def to_string(self, mask: int) -> str:
        """Format a mask back into PLA notation."""
        chars = []
        for var in range(self.nvars):
            bits = (mask >> (2 * var)) & 0b11
            chars.append({0b01: "0", 0b10: "1", 0b11: "-"}[bits])
        return "".join(chars)


class Cube:
    """One product term: a bit mask plus its traced allocation."""

    __slots__ = ("mask", "handle")

    def __init__(self, mask: int, handle: HeapObject):
        self.mask = mask
        self.handle = handle


class Cover:
    """A set of cubes with a traced, capacity-doubling cube block."""

    __slots__ = ("cubes", "struct", "block", "capacity")

    def __init__(self, cubes: List[Cube], struct: HeapObject,
                 block: HeapObject, capacity: int):
        self.cubes = cubes
        self.struct = struct
        self.block = block
        self.capacity = capacity

    def __len__(self) -> int:
        return len(self.cubes)

    def __iter__(self):
        return iter(self.cubes)


class CubeLib:
    """Cube and cover operations over a traced heap."""

    def __init__(self, heap: TracedHeap, space: CubeSpace):
        self.heap = heap
        self.space = space

    # ------------------------------------------------------------------
    # Allocation layers
    # ------------------------------------------------------------------

    @traced
    def xalloc(self, size: int) -> HeapObject:
        """Checked allocation wrapper (espresso's ``ALLOC``)."""
        return self.heap.malloc(size)

    @traced
    def cube_new(self, mask: int) -> Cube:
        """Allocate a cube with the given mask."""
        handle = self.xalloc(self.space.cube_bytes())
        self.heap.touch(handle, 3)
        return Cube(mask, handle)

    def cube_free(self, cube: Cube) -> None:
        """Release one cube."""
        self.heap.free(cube.handle)

    @traced
    def cover_new(self) -> Cover:
        """Allocate an empty cover."""
        struct = self.xalloc(COVER_HEADER + 16)
        block = self.xalloc(
            COVER_HEADER + self.space.cube_bytes() * COVER_INITIAL_CAPACITY
        )
        return Cover([], struct, block, COVER_INITIAL_CAPACITY)

    @traced
    def cover_add(self, cover: Cover, cube: Cube) -> None:
        """Append a cube (ownership transferred), doubling block as needed."""
        if len(cover.cubes) >= cover.capacity:
            cover.capacity *= 2
            new_block = self.xalloc(
                COVER_HEADER + self.space.cube_bytes() * cover.capacity
            )
            self.heap.touch(new_block, len(cover.cubes))
            self.heap.free(cover.block)
            cover.block = new_block
        self.heap.touch(cover.block, 1)
        cover.cubes.append(cube)

    def cover_free(self, cover: Cover) -> None:
        """Release a cover and every cube in it."""
        for cube in cover.cubes:
            self.cube_free(cube)
        self.heap.free(cover.block)
        self.heap.free(cover.struct)

    @traced
    def cover_from_masks(self, masks: List[int]) -> Cover:
        """Build a cover of fresh cubes from raw masks."""
        cover = self.cover_new()
        for mask in masks:
            self.cover_add(cover, self.cube_new(mask))
        return cover

    @traced
    def cover_copy(self, cover: Cover) -> Cover:
        """A deep copy of a cover."""
        result = self.cover_new()
        for cube in cover.cubes:
            self.heap.touch(cube.handle, 1)
            self.cover_add(result, self.cube_new(cube.mask))
        return result

    # ------------------------------------------------------------------
    # Cube algebra
    # ------------------------------------------------------------------

    @traced
    def cube_and(self, a: Cube, b: Cube) -> Optional[Cube]:
        """Intersection; ``None`` when the cubes are disjoint."""
        self.heap.touch(a.handle, 2)
        self.heap.touch(b.handle, 2)
        mask = a.mask & b.mask
        if not self.space.is_valid(mask):
            return None
        return self.cube_new(mask)

    def cube_contains(self, outer: Cube, inner: Cube) -> bool:
        """Whether ``inner`` is contained in ``outer``."""
        self.heap.touch(outer.handle, 2)
        self.heap.touch(inner.handle, 2)
        return (inner.mask & ~outer.mask) == 0

    def cubes_intersect(self, a: Cube, b: Cube) -> bool:
        """Whether the cubes share any minterm (no allocation)."""
        self.heap.touch(a.handle, 2)
        self.heap.touch(b.handle, 2)
        return self.space.is_valid(a.mask & b.mask)

    @traced
    def supercube(self, cubes: List[Cube]) -> Cube:
        """The smallest cube containing every cube in ``cubes``."""
        if not cubes:
            raise ValueError("supercube of nothing")
        mask = 0
        for cube in cubes:
            self.heap.touch(cube.handle, 1)
            mask |= cube.mask
        return self.cube_new(mask)

    @traced
    def cube_sharp(self, a: Cube, b: Cube) -> List[Cube]:
        """Disjoint sharp ``a # b``: the part of ``a`` outside ``b``.

        Returns freshly allocated cubes; ``[copy of a]`` when disjoint,
        ``[]`` when ``a`` is contained in ``b``.
        """
        self.heap.touch(a.handle, 2)
        self.heap.touch(b.handle, 2)
        if not self.space.is_valid(a.mask & b.mask):
            return [self.cube_new(a.mask)]
        pieces: List[Cube] = []
        remaining = a.mask
        for var in range(self.space.nvars):
            pair_shift = 2 * var
            a_bits = (remaining >> pair_shift) & 0b11
            b_bits = (b.mask >> pair_shift) & 0b11
            outside = a_bits & ~b_bits & 0b11
            if outside:
                piece = (remaining & ~(0b11 << pair_shift)) | (
                    outside << pair_shift
                )
                pieces.append(self.cube_new(piece))
                # Restrict the remainder to the overlap in this variable.
                remaining = (remaining & ~(0b11 << pair_shift)) | (
                    (a_bits & b_bits) << pair_shift
                )
        return pieces

    # ------------------------------------------------------------------
    # Cofactors
    # ------------------------------------------------------------------

    @traced
    def cofactor_literal(self, cover: Cover, var: int, phase: int) -> Cover:
        """The cover's cofactor against literal ``var=phase``.

        ``phase`` 1 means the true literal.  Conflicting cubes drop out;
        surviving cubes have the variable freed.
        """
        want = 0b10 if phase else 0b01
        pair = self.space.pair(var)
        result = self.cover_new()
        for cube in cover.cubes:
            self.heap.touch(cube.handle, 1)
            bits = (cube.mask >> (2 * var)) & 0b11
            if not bits & want:
                continue
            self.cover_add(result, self.cube_new(cube.mask | pair))
        return result

    @traced
    def cofactor_cube(self, cover: Cover, against: Cube) -> Cover:
        """The cover's cofactor against a whole cube."""
        self.heap.touch(against.handle, 1)
        free_fixed = 0
        for var in self.space.fixed_vars(against.mask):
            free_fixed |= self.space.pair(var)
        result = self.cover_new()
        for cube in cover.cubes:
            self.heap.touch(cube.handle, 1)
            if not self.space.is_valid(cube.mask & against.mask):
                continue
            self.cover_add(result, self.cube_new(cube.mask | free_fixed))
        return result

    # ------------------------------------------------------------------
    # Variable selection
    # ------------------------------------------------------------------

    def most_binate_var(self, cover: Cover) -> Optional[int]:
        """The variable appearing in both phases most often; ``None`` if unate."""
        best_var = None
        best_score = 0
        for var in range(self.space.nvars):
            zeros = ones = 0
            shift = 2 * var
            for cube in cover.cubes:
                bits = (cube.mask >> shift) & 0b11
                if bits == 0b01:
                    zeros += 1
                elif bits == 0b10:
                    ones += 1
            if zeros and ones and zeros + ones > best_score:
                best_score = zeros + ones
                best_var = var
        return best_var
