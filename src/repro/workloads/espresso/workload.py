"""The espresso workload: two-level logic minimization of PLA covers.

The paper ran espresso 2.3 on "examples provided with the release code".
This workload minimizes a batch of generated PLA functions per dataset —
random covers are heavily redundant, so EXPAND/IRREDUNDANT/REDUCE has
genuine work — and verifies each result against the original function.

``train`` and ``test`` use different functions of slightly different
shape (variable count, term count, don't-care density), standing in for
two disjoint subsets of the release examples: many interpreter-internal
sites transfer, but the different recursion profiles shift lifetimes, so
true prediction falls well below self prediction (the paper saw
41.8% self → 18.1% true for ESPRESSO).
"""

from __future__ import annotations

from typing import List

from repro.runtime.heap import TracedHeap, traced
from repro.workloads.base import DatasetSpec, Workload
from repro.workloads.espresso.algorithm import EspressoMinimizer, MinimizeResult
from repro.workloads.espresso.cubes import CubeSpace
from repro.workloads.espresso.pla import PlaFile, format_pla, parse_pla
from repro.workloads.inputs import pla_terms

__all__ = ["EspressoWorkload"]


class EspressoWorkload(Workload):
    """Minimize a batch of generated PLA covers."""

    name = "espresso"
    DATASETS = {
        "train": DatasetSpec(
            "train",
            "six 9-input random PLAs, ~55 terms (seed 8001)",
            relation="different functions, slightly different shape vs test",
        ),
        "test": DatasetSpec(
            "test",
            "six 10-input random PLAs, ~65 terms (seed 9002)",
            relation="different functions, slightly different shape vs train",
        ),
        "tiny": DatasetSpec("tiny", "one 5-input PLA, for tests"),
    }

    def __init__(self, heap: TracedHeap):
        super().__init__(heap)
        #: (initial cubes, final cubes, verified) per minimized PLA.
        self.results: List[tuple] = []
        #: Minimized covers, retained until program exit like the output
        #: the real program writes when it finishes — espresso's only
        #: whole-run-lifetime allocations.
        self._retained_covers: List[tuple] = []

    def run(self, dataset: str, scale: float = 1.0) -> None:
        self.dataset_spec(dataset)
        if dataset == "tiny":
            jobs = [(5, 12, 0.4, 17)]
        elif dataset == "train":
            count = max(1, round(6 * scale))
            jobs = [(9, 55, 0.35, 8001 + i) for i in range(count)]
        else:
            count = max(1, round(6 * scale))
            jobs = [(10, 65, 0.30, 9002 + i) for i in range(count)]
        for nvars, terms, dont_care_rate, seed in jobs:
            self.minimize_pla(nvars, terms, dont_care_rate, seed)

    def minimize_pla_text(self, text: str) -> str:
        """Minimize a Berkeley-format PLA description; returns PLA text.

        The file interface of the real espresso: parse, minimize, verify,
        and render the minimized cover back to PLA format.
        """
        pla = parse_pla(text)
        space = CubeSpace(pla.inputs)
        masks = [space.from_string(term) for term in pla.terms]
        minimizer = EspressoMinimizer(self.heap, space)
        result = minimizer.minimize(masks)
        verified = minimizer.verify(masks, result.cover)
        self.results.append(
            (result.initial_cubes, result.final_cubes, verified)
        )
        minimized = PlaFile(
            inputs=pla.inputs,
            terms=[space.to_string(cube.mask) for cube in result.cover.cubes],
            input_labels=pla.input_labels,
            output_label=pla.output_label,
        )
        self._retained_covers.append((minimizer, result.cover))
        return format_pla(minimized)

    @traced
    def minimize_pla(self, nvars: int, terms: int, dont_care_rate: float,
                     seed: int) -> MinimizeResult:
        """Generate, minimize, and verify one PLA."""
        space = CubeSpace(nvars)
        strings = pla_terms(nvars, terms, seed=seed,
                            dont_care_rate=dont_care_rate)
        masks = [space.from_string(term) for term in strings]
        minimizer = EspressoMinimizer(self.heap, space)
        result = minimizer.minimize(masks)
        verified = minimizer.verify(masks, result.cover)
        self.results.append((result.initial_cubes, result.final_cubes, verified))
        self._retained_covers.append((minimizer, result.cover))
        return result
