"""The espresso workload: a traced two-level logic minimizer."""

from repro.workloads.espresso.algorithm import EspressoMinimizer, MinimizeResult
from repro.workloads.espresso.pla import PlaError, PlaFile, format_pla, parse_pla
from repro.workloads.espresso.cubes import Cover, Cube, CubeLib, CubeSpace
from repro.workloads.espresso.workload import EspressoWorkload

__all__ = [
    "EspressoMinimizer",
    "MinimizeResult",
    "Cover",
    "Cube",
    "CubeLib",
    "CubeSpace",
    "PlaError",
    "PlaFile",
    "format_pla",
    "parse_pla",
    "EspressoWorkload",
]
