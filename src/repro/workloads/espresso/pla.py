"""Berkeley PLA file format, the interface of the real espresso.

Espresso 2.3 reads and writes the Berkeley two-level PLA format: header
directives (``.i``, ``.o``, ``.p``, ``.ilb``, ``.ob``), one product term
per line (input plane over ``{0,1,-}`` plus output plane), and ``.e`` to
end.  This module implements the single-output subset the reproduction's
minimizer operates on, so real ``.pla`` files drive the traced workload
and minimized covers can be written back out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["PlaError", "PlaFile", "parse_pla", "format_pla"]


class PlaError(Exception):
    """Raised on malformed PLA input."""


@dataclass
class PlaFile:
    """One parsed (single-output) PLA description."""

    inputs: int
    terms: List[str] = field(default_factory=list)
    input_labels: Optional[List[str]] = None
    output_label: Optional[str] = None

    def __post_init__(self) -> None:
        for term in self.terms:
            _check_term(term, self.inputs)
        if self.input_labels is not None and len(self.input_labels) != self.inputs:
            raise PlaError(
                f"{len(self.input_labels)} input labels for "
                f"{self.inputs} inputs"
            )


def _check_term(term: str, inputs: int) -> None:
    if len(term) != inputs:
        raise PlaError(
            f"term {term!r} has {len(term)} columns, expected {inputs}"
        )
    bad = set(term) - {"0", "1", "-"}
    if bad:
        raise PlaError(f"term {term!r} contains {sorted(bad)}")


def parse_pla(text: str) -> PlaFile:
    """Parse a single-output PLA description.

    Accepts the directives espresso's examples use; multi-output files
    (``.o`` > 1) are rejected explicitly rather than mis-read.  Terms may
    appear with or without an explicit output column; an output column of
    ``0`` drops the term (it belongs to the off-set).
    """
    inputs: Optional[int] = None
    declared_terms: Optional[int] = None
    input_labels: Optional[List[str]] = None
    output_label: Optional[str] = None
    terms: List[str] = []
    ended = False

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if ended:
            raise PlaError(f"line {lineno}: content after .e")
        if line.startswith("."):
            parts = line.split()
            directive = parts[0]
            if directive == ".i":
                inputs = _int_arg(parts, lineno)
            elif directive == ".o":
                if _int_arg(parts, lineno) != 1:
                    raise PlaError(
                        f"line {lineno}: only single-output PLAs supported"
                    )
            elif directive == ".p":
                declared_terms = _int_arg(parts, lineno)
            elif directive == ".ilb":
                input_labels = parts[1:]
            elif directive == ".ob":
                if len(parts) != 2:
                    raise PlaError(f"line {lineno}: .ob needs one label")
                output_label = parts[1]
            elif directive == ".e" or directive == ".end":
                ended = True
            else:
                raise PlaError(f"line {lineno}: unknown directive {directive}")
            continue
        if inputs is None:
            raise PlaError(f"line {lineno}: term before .i declaration")
        columns = line.split()
        term = columns[0]
        _check_term(term, inputs)
        if len(columns) == 1:
            terms.append(term)
        elif len(columns) == 2:
            if columns[1] not in ("0", "1", "-"):
                raise PlaError(f"line {lineno}: bad output column {columns[1]!r}")
            if columns[1] == "1":
                terms.append(term)
        else:
            raise PlaError(f"line {lineno}: too many columns")

    if inputs is None:
        raise PlaError("missing .i declaration")
    if declared_terms is not None and declared_terms != len(terms):
        raise PlaError(
            f".p declares {declared_terms} terms, file has {len(terms)}"
        )
    return PlaFile(
        inputs=inputs,
        terms=terms,
        input_labels=input_labels,
        output_label=output_label,
    )


def _int_arg(parts: List[str], lineno: int) -> int:
    if len(parts) != 2:
        raise PlaError(f"line {lineno}: {parts[0]} needs one argument")
    try:
        value = int(parts[1])
    except ValueError:
        raise PlaError(f"line {lineno}: bad number {parts[1]!r}") from None
    if value < 1:
        raise PlaError(f"line {lineno}: {parts[0]} must be positive")
    return value


def format_pla(pla: PlaFile) -> str:
    """Render a :class:`PlaFile` back to Berkeley PLA text."""
    lines = [f".i {pla.inputs}", ".o 1"]
    if pla.input_labels:
        lines.append(".ilb " + " ".join(pla.input_labels))
    if pla.output_label:
        lines.append(f".ob {pla.output_label}")
    lines.append(f".p {len(pla.terms)}")
    for term in pla.terms:
        lines.append(f"{term} 1")
    lines.append(".e")
    return "\n".join(lines) + "\n"
