"""The perl workload: a traced mini-Perl (perl4-lite) interpreter."""

from repro.workloads.perl.interp import AV, SV, PerlInterp, PerlRuntimeError
from repro.workloads.perl.parser import PerlLexer, PerlParser, PerlSyntaxError, POp
from repro.workloads.perl.regex import Regex, RegexError, compile_pattern
from repro.workloads.perl.workload import FILL_SCRIPT, SORT_SCRIPT, PerlWorkload

__all__ = [
    "AV",
    "SV",
    "PerlInterp",
    "PerlRuntimeError",
    "PerlLexer",
    "PerlParser",
    "PerlSyntaxError",
    "POp",
    "Regex",
    "RegexError",
    "compile_pattern",
    "FILL_SCRIPT",
    "SORT_SCRIPT",
    "PerlWorkload",
]
