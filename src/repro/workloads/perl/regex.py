"""Compatibility shim: the regex-lite engine lives in
:mod:`repro.workloads.regexlite` (shared with the gawk workload)."""

from repro.workloads.regexlite import (  # noqa: F401
    MATCH_STATE_SIZE,
    RX_NODE_SIZE,
    Regex,
    RegexError,
    compile_pattern,
)

__all__ = [
    "MATCH_STATE_SIZE",
    "RX_NODE_SIZE",
    "Regex",
    "RegexError",
    "compile_pattern",
]
