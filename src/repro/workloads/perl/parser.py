"""Lexer and parser for the mini-Perl (perl4-lite) language.

The perl workload interprets a small report-extraction language in the
spirit of Perl 4: scalars (``$x``), arrays (``@a``), hashes (``%h``),
``while (<IN>)`` input loops, ``foreach``, list builtins (``push``,
``split``, ``sort``, ``join``, ...), string operators (``.``, ``eq``),
and ``=~ m/../`` regex matching backed by the regex-lite engine in
:mod:`repro.workloads.perl.regex`.

The grammar is deliberately a different shape from the mini-AWK language —
the two interpreters model two unrelated C programs, and their allocation
sites must differ the way gawk's and perl's do.

AST vertices are traced allocations (Perl's op nodes); syntax errors raise
:class:`PerlSyntaxError`.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.runtime.heap import HeapObject

__all__ = ["PerlSyntaxError", "POp", "PerlLexer", "PerlParser", "OP_SIZE"]

#: Modelled size of a perl op-tree node.
OP_SIZE = 40

PToken = Tuple[str, object, int]

_KEYWORDS = {"while", "foreach", "if", "else", "print", "my"}
_BUILTINS = {
    "push", "pop", "shift", "scalar", "sort", "reverse", "split", "join",
    "length", "substr", "chomp", "uc", "lc", "keys", "defined", "int",
    "sprintf", "index", "exists",
}
_TWO_CHAR = {"==", "!=", "<=", ">=", "=~", "&&", "||", "++", "--", "eq", "ne"}


class PerlSyntaxError(Exception):
    """Raised on malformed mini-Perl source."""


class POp:
    """One mini-Perl op-tree vertex, paired with its traced allocation."""

    __slots__ = ("kind", "value", "kids", "handle")

    def __init__(self, kind: str, value: object, kids: List["POp"],
                 handle: HeapObject):
        self.kind = kind
        self.value = value
        self.kids = kids
        self.handle = handle

    def __repr__(self) -> str:
        return f"<pop {self.kind} {self.value!r} kids={len(self.kids)}>"


class PerlLexer:
    """Tokenizes mini-Perl source.

    ``/`` starts a regex literal when it cannot be a division — after
    ``(``, ``,``, or ``=~`` — and ``m/.../`` is always a regex.
    """

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self._prev: Optional[PToken] = None

    def tokens(self) -> List[PToken]:
        """The full token stream, ending with ``eof``."""
        result: List[PToken] = []
        while True:
            tok = self._next()
            result.append(tok)
            self._prev = tok
            if tok[0] == "eof":
                return result

    def _skip_space(self) -> None:
        src, n = self.source, len(self.source)
        while self.pos < n:
            ch = src[self.pos]
            if ch == "\n":
                self.line += 1
                self.pos += 1
            elif ch in " \t\r":
                self.pos += 1
            elif ch == "#":
                while self.pos < n and src[self.pos] != "\n":
                    self.pos += 1
            else:
                return

    def _next(self) -> PToken:
        self._skip_space()
        src, n = self.source, len(self.source)
        if self.pos >= n:
            return ("eof", None, self.line)
        ch = src[self.pos]
        if ch in "$@%" and self.pos + 1 < n and (
            src[self.pos + 1].isalpha() or src[self.pos + 1] == "_"
        ):
            sigil = {"$": "scalar-var", "@": "array-var", "%": "hash-var"}[ch]
            self.pos += 1
            return (sigil, self._word(), self.line)
        if ch.isdigit():
            return self._number()
        if ch == '"':
            return self._string()
        if ch == "<" and src[self.pos : self.pos + 4] == "<IN>":
            self.pos += 4
            return ("readline", None, self.line)
        if ch.isalpha() or ch == "_":
            start_line = self.line
            word = self._word()
            if word == "m" and self.pos < n and src[self.pos] == "/":
                return ("regex", self._regex_body(), start_line)
            if word in _KEYWORDS:
                return (word, word, start_line)
            if word in _BUILTINS:
                return ("builtin", word, start_line)
            if word in ("eq", "ne", "lt", "gt"):
                return ("op", word, start_line)
            return ("bareword", word, start_line)
        if ch == "/" and self._regex_position():
            self.pos += 1
            # Rewind: _regex_body expects pos at the opening slash.
            self.pos -= 1
            return ("regex", self._regex_body(), self.line)
        two = src[self.pos : self.pos + 2]
        if two in _TWO_CHAR:
            self.pos += 2
            return ("op", two, self.line)
        if ch in "+-*/%<>=!.,;(){}[]":
            self.pos += 1
            return ("op", ch, self.line)
        raise PerlSyntaxError(f"line {self.line}: unexpected character {ch!r}")

    def _regex_position(self) -> bool:
        if self._prev is None:
            return True
        kind, value, _ = self._prev
        return kind == "op" and value in ("(", ",", "=~")

    def _word(self) -> str:
        src, n = self.source, len(self.source)
        start = self.pos
        while self.pos < n and (src[self.pos].isalnum() or src[self.pos] == "_"):
            self.pos += 1
        return src[start : self.pos]

    def _number(self) -> PToken:
        src, n = self.source, len(self.source)
        start = self.pos
        while self.pos < n and (src[self.pos].isdigit() or src[self.pos] == "."):
            self.pos += 1
        return ("number", float(src[start : self.pos]), self.line)

    def _string(self) -> PToken:
        self.pos += 1
        chars: List[str] = []
        src, n = self.source, len(self.source)
        while self.pos < n and src[self.pos] != '"':
            ch = src[self.pos]
            if ch == "\\" and self.pos + 1 < n:
                self.pos += 1
                ch = {"n": "\n", "t": "\t"}.get(src[self.pos], src[self.pos])
            chars.append(ch)
            self.pos += 1
        if self.pos >= n:
            raise PerlSyntaxError(f"line {self.line}: unterminated string")
        self.pos += 1
        return ("string", "".join(chars), self.line)

    def _regex_body(self) -> str:
        if self.source[self.pos] != "/":
            raise PerlSyntaxError(f"line {self.line}: expected regex")
        self.pos += 1
        chars: List[str] = []
        src, n = self.source, len(self.source)
        while self.pos < n and src[self.pos] != "/":
            ch = src[self.pos]
            if ch == "\\" and self.pos + 1 < n:
                chars.append(ch)
                self.pos += 1
                ch = src[self.pos]
            chars.append(ch)
            self.pos += 1
        if self.pos >= n:
            raise PerlSyntaxError(f"line {self.line}: unterminated regex")
        self.pos += 1
        return "".join(chars)


class PerlParser:
    """Recursive-descent parser building a traced op tree."""

    def __init__(self, tokens: List[PToken],
                 alloc_op: Callable[[], HeapObject]):
        self._tokens = tokens
        self._index = 0
        self._alloc_op = alloc_op

    def _peek(self, ahead: int = 0) -> PToken:
        index = min(self._index + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> PToken:
        tok = self._tokens[self._index]
        if tok[0] != "eof":
            self._index += 1
        return tok

    def _match(self, kind: str, value: Optional[object] = None) -> bool:
        tok = self._peek()
        if tok[0] != kind or (value is not None and tok[1] != value):
            return False
        self._advance()
        return True

    def _expect(self, kind: str, value: Optional[object] = None) -> PToken:
        tok = self._peek()
        if tok[0] != kind or (value is not None and tok[1] != value):
            want = value if value is not None else kind
            raise PerlSyntaxError(
                f"line {tok[2]}: expected {want!r}, found {tok[1]!r}"
            )
        return self._advance()

    def _op(self, kind: str, value: object = None,
            kids: Optional[List[POp]] = None) -> POp:
        return POp(kind, value, kids or [], self._alloc_op())

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def parse_program(self) -> List[POp]:
        """Parse the whole script as a statement list."""
        stmts = []
        while self._peek()[0] != "eof":
            stmts.append(self._statement())
        return stmts

    def _statement(self) -> POp:
        tok = self._peek()
        if tok[0] == "op" and tok[1] == "{":
            return self._block()
        if tok[0] == "while":
            return self._while()
        if tok[0] == "foreach":
            return self._foreach()
        if tok[0] == "if":
            return self._if()
        if tok[0] == "print":
            return self._print()
        expr = self._expression()
        self._expect("op", ";")
        return self._op("expr-stmt", None, [expr])

    def _block(self) -> POp:
        self._expect("op", "{")
        stmts = []
        while not self._match("op", "}"):
            if self._peek()[0] == "eof":
                raise PerlSyntaxError("unexpected end of script in block")
            stmts.append(self._statement())
        return self._op("block", None, stmts)

    def _while(self) -> POp:
        self._expect("while")
        self._expect("op", "(")
        if self._peek()[0] == "readline":
            self._advance()
            self._expect("op", ")")
            return self._op("while-read", None, [self._block()])
        cond = self._expression()
        self._expect("op", ")")
        return self._op("while", None, [cond, self._block()])

    def _foreach(self) -> POp:
        self._expect("foreach")
        var = self._expect("scalar-var")[1]
        self._expect("op", "(")
        source = self._expression()
        self._expect("op", ")")
        return self._op("foreach", var, [source, self._block()])

    def _if(self) -> POp:
        self._expect("if")
        self._expect("op", "(")
        cond = self._expression()
        self._expect("op", ")")
        then = self._block()
        kids = [cond, then]
        if self._match("else"):
            if self._peek()[0] == "if":
                kids.append(self._if())
            else:
                kids.append(self._block())
        return self._op("if", None, kids)

    def _print(self) -> POp:
        self._expect("print")
        args = [self._expression()]
        while self._match("op", ","):
            args.append(self._expression())
        self._expect("op", ";")
        return self._op("print", None, args)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _expression(self) -> POp:
        return self._assign()

    def _assign(self) -> POp:
        target = self._logical()
        tok = self._peek()
        if tok[0] == "op" and tok[1] == "=":
            if target.kind not in (
                "scalar", "array", "hash", "array-elem", "hash-elem"
            ):
                raise PerlSyntaxError(
                    f"line {tok[2]}: cannot assign to {target.kind}"
                )
            self._advance()
            return self._op("assign", None, [target, self._assign()])
        return target

    def _logical(self) -> POp:
        left = self._comparison()
        while True:
            tok = self._peek()
            if tok[0] == "op" and tok[1] in ("&&", "||"):
                self._advance()
                left = self._op("logical", tok[1], [left, self._comparison()])
            else:
                return left

    def _comparison(self) -> POp:
        left = self._match_expr()
        tok = self._peek()
        if tok[0] == "op" and tok[1] in (
            "==", "!=", "<", "<=", ">", ">=", "eq", "ne", "lt", "gt"
        ):
            self._advance()
            return self._op("compare", tok[1], [left, self._match_expr()])
        return left

    def _match_expr(self) -> POp:
        left = self._concat()
        tok = self._peek()
        if tok[0] == "op" and tok[1] == "=~":
            self._advance()
            pattern = self._expect("regex")
            return self._op("match", pattern[1], [left])
        return left

    def _concat(self) -> POp:
        left = self._additive()
        while True:
            tok = self._peek()
            if tok[0] == "op" and tok[1] == ".":
                self._advance()
                left = self._op("concat", None, [left, self._additive()])
            else:
                return left

    def _additive(self) -> POp:
        left = self._multiplicative()
        while True:
            tok = self._peek()
            if tok[0] == "op" and tok[1] in ("+", "-"):
                self._advance()
                left = self._op(
                    "arith", tok[1], [left, self._multiplicative()]
                )
            else:
                return left

    def _multiplicative(self) -> POp:
        left = self._unary()
        while True:
            tok = self._peek()
            if tok[0] == "op" and tok[1] in ("*", "/", "%"):
                self._advance()
                left = self._op("arith", tok[1], [left, self._unary()])
            elif tok[0] == "bareword" and tok[1] == "x":
                # Perl's string-repetition operator.
                self._advance()
                left = self._op("repeat", None, [left, self._unary()])
            else:
                return left

    def _unary(self) -> POp:
        tok = self._peek()
        if tok[0] == "op" and tok[1] == "-":
            self._advance()
            return self._op("neg", None, [self._unary()])
        if tok[0] == "op" and tok[1] == "!":
            self._advance()
            return self._op("not", None, [self._unary()])
        return self._primary()

    def _primary(self) -> POp:
        tok = self._advance()
        kind, value, line = tok
        if kind == "number":
            return self._op("number", value)
        if kind == "string":
            return self._op("string", value)
        if kind == "readline":
            return self._op("readline", None)
        if kind == "scalar-var":
            if self._match("op", "["):
                index = self._expression()
                self._expect("op", "]")
                return self._op("array-elem", value, [index])
            if self._match("op", "{"):
                key = self._expression()
                self._expect("op", "}")
                return self._op("hash-elem", value, [key])
            return self._op("scalar", value)
        if kind == "array-var":
            return self._op("array", value)
        if kind == "hash-var":
            return self._op("hash", value)
        if kind == "builtin":
            return self._builtin_call(value, line)
        if kind == "op" and value == "(":
            first = self._expression()
            if self._peek()[0] == "op" and self._peek()[1] == ",":
                items = [first]
                while self._match("op", ","):
                    items.append(self._expression())
                self._expect("op", ")")
                return self._op("list", None, items)
            self._expect("op", ")")
            return first
        raise PerlSyntaxError(f"line {line}: unexpected token {value!r}")

    def _builtin_call(self, name: str, line: int) -> POp:
        self._expect("op", "(")
        args: List[POp] = []
        if not self._match("op", ")"):
            while True:
                if self._peek()[0] == "regex":
                    pattern = self._advance()
                    args.append(self._op("pattern", pattern[1]))
                else:
                    args.append(self._expression())
                if self._match("op", ")"):
                    break
                self._expect("op", ",")
        return self._op("call", name, args)
