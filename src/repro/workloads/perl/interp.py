"""Tree-walking interpreter for mini-Perl.

Models Perl 4's runtime allocation: scalar values (SVs) are traced cells
with separately-allocated string buffers, arrays own a realloc-grown slot
block (so ``push`` churns slot blocks the way perl's ``av_extend`` does),
hashes allocate an entry record per key, and compiled regexes are
long-lived node chains while each match allocates short-lived scratch.

Copy semantics throughout: assignment, ``push``, ``foreach`` and friends
copy values, so temporaries are born and die at the statement rhythm the
paper's PERL traces show (median lifetime 887 bytes).

Ownership: :meth:`PerlInterp.eval` returns an SV the caller owns;
:meth:`PerlInterp.eval_list` returns a list of owned SVs.  Storing
transfers ownership; everything else must be freed by the consumer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.runtime.heap import HeapObject, TracedHeap, traced
from repro.workloads.perl.parser import (
    OP_SIZE,
    PerlLexer,
    PerlParser,
    PerlSyntaxError,
    POp,
)
from repro.workloads.perl.regex import Regex, compile_pattern

__all__ = ["SV", "AV", "PerlInterp", "PerlRuntimeError"]

SV_SIZE = 24
STRBUF_HEADER = 12
AV_STRUCT_SIZE = 20
AV_INITIAL_CAPACITY = 4
HE_SIZE = 32


class PerlRuntimeError(Exception):
    """Raised on runtime errors in the mini-Perl program."""


class SV:
    """One scalar value: traced cell plus optional string buffer."""

    __slots__ = ("kind", "num", "text", "cell", "buf")

    def __init__(self, kind: str, num: float, text: str,
                 cell: HeapObject, buf: Optional[HeapObject]):
        self.kind = kind  # "num" | "str" | "undef"
        self.num = num
        self.text = text
        self.cell = cell
        self.buf = buf


class AV:
    """One array: its element SVs plus the traced struct and slot block."""

    __slots__ = ("items", "struct", "slots", "capacity")

    def __init__(self, items: List[SV], struct: HeapObject,
                 slots: HeapObject, capacity: int):
        self.items = items
        self.struct = struct
        self.slots = slots
        self.capacity = capacity


class PerlInterp:
    """Executes a parsed mini-Perl script over an input file."""

    def __init__(self, heap: TracedHeap):
        self.heap = heap
        self.scalars: Dict[str, SV] = {}
        self.arrays: Dict[str, AV] = {}
        self.hashes: Dict[str, Dict[str, Tuple[HeapObject, SV]]] = {}
        self.regex_cache: Dict[str, Regex] = {}
        self.program: List[POp] = []
        self.input_lines: List[str] = []
        self.input_pos = 0
        self.output: List[str] = []

    # ------------------------------------------------------------------
    # Allocation layers
    # ------------------------------------------------------------------

    @traced
    def xalloc(self, size: int) -> HeapObject:
        """Checked allocation wrapper (perl's ``safemalloc``)."""
        return self.heap.malloc(size)

    @traced
    def sv_new_num(self, value: float) -> SV:
        """A fresh numeric scalar."""
        cell = self.xalloc(SV_SIZE)
        self.heap.touch(cell, 1)
        return SV("num", value, "", cell, None)

    @traced
    def sv_new_str(self, text: str) -> SV:
        """A fresh string scalar owning a character buffer."""
        cell = self.xalloc(SV_SIZE)
        buf = self.xalloc(STRBUF_HEADER + max(1, len(text)))
        self.heap.touch(buf, 2 + len(text) // 2)
        return SV("str", 0.0, text, cell, buf)

    @traced
    def sv_undef(self) -> SV:
        """A fresh undefined scalar."""
        cell = self.xalloc(SV_SIZE)
        return SV("undef", 0.0, "", cell, None)

    @traced
    def sv_copy(self, sv: SV) -> SV:
        """A fresh scalar with the same value."""
        if sv.kind == "num":
            return self.sv_new_num(sv.num)
        if sv.kind == "str":
            return self.sv_new_str(sv.text)
        return self.sv_undef()

    @traced
    def sv_store_copy(self, sv: SV) -> SV:
        """The copy made when a value is stored into a container.

        A distinct traced layer from :meth:`sv_copy` so that stored
        (frequently retained) values get their own allocation sites, as
        perl's ``apush``/``hstore`` copy paths do.
        """
        return self.sv_copy(sv)

    def sv_free(self, sv: SV) -> None:
        """Release a scalar and its buffer."""
        if sv.buf is not None:
            self.heap.free(sv.buf)
        self.heap.free(sv.cell)

    @traced
    def av_new(self) -> AV:
        """A fresh empty array with an initial slot block."""
        struct = self.xalloc(AV_STRUCT_SIZE)
        slots = self.xalloc(8 + 8 * AV_INITIAL_CAPACITY)
        return AV([], struct, slots, AV_INITIAL_CAPACITY)

    @traced
    def av_push(self, av: AV, sv: SV) -> None:
        """Append ``sv`` (ownership transferred), growing slots as needed."""
        if len(av.items) >= av.capacity:
            av.capacity *= 2
            new_slots = self.xalloc(8 + 8 * av.capacity)
            self.heap.touch(new_slots, len(av.items))
            self.heap.free(av.slots)
            av.slots = new_slots
        self.heap.touch(av.slots, 1)
        av.items.append(sv)

    def av_free(self, av: AV) -> None:
        """Release an array, its slots, and every element."""
        for sv in av.items:
            self.sv_free(sv)
        self.heap.free(av.slots)
        self.heap.free(av.struct)

    # ------------------------------------------------------------------
    # Coercions
    # ------------------------------------------------------------------

    def num_of(self, sv: SV) -> float:
        """Numeric value (touches the cell)."""
        self.heap.touch(sv.cell, 1)
        if sv.kind == "num":
            return sv.num
        if sv.kind == "undef":
            return 0.0
        if sv.buf is not None:
            self.heap.touch(sv.buf, 1)
        head = sv.text.strip()
        digits = ""
        for ch in head:
            if ch.isdigit() or (ch in "+-." and not digits):
                digits += ch
            else:
                break
        try:
            return float(digits)
        except ValueError:
            return 0.0

    def str_of(self, sv: SV) -> str:
        """String value (touches the cell and buffer)."""
        self.heap.touch(sv.cell, 1)
        if sv.kind == "str":
            if sv.buf is not None:
                self.heap.touch(sv.buf, 1 + len(sv.text) // 4)
            return sv.text
        if sv.kind == "undef":
            return ""
        if sv.num == int(sv.num):
            return str(int(sv.num))
        return repr(sv.num)

    def truthy(self, sv: SV) -> bool:
        """Perl truth: undef, 0, and "" are false."""
        if sv.kind == "undef":
            return False
        if sv.kind == "num":
            return sv.num != 0
        return sv.text not in ("", "0")

    # ------------------------------------------------------------------
    # Program execution
    # ------------------------------------------------------------------

    @traced
    def compile(self, source: str) -> None:
        """Lex and parse ``source`` into this interpreter's op tree."""
        tokens = PerlLexer(source).tokens()
        parser = PerlParser(tokens, lambda: self.xalloc(OP_SIZE))
        self.program = parser.parse_program()
        if not self.program:
            raise PerlSyntaxError("empty script")

    @traced
    def run(self, input_lines: List[str]) -> None:
        """Execute the script with ``input_lines`` on filehandle IN."""
        self.input_lines = input_lines
        self.input_pos = 0
        for stmt in self.program:
            self.exec_stmt(stmt)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    @traced
    def exec_stmt(self, op: POp) -> None:
        kind = op.kind
        if kind == "block":
            for stmt in op.kids:
                self.exec_stmt(stmt)
        elif kind == "expr-stmt":
            self.sv_free(self.eval(op.kids[0]))
        elif kind == "while-read":
            self.exec_while_read(op)
        elif kind == "while":
            cond, body = op.kids
            while True:
                test = self.eval(cond)
                go = self.truthy(test)
                self.sv_free(test)
                if not go:
                    break
                self.exec_stmt(body)
        elif kind == "foreach":
            self.exec_foreach(op)
        elif kind == "if":
            cond = self.eval(op.kids[0])
            taken = self.truthy(cond)
            self.sv_free(cond)
            if taken:
                self.exec_stmt(op.kids[1])
            elif len(op.kids) > 2:
                self.exec_stmt(op.kids[2])
        elif kind == "print":
            self.exec_print(op)
        else:
            raise PerlRuntimeError(f"unknown statement kind {kind!r}")

    @traced
    def exec_while_read(self, op: POp) -> None:
        """``while (<IN>) { ... }``: iterate input lines through ``$_``."""
        body = op.kids[0]
        while self.input_pos < len(self.input_lines):
            line = self.input_lines[self.input_pos]
            self.input_pos += 1
            self.set_scalar("_", self.sv_new_str(line + "\n"))
            self.exec_stmt(body)

    @traced
    def exec_foreach(self, op: POp) -> None:
        """``foreach $v (LIST) { ... }``: copy each element into ``$v``."""
        values = self.eval_list(op.kids[0])
        body = op.kids[1]
        try:
            for sv in values:
                self.set_scalar(op.value, self.sv_copy(sv))
                self.exec_stmt(body)
        finally:
            for sv in values:
                self.sv_free(sv)

    @traced
    def exec_print(self, op: POp) -> None:
        parts = []
        for arg in op.kids:
            sv = self.eval(arg)
            parts.append(self.str_of(sv))
            self.sv_free(sv)
        text = "".join(parts)
        buf = self.xalloc(STRBUF_HEADER + max(1, len(text)))
        self.heap.touch(buf, 1 + len(text) // 4)
        self.output.append(text.rstrip("\n"))
        self.heap.free(buf)

    # ------------------------------------------------------------------
    # Scalar-context evaluation
    # ------------------------------------------------------------------

    @traced
    def eval(self, op: POp) -> SV:
        kind = op.kind
        if kind == "number":
            return self.sv_new_num(op.value)
        if kind == "string":
            return self.sv_new_str(op.value)
        if kind == "scalar":
            return self.read_scalar(op.value)
        if kind == "array":
            # An array in scalar context is its length.
            av = self.arrays.get(op.value)
            return self.sv_new_num(float(len(av.items) if av else 0))
        if kind == "array-elem":
            return self.eval_array_elem(op)
        if kind == "hash-elem":
            return self.eval_hash_elem(op)
        if kind == "assign":
            return self.eval_assign(op)
        if kind == "concat":
            return self.eval_concat(op)
        if kind == "arith":
            return self.eval_arith(op)
        if kind == "compare":
            return self.eval_compare(op)
        if kind == "logical":
            left = self.eval(op.kids[0])
            take_right = self.truthy(left) == (op.value == "&&")
            if take_right:
                self.sv_free(left)
                return self.eval(op.kids[1])
            return left
        if kind == "match":
            return self.eval_match(op)
        if kind == "repeat":
            left = self.eval(op.kids[0])
            count_sv = self.eval(op.kids[1])
            text = self.str_of(left)
            count = max(0, int(self.num_of(count_sv)))
            self.sv_free(left)
            self.sv_free(count_sv)
            return self.sv_new_str(text * count)
        if kind == "neg":
            operand = self.eval(op.kids[0])
            value = -self.num_of(operand)
            self.sv_free(operand)
            return self.sv_new_num(value)
        if kind == "not":
            operand = self.eval(op.kids[0])
            value = 0.0 if self.truthy(operand) else 1.0
            self.sv_free(operand)
            return self.sv_new_num(value)
        if kind == "readline":
            if self.input_pos < len(self.input_lines):
                line = self.input_lines[self.input_pos]
                self.input_pos += 1
                return self.sv_new_str(line + "\n")
            return self.sv_undef()
        if kind == "call":
            return self.call_builtin_scalar(op)
        if kind == "list":
            # A list in scalar context yields its last element.
            values = [self.eval(kid) for kid in op.kids]
            for sv in values[:-1]:
                self.sv_free(sv)
            return values[-1]
        raise PerlRuntimeError(f"unknown expression kind {kind!r}")

    @traced
    def read_scalar(self, name: str) -> SV:
        """The value of ``$name``, as a fresh copy."""
        sv = self.scalars.get(name)
        if sv is None:
            return self.sv_undef()
        return self.sv_copy(sv)

    def set_scalar(self, name: str, sv: SV) -> None:
        """Store ``sv`` into ``$name``, taking ownership."""
        old = self.scalars.get(name)
        if old is not None:
            self.sv_free(old)
        self.scalars[name] = sv

    @traced
    def eval_array_elem(self, op: POp) -> SV:
        index_sv = self.eval(op.kids[0])
        index = int(self.num_of(index_sv))
        self.sv_free(index_sv)
        av = self.arrays.get(op.value)
        if av is None or not -len(av.items) <= index < len(av.items):
            return self.sv_undef()
        self.heap.touch(av.slots, 1)
        return self.sv_copy(av.items[index])

    @traced
    def eval_hash_elem(self, op: POp) -> SV:
        key_sv = self.eval(op.kids[0])
        key = self.str_of(key_sv)
        self.sv_free(key_sv)
        table = self.hashes.get(op.value)
        if table is None or key not in table:
            return self.sv_undef()
        entry, sv = table[key]
        self.heap.touch(entry, 1)
        return self.sv_copy(sv)

    @traced
    def eval_assign(self, op: POp) -> SV:
        target, expr = op.kids
        if target.kind == "array":
            values = self.eval_list(expr)
            self.store_array(target.value, values)
            return self.sv_new_num(float(len(values)))
        value = self.eval(expr)
        self.store_scalar_target(target, value)
        return self.sv_copy(value)

    def store_scalar_target(self, target: POp, value: SV) -> None:
        """Store an owned SV into a scalar-shaped lvalue."""
        if target.kind == "scalar":
            self.set_scalar(target.value, value)
        elif target.kind == "array-elem":
            index_sv = self.eval(target.kids[0])
            index = int(self.num_of(index_sv))
            self.sv_free(index_sv)
            av = self.arrays.get(target.value)
            if av is None:
                av = self.arrays[target.value] = self.av_new()
            while len(av.items) <= index:
                self.av_push(av, self.sv_undef())
            self.sv_free(av.items[index])
            self.heap.touch(av.slots, 1)
            av.items[index] = value
        elif target.kind == "hash-elem":
            key_sv = self.eval(target.kids[0])
            key = self.str_of(key_sv)
            self.sv_free(key_sv)
            self.hash_store(target.value, key, value)
        else:
            raise PerlRuntimeError(f"cannot assign to {target.kind!r}")

    @traced
    def hash_store(self, name: str, key: str, value: SV) -> None:
        """Store into ``%name``, allocating an entry record for new keys."""
        table = self.hashes.setdefault(name, {})
        existing = table.get(key)
        if existing is None:
            entry = self.xalloc(HE_SIZE + len(key))
            self.heap.touch(entry, 2)
            table[key] = (entry, value)
        else:
            entry, old = existing
            self.sv_free(old)
            self.heap.touch(entry, 1)
            table[key] = (entry, value)

    def store_array(self, name: str, values: List[SV]) -> None:
        """Replace ``@name`` with ``values`` (ownership transferred)."""
        old = self.arrays.get(name)
        if old is not None:
            self.av_free(old)
        av = self.av_new()
        for sv in values:
            self.av_push(av, sv)
        self.arrays[name] = av

    @traced
    def eval_concat(self, op: POp) -> SV:
        left = self.eval(op.kids[0])
        right = self.eval(op.kids[1])
        text = self.str_of(left) + self.str_of(right)
        self.sv_free(left)
        self.sv_free(right)
        return self.sv_new_str(text)

    @traced
    def eval_arith(self, op: POp) -> SV:
        left = self.eval(op.kids[0])
        right = self.eval(op.kids[1])
        a, b = self.num_of(left), self.num_of(right)
        self.sv_free(left)
        self.sv_free(right)
        operator = op.value
        if operator == "+":
            value = a + b
        elif operator == "-":
            value = a - b
        elif operator == "*":
            value = a * b
        elif operator == "/":
            if b == 0:
                raise PerlRuntimeError("Illegal division by zero")
            value = a / b
        else:  # %
            if b == 0:
                raise PerlRuntimeError("Illegal modulus zero")
            value = float(int(a) % int(b))
        return self.sv_new_num(value)

    @traced
    def eval_compare(self, op: POp) -> SV:
        left = self.eval(op.kids[0])
        right = self.eval(op.kids[1])
        operator = op.value
        if operator in ("eq", "ne", "lt", "gt"):
            a, b = self.str_of(left), self.str_of(right)
            result = {
                "eq": a == b, "ne": a != b, "lt": a < b, "gt": a > b
            }[operator]
        else:
            a, b = self.num_of(left), self.num_of(right)
            result = {
                "==": a == b, "!=": a != b, "<": a < b,
                "<=": a <= b, ">": a > b, ">=": a >= b,
            }[operator]
        self.sv_free(left)
        self.sv_free(right)
        return self.sv_new_num(1.0 if result else 0.0)

    @traced
    def eval_match(self, op: POp) -> SV:
        """``EXPR =~ m/pat/``."""
        subject = self.eval(op.kids[0])
        text = self.str_of(subject)
        self.sv_free(subject)
        regex = self.get_regex(op.value)
        hit = regex.match(text, self.xalloc)
        return self.sv_new_num(1.0 if hit else 0.0)

    @traced
    def get_regex(self, pattern: str) -> Regex:
        """The compiled (and cached) form of ``pattern``."""
        regex = self.regex_cache.get(pattern)
        if regex is None:
            regex = compile_pattern(self.heap, pattern, self.xalloc)
            self.regex_cache[pattern] = regex
        return regex

    # ------------------------------------------------------------------
    # List-context evaluation and builtins
    # ------------------------------------------------------------------

    @traced
    def eval_list(self, op: POp) -> List[SV]:
        """Evaluate ``op`` in list context; returns owned SVs."""
        kind = op.kind
        if kind == "array":
            av = self.arrays.get(op.value)
            if av is None:
                return []
            self.heap.touch(av.slots, len(av.items))
            return [self.sv_copy(sv) for sv in av.items]
        if kind == "list":
            return [self.eval(kid) for kid in op.kids]
        if kind == "call":
            return self.call_builtin_list(op)
        return [self.eval(op)]

    @traced
    def call_builtin_scalar(self, op: POp) -> SV:
        """A builtin call whose result is used in scalar context."""
        name = op.value
        if name == "push":
            av = self.require_array(op.kids[0])
            for arg in op.kids[1:]:
                value = self.eval(arg)
                # Perl's apush stores its own copy; the argument temporary
                # dies at the statement boundary.  This gives pushed
                # (often retained) values their own allocation site.
                self.av_push(av, self.sv_store_copy(value))
                self.sv_free(value)
            return self.sv_new_num(float(len(av.items)))
        if name in ("pop", "shift"):
            av = self.require_array(op.kids[0])
            if not av.items:
                return self.sv_undef()
            self.heap.touch(av.slots, 1)
            return av.items.pop(-1 if name == "pop" else 0)
        if name == "scalar":
            values = self.eval_list(op.kids[0])
            count = len(values)
            for sv in values:
                self.sv_free(sv)
            return self.sv_new_num(float(count))
        if name == "length":
            sv = self.eval(op.kids[0])
            text = self.str_of(sv)
            self.sv_free(sv)
            return self.sv_new_num(float(len(text)))
        if name == "substr":
            return self.builtin_substr(op)
        if name == "chomp":
            return self.builtin_chomp(op)
        if name in ("uc", "lc"):
            sv = self.eval(op.kids[0])
            text = self.str_of(sv)
            self.sv_free(sv)
            return self.sv_new_str(
                text.upper() if name == "uc" else text.lower()
            )
        if name == "defined":
            sv = self.eval(op.kids[0])
            result = sv.kind != "undef"
            self.sv_free(sv)
            return self.sv_new_num(1.0 if result else 0.0)
        if name == "int":
            sv = self.eval(op.kids[0])
            value = float(int(self.num_of(sv)))
            self.sv_free(sv)
            return self.sv_new_num(value)
        if name == "join":
            return self.builtin_join(op)
        if name == "sprintf":
            return self.builtin_sprintf(op)
        if name == "index":
            haystack = self.eval(op.kids[0])
            needle = self.eval(op.kids[1])
            position = self.str_of(haystack).find(self.str_of(needle))
            self.sv_free(haystack)
            self.sv_free(needle)
            return self.sv_new_num(float(position))
        if name == "exists":
            target = op.kids[0]
            if target.kind != "hash-elem":
                raise PerlRuntimeError("exists needs a $hash{key} argument")
            key_sv = self.eval(target.kids[0])
            key = self.str_of(key_sv)
            self.sv_free(key_sv)
            table = self.hashes.get(target.value, {})
            return self.sv_new_num(1.0 if key in table else 0.0)
        if name in ("sort", "reverse", "split", "keys"):
            values = self.call_builtin_list(op)
            for sv in values[:-1]:
                self.sv_free(sv)
            if values:
                return values[-1]
            return self.sv_undef()
        raise PerlRuntimeError(f"unknown builtin {name!r}")

    @traced
    def call_builtin_list(self, op: POp) -> List[SV]:
        """A builtin call in list context."""
        name = op.value
        if name == "sort":
            values = self.eval_list(op.kids[0])
            values.sort(key=self.str_of)
            return values
        if name == "reverse":
            values = self.eval_list(op.kids[0])
            values.reverse()
            return values
        if name == "split":
            return self.builtin_split(op)
        if name == "keys":
            table = self.hashes.get(op.kids[0].value, {})
            keys = []
            for key, (entry, _) in table.items():
                self.heap.touch(entry, 1)
                keys.append(self.sv_new_str(key))
            return keys
        return [self.call_builtin_scalar(op)]

    def require_array(self, op: POp) -> AV:
        """The AV named by an ``@array`` argument, created on demand."""
        if op.kind != "array":
            raise PerlRuntimeError(
                f"builtin needs an @array argument, got {op.kind}"
            )
        av = self.arrays.get(op.value)
        if av is None:
            av = self.arrays[op.value] = self.av_new()
        return av

    @traced
    def builtin_split(self, op: POp) -> List[SV]:
        """``split(/pat/, expr)``.

        A single-atom pattern splits on characters matching that atom
        (runs collapse, Perl's awk-like whitespace behaviour); longer
        patterns split on their literal text.
        """
        if not op.kids or op.kids[0].kind != "pattern":
            raise PerlRuntimeError("split needs a /pattern/ first argument")
        pattern = op.kids[0].value
        subject = self.eval(op.kids[1])
        text = self.str_of(subject)
        self.sv_free(subject)
        regex = self.get_regex(pattern)
        if len(regex.atoms) == 1:
            atom = regex.atoms[0]
            pieces: List[str] = []
            current: List[str] = []
            for ch in text:
                self.heap.touch(regex.atoms[0].handle, 1)
                if Regex._matches_atom(atom, ch):
                    if current:
                        pieces.append("".join(current))
                        current = []
                else:
                    current.append(ch)
            if current:
                pieces.append("".join(current))
        else:
            pieces = [piece for piece in text.split(pattern) if piece != ""]
        return [self.sv_new_str(piece) for piece in pieces]

    @traced
    def builtin_join(self, op: POp) -> SV:
        sep_sv = self.eval(op.kids[0])
        sep = self.str_of(sep_sv)
        self.sv_free(sep_sv)
        values = self.eval_list(op.kids[1])
        text = sep.join(self.str_of(sv) for sv in values)
        for sv in values:
            self.sv_free(sv)
        return self.sv_new_str(text)

    @traced
    def builtin_sprintf(self, op: POp) -> SV:
        """``sprintf(fmt, args...)`` supporting %s, %d, %f, %x and %%.

        The format scan allocates the output buffer the C implementation
        builds; conversions coerce through the usual SV rules.
        """
        fmt_sv = self.eval(op.kids[0])
        fmt = self.str_of(fmt_sv)
        self.sv_free(fmt_sv)
        args = [self.eval(kid) for kid in op.kids[1:]]
        try:
            pieces: List[str] = []
            arg_index = 0
            i = 0
            while i < len(fmt):
                ch = fmt[i]
                if ch != "%":
                    pieces.append(ch)
                    i += 1
                    continue
                i += 1
                if i >= len(fmt):
                    raise PerlRuntimeError("sprintf: trailing %")
                conv = fmt[i]
                i += 1
                if conv == "%":
                    pieces.append("%")
                    continue
                if arg_index >= len(args):
                    raise PerlRuntimeError(
                        f"sprintf: not enough arguments for %{conv}"
                    )
                sv = args[arg_index]
                arg_index += 1
                if conv == "s":
                    pieces.append(self.str_of(sv))
                elif conv == "d":
                    pieces.append(str(int(self.num_of(sv))))
                elif conv == "f":
                    pieces.append(f"{self.num_of(sv):f}")
                elif conv == "x":
                    pieces.append(format(int(self.num_of(sv)), "x"))
                else:
                    raise PerlRuntimeError(f"sprintf: unknown conversion %{conv}")
            return self.sv_new_str("".join(pieces))
        finally:
            for sv in args:
                self.sv_free(sv)

    @traced
    def builtin_substr(self, op: POp) -> SV:
        subject = self.eval(op.kids[0])
        start_sv = self.eval(op.kids[1])
        text = self.str_of(subject)
        start = int(self.num_of(start_sv))
        self.sv_free(subject)
        self.sv_free(start_sv)
        if len(op.kids) > 2:
            length_sv = self.eval(op.kids[2])
            length = int(self.num_of(length_sv))
            self.sv_free(length_sv)
            return self.sv_new_str(text[start : start + length])
        return self.sv_new_str(text[start:])

    @traced
    def builtin_chomp(self, op: POp) -> SV:
        """``chomp($x)``: strip one trailing newline, in place."""
        target = op.kids[0]
        if target.kind != "scalar":
            raise PerlRuntimeError("chomp needs a $scalar argument")
        sv = self.scalars.get(target.value)
        removed = 0
        if sv is not None and sv.kind == "str" and sv.text.endswith("\n"):
            sv.text = sv.text[:-1]
            if sv.buf is not None:
                self.heap.touch(sv.buf, 1)
            removed = 1
        return self.sv_new_num(float(removed))
