"""The perl workload: report extraction with mini-Perl.

The paper's PERL inputs were "two distinct PERL programs operating on
distinct inputs" — its scripts "sorted the contents of a file and
formatted the words in a dictionary into filled paragraphs" — and because
the *programs* differed between training and test, PERL showed the paper's
weakest true prediction (20.4% of bytes, against 91.4% for self
prediction, with a 1.11% error rate).

This workload reproduces that setup:

* ``train`` runs a **sort/report script**: read every line, keep them all,
  count words per line with ``split``, flag numeric lines with a regex,
  sort and print.  Retained line scalars are long-lived; split and
  comparison temporaries are short-lived.
* ``test`` runs a **paragraph-filling script** (a different program) over
  a different input: word-splitting and string concatenation churn at
  sites the sort script never exercises.
"""

from __future__ import annotations

from repro.runtime.heap import TracedHeap, traced
from repro.workloads.base import DatasetSpec, Workload
from repro.workloads.inputs import text_lines, word_list
from repro.workloads.perl.interp import PerlInterp

__all__ = ["PerlWorkload", "SORT_SCRIPT", "FILL_SCRIPT"]

#: Training program: sort a file's lines and report word/number counts.
SORT_SCRIPT = """
while (<IN>) {
  chomp($_);
  push(@lines, $_);
  $words = $words + scalar(split(/ /, $_));
  if ($_ =~ m/[0-9]+/) {
    $numeric = $numeric + 1;
  }
}
@sorted = sort(@lines);
foreach $l (@sorted) {
  print $l, "\\n";
}
print "lines:", scalar(@lines), " words:", $words,
      " numeric:", $numeric, "\\n";
"""

#: Test program: fill dictionary words into 60-column paragraphs.
FILL_SCRIPT = """
$line = "";
while (<IN>) {
  chomp($_);
  @w = split(/ /, $_);
  foreach $word (@w) {
    if (length($line) + length($word) + 1 > 60) {
      print $line, "\\n";
      $line = $word;
    } else {
      if ($line eq "") {
        $line = $word;
      } else {
        $line = $line . " " . $word;
      }
    }
  }
}
print $line, "\\n";
"""


class PerlWorkload(Workload):
    """Run one of two distinct mini-Perl report scripts."""

    name = "perl"
    DATASETS = {
        "train": DatasetSpec(
            "train",
            "sort/report script over a numbered record file (seed 4001)",
            relation="a different program from test, as in the paper",
        ),
        "test": DatasetSpec(
            "test",
            "paragraph-fill script over a dictionary (seed 5002)",
            relation="a different program from train, as in the paper",
        ),
        "tiny": DatasetSpec("tiny", "fill script over 30 lines, for tests"),
    }

    def __init__(self, heap: TracedHeap):
        super().__init__(heap)
        self.interp = PerlInterp(heap)

    def run(self, dataset: str, scale: float = 1.0) -> None:
        self.dataset_spec(dataset)
        if dataset == "train":
            lines = _record_file(count=max(10, round(420 * scale)), seed=4001)
            self.execute(SORT_SCRIPT, lines)
        elif dataset == "test":
            lines = _dictionary_file(
                count=max(10, round(600 * scale)), seed=5002
            )
            self.execute(FILL_SCRIPT, lines)
        else:  # tiny
            self.execute(FILL_SCRIPT, _dictionary_file(count=30, seed=77))

    @traced
    def execute(self, script: str, lines: list) -> None:
        """Compile and run ``script`` over input ``lines``."""
        self.interp.compile(script)
        self.interp.run(lines)

    @property
    def output(self) -> list:
        """Lines printed by the script."""
        return self.interp.output


def _record_file(count: int, seed: int) -> list:
    """Report-style records: words with interspersed numeric fields."""
    lines = text_lines(count, seed=seed, words_per_line=(3, 8))
    result = []
    for index, line in enumerate(lines):
        if index % 3 == 0:
            result.append(f"{line} {index * 7 % 1000}")
        else:
            result.append(line)
    return result


def _dictionary_file(count: int, seed: int) -> list:
    """Dictionary-style lines: a few words each."""
    words = word_list(count * 4, seed=seed)
    return [
        " ".join(words[i : i + 4]) for i in range(0, len(words) - 4, 4)
    ][:count]
