"""Workload registry: the five programs by name.

The analysis drivers, CLI, benchmarks, and examples all reach workloads
through this table so that "run cfrac's train input" is one call.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.runtime.events import Trace
from repro.workloads.base import Workload, WorkloadError
from repro.workloads.cfrac import CfracWorkload
from repro.workloads.espresso import EspressoWorkload
from repro.workloads.gawk import GawkWorkload
from repro.workloads.ghost import GhostWorkload
from repro.workloads.perl import PerlWorkload

__all__ = ["WORKLOADS", "PROGRAM_ORDER", "get_workload", "run_workload"]

#: The paper's program order, used by every table.
PROGRAM_ORDER: List[str] = ["cfrac", "espresso", "gawk", "ghost", "perl"]

WORKLOADS: Dict[str, Type[Workload]] = {
    CfracWorkload.name: CfracWorkload,
    EspressoWorkload.name: EspressoWorkload,
    GawkWorkload.name: GawkWorkload,
    GhostWorkload.name: GhostWorkload,
    PerlWorkload.name: PerlWorkload,
}


def get_workload(name: str) -> Type[Workload]:
    """The workload class registered under ``name``."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r} (have {sorted(WORKLOADS)})"
        ) from None


def run_workload(name: str, dataset: str = "train", scale: float = 1.0) -> Trace:
    """Run one workload on one dataset and return its trace."""
    return get_workload(name).trace(dataset, scale=scale)
