"""PostScript document generators for the ghost workload.

The paper drove GhostScript with "a large reference manual and a masters
thesis" under NODISPLAY.  These generators produce documents of those two
shapes, deterministically:

* :func:`reference_manual` — many uniform pages: headers, dense running
  text, full-width rules, and boxed examples.  Single text size per
  element class.
* :func:`masters_thesis` — fewer, more varied pages: chapter headings in
  large type, paragraphs, centered figures built from curves and filled
  bars, footnote rules.

Both define a small procedure prologue (``hrule``, ``textline``, ...) so
execution flows through user procedures, giving allocation chains the
layered structure the predictor depends on.
"""

from __future__ import annotations

import random
from typing import List

from repro.workloads.inputs import word_list

__all__ = ["reference_manual", "masters_thesis"]

_PROLOGUE = """
/tl { moveto show } def
/hrule { newpath moveto 620 0 rlineto stroke } def
/vrule { newpath moveto 0 200 rlineto stroke } def
/xbox {
  newpath moveto
  dup 0 rlineto
  0 44 rlineto
  neg 0 rlineto
  closepath stroke
} def
/bar {
  newpath moveto
  dup 0 rlineto
  0 12 rlineto
  neg 0 rlineto
  closepath fill
} def
/swirl {
  newpath moveto
  60 40 120 -40 180 0 curveto
  stroke
} def
"""


def _text(rng: random.Random, words: List[str], count: int) -> str:
    return " ".join(rng.choice(words) for _ in range(count))


def reference_manual(pages: int, seed: int) -> str:
    """A large, uniform reference manual (the ``train`` document)."""
    rng = random.Random(seed)
    words = word_list(300, seed=seed ^ 0xFACE)
    out = [_PROLOGUE]
    out.append("/Helvetica findfont 18 scalefont setfont\n")
    for page in range(pages):
        out.append(f"% page {page}\n")
        out.append("/Helvetica findfont 18 scalefont setfont\n")
        out.append(f"({_text(rng, words, 3)}) 72 980 tl\n")
        out.append("72 968 hrule\n")
        out.append("72 964 hrule\n")
        out.append("/Times findfont 10 scalefont setfont\n")
        y = 940
        for _ in range(26):
            out.append(f"({_text(rng, words, rng.randint(7, 11))}) 72 {y} tl\n")
            y -= 14
        # Boxed examples with a monospace flavour, each with a shaded
        # caption bar beneath it.
        out.append("/Courier findfont 9 scalefont setfont\n")
        for example in range(3):
            box_y = 480 - example * 120
            out.append(f"520 90 {box_y} xbox\n")
            out.append(f"200 96 {box_y - 18} bar\n")
            out.append(f"({_text(rng, words, 6)}) 100 {box_y + 26} tl\n")
            out.append(f"({_text(rng, words, 5)}) 100 {box_y + 12} tl\n")
        # A small reference table: rules between rows, one vertical rule.
        for row in range(5):
            out.append(f"72 {118 + row * 14} hrule\n")
        out.append("360 118 vrule\n")
        out.append("/Times findfont 8 scalefont setfont\n")
        for row in range(4):
            out.append(
                f"({_text(rng, words, 3)}) 80 {122 + row * 14} tl\n"
            )
            out.append(
                f"({_text(rng, words, 3)}) 380 {122 + row * 14} tl\n"
            )
        out.append("72 96 hrule\n")
        folio_size = 8 + (page * 3) % 11
        folio_font = "Helvetica" if page % 2 else "Times"
        out.append(f"/{folio_font} findfont {folio_size} scalefont setfont\n")
        out.append(f"(Page {page + 1} {_text(rng, words, 2)}) 320 80 tl\n")
        out.append("showpage\n")
    return "".join(out)


def masters_thesis(pages: int, seed: int) -> str:
    """A masters thesis: varied pages with figures (the ``test`` document)."""
    rng = random.Random(seed)
    words = word_list(400, seed=seed ^ 0x7E515)
    out = [_PROLOGUE]
    out.append("/Times findfont 12 scalefont setfont\n")
    for page in range(pages):
        out.append(f"% thesis page {page}\n")
        out.append("72 1000 hrule\n")  # running-header rule
        if page % 4 == 0:
            # Chapter opening: large heading, lots of whitespace.
            out.append("/Times findfont 24 scalefont setfont\n")
            out.append(f"(Chapter {page // 4 + 1}) 72 900 tl\n")
            out.append(f"({_text(rng, words, 4)}) 72 860 tl\n")
            out.append("72 840 hrule\n")
            out.append("72 836 hrule\n")
            body_lines, y = 18, 800
        else:
            body_lines, y = 32, 980
        out.append("/Times findfont 12 scalefont setfont\n")
        for _ in range(body_lines):
            out.append(f"({_text(rng, words, rng.randint(6, 10))}) 72 {y} tl\n")
            y -= 16
        # Margin-note column rule and a footnote separator on every page.
        out.append("560 400 vrule\n")
        out.append(f"({_text(rng, words, 2)}) 580 560 tl\n")
        out.append("72 140 hrule\n")
        note_size = 7 + (page * 5) % 9
        out.append(f"/Times findfont {note_size} scalefont setfont\n")
        out.append(f"({page + 1}. {_text(rng, words, 6)}) 72 124 tl\n")
        if page % 2 == 1:
            # A centered figure: bars, a curve, markers, and an axis.
            out.append("gsave 180 200 translate\n")
            for bar in range(5):
                height = 40 + rng.randint(0, 60)
                out.append(f"{height} {40 + bar * 70} 0 bar\n")
                # A circular data marker above each bar.
                out.append(
                    f"newpath {40 + bar * 70} {height + 14} 5 0 360 arc "
                    "closepath fill\n"
                )
            out.append("0 -8 swirl\n")
            out.append("2 setlinewidth newpath 20 -10 moveto 360 0 rlineto "
                       "stroke 1 setlinewidth\n")
            out.append("20 -10 vrule\n")
            out.append("grestore\n")
            if page % 4 == 1:
                # An inset detail at half scale.
                out.append("gsave 420 420 translate 0.5 0.5 scale\n")
                out.append("newpath 100 100 60 0 180 arc stroke\n")
                out.append("160 40 40 xbox\n")
                out.append("grestore\n")
            out.append("/Times findfont 9 scalefont setfont\n")
            out.append(f"(Figure: {_text(rng, words, 3)}) 220 170 tl\n")
        out.append("72 80 hrule\n")
        out.append("showpage\n")
    return "".join(out)
