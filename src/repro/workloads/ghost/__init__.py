"""The ghost workload: a traced PostScript interpreter and rasterizer."""

from repro.workloads.ghost.graphics import (
    GlyphCache,
    GraphicsError,
    PageDevice,
    Path,
    Rasterizer,
)
from repro.workloads.ghost.interp import PSError, PSInterp
from repro.workloads.ghost.scanner import PSScanError, scan
from repro.workloads.ghost.workload import GhostWorkload

__all__ = [
    "GlyphCache",
    "GraphicsError",
    "PageDevice",
    "Path",
    "Rasterizer",
    "PSError",
    "PSInterp",
    "PSScanError",
    "scan",
    "GhostWorkload",
]
