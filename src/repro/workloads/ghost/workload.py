"""The ghost workload: interpreting PostScript documents, NODISPLAY-style.

``train`` renders a large reference manual, ``test`` a masters thesis —
the paper's two GhostScript inputs.  Both run through the same interpreter
and rasterizer, so many allocation sites transfer between runs, but the
thesis's different page mix (large headings, figures with curves and
filled bars) shifts sizes and lifetimes enough that true prediction falls
below self prediction (80.9% → 71.8% in the paper's Table 4).

GHOST is the reproduction's "big heap" program: the page framebuffer is a
single long-lived allocation far larger than any other workload's live
data, and every paint operation allocates a 6 KB span buffer — the
short-lived objects that are too large for the paper's 4 KB arenas
(Table 7's GHOST anomaly).
"""

from __future__ import annotations

from repro.runtime.heap import TracedHeap, traced
from repro.workloads.base import DatasetSpec, Workload
from repro.workloads.ghost.docs import masters_thesis, reference_manual
from repro.workloads.ghost.interp import PSInterp

__all__ = ["GhostWorkload"]


class GhostWorkload(Workload):
    """Interpret a generated PostScript document."""

    name = "ghost"
    DATASETS = {
        "train": DatasetSpec(
            "train",
            "reference manual, ~22 uniform pages (seed 6001)",
            relation="same interpreter; different document shape than test",
        ),
        "test": DatasetSpec(
            "test",
            "masters thesis, ~18 varied pages (seed 7002)",
            relation="same interpreter; different document shape than train",
        ),
        "tiny": DatasetSpec("tiny", "a 2-page manual, for tests"),
    }

    def __init__(self, heap: TracedHeap):
        super().__init__(heap)
        self.interp = PSInterp(heap)

    def run(self, dataset: str, scale: float = 1.0) -> None:
        self.dataset_spec(dataset)
        if dataset == "tiny":
            source = reference_manual(pages=2, seed=55)
        elif dataset == "train":
            source = reference_manual(
                pages=max(1, round(22 * scale)), seed=6001
            )
        else:
            source = masters_thesis(pages=max(1, round(18 * scale)), seed=7002)
        self.render(source)

    @traced
    def render(self, source: str) -> None:
        """Interpret the document (the NODISPLAY execution)."""
        self.interp.run(source)

    @property
    def pages_shown(self) -> int:
        """Pages emitted by ``showpage`` — output-correctness check."""
        return self.interp.device.pages_shown

    @property
    def painted_pixels(self) -> int:
        """Total framebuffer pixels painted across the run."""
        return self.interp.device.painted_pixels
