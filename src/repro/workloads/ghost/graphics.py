"""Rasterization substrate for the ghost workload.

GhostScript's allocation signature, which the paper's GHOST rows reflect,
comes from its graphics engine more than its interpreter: a large,
long-lived page raster; short-lived per-paint scan buffers (GHOST's
"about 5000 6-kilobyte short-lived objects" that defeat 4 KB arenas in
Table 7); per-path segment lists that die at every ``newpath``; and a
glyph cache whose bitmaps live until evicted.

This module implements a real (if deliberately simple) scan-line
rasterizer with exactly that allocation structure:

* :class:`PageDevice` owns the framebuffer — one byte per pixel, 768x1024
  by default, allocated once and never freed (it dies at program exit).
* :class:`Path` collects traced segment records; ``curveto`` flattens
  Béziers into segments via short-lived workspace allocations.
* ``fill``/``stroke`` allocate a **span buffer of 8 bytes per pixel
  column** (768 columns -> 6144 bytes, deliberately larger than the
  paper's 4 KB arenas), rasterize into it with even-odd scan conversion,
  blit to the framebuffer, and free it.
* :class:`GlyphCache` renders character bitmaps on miss and evicts in FIFO
  order at capacity, giving glyphs their cache-lifetime distribution.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.runtime.heap import HeapObject, TracedHeap, traced

__all__ = [
    "GraphicsError",
    "Path",
    "PageDevice",
    "GlyphCache",
    "Rasterizer",
    "PAGE_WIDTH",
    "PAGE_HEIGHT",
    "SPAN_BYTES_PER_COLUMN",
]

PAGE_WIDTH = 768
#: Logical pages are 1024 units tall, but the device rasterizes into a
#: quarter-page band buffer (GhostScript's banded NODISPLAY path): rows
#: wrap modulo the band height.  This keeps the framebuffer the program's
#: dominant live object without letting it dwarf the paint churn.
PAGE_HEIGHT = 256
#: Span buffers hold 8 bytes (two supersampled coverage rows) per column:
#: 768 columns -> 6144-byte buffers, the workload's signature short-lived
#: object that cannot fit a 4 KB arena.
SPAN_BYTES_PER_COLUMN = 8

SEGMENT_SIZE = 24
FLATTEN_WORKSPACE_SIZE = 96
CURVE_FLATNESS_STEPS = 12
GLYPH_CACHE_CAPACITY = 180


class GraphicsError(Exception):
    """Raised on invalid graphics operations (e.g. lineto with no point)."""


class Path:
    """The current path: a chain of traced segment records."""

    def __init__(self, heap: TracedHeap):
        self.heap = heap
        self.segments: List[Tuple[HeapObject, float, float, float, float]] = []
        self.current: Optional[Tuple[float, float]] = None
        self.start: Optional[Tuple[float, float]] = None

    def moveto(self, x: float, y: float) -> None:
        """Begin a new subpath at (x, y)."""
        self.current = (x, y)
        self.start = (x, y)

    def lineto(self, x: float, y: float, segment: HeapObject) -> None:
        """Append a line segment; ``segment`` is its traced record."""
        if self.current is None:
            raise GraphicsError("lineto with no current point")
        x0, y0 = self.current
        self.segments.append((segment, x0, y0, x, y))
        self.current = (x, y)

    def close(self, segment: HeapObject) -> None:
        """Close the current subpath back to its start."""
        if self.current is None or self.start is None:
            raise GraphicsError("closepath with no current point")
        x0, y0 = self.current
        x1, y1 = self.start
        self.segments.append((segment, x0, y0, x1, y1))
        self.current = self.start

    def clear(self) -> None:
        """Free every segment record (the ``newpath`` operator)."""
        for segment, *_ in self.segments:
            self.heap.free(segment)
        self.segments = []
        self.current = None
        self.start = None

    def bounds(self) -> Optional[Tuple[float, float, float, float]]:
        """The path's bounding box, or ``None`` when empty."""
        if not self.segments:
            return None
        xs = [v for _, x0, _, x1, _ in self.segments for v in (x0, x1)]
        ys = [v for _, _, y0, _, y1 in self.segments for v in (y0, y1)]
        return min(xs), min(ys), max(xs), max(ys)


class PageDevice:
    """The output raster: one big long-lived framebuffer allocation."""

    def __init__(self, heap: TracedHeap, framebuffer: HeapObject,
                 width: int = PAGE_WIDTH, height: int = PAGE_HEIGHT):
        self.heap = heap
        self.width = width
        self.height = height
        self.framebuffer = framebuffer
        #: Count of pixels painted, per page, for output verification.
        self.painted_pixels = 0
        self.pages_shown = 0
        self._clist: List[HeapObject] = []

    @traced
    def record_op(self, nbytes: int) -> None:
        """Append one display-list (clist) record for the current page.

        GhostScript's banded device queues every paint and text operation
        as a command-list record that lives until ``showpage`` replays the
        band.  These page-lifetime records are the medium-lived data that
        short-lived churn scatters across the first-fit address space —
        the pollution effect §5.2 describes.
        """
        record = self.heap.malloc(nbytes)
        self.heap.touch(record, 1 + nbytes // 16)
        self._clist.append(record)

    def blit_span(self, y: int, x0: int, x1: int) -> None:
        """Paint the pixel run [x0, x1) on row ``y``.

        Rows wrap modulo the band height (banded device), so every span of
        the logical page lands in the buffer.
        """
        x0 = max(0, x0)
        x1 = min(self.width, x1)
        if x1 <= x0 or y < 0:
            return
        self.heap.touch(self.framebuffer, 1 + (x1 - x0) // 4)
        self.painted_pixels += x1 - x0

    def show_page(self) -> None:
        """Emit the page: replay and free its display list."""
        self.heap.touch(self.framebuffer, self.width * self.height // 4096)
        for record in self._clist:
            self.heap.touch(record, 2)
            self.heap.free(record)
        self._clist = []
        self.pages_shown += 1


class GlyphCache:
    """FIFO cache of rendered character bitmaps."""

    def __init__(self, heap: TracedHeap, capacity: int = GLYPH_CACHE_CAPACITY):
        self.heap = heap
        self.capacity = capacity
        self._cache: "OrderedDict[Tuple[str, int], HeapObject]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def lookup(self, char: str, size: int) -> Optional[HeapObject]:
        """The cached bitmap for (char, size), or ``None`` on a miss."""
        bitmap = self._cache.get((char, size))
        if bitmap is not None:
            self.hits += 1
            self.heap.touch(bitmap, 2)
        return bitmap

    def insert(self, char: str, size: int, bitmap: HeapObject) -> None:
        """Cache a freshly rendered bitmap, evicting the oldest at capacity."""
        self.misses += 1
        if len(self._cache) >= self.capacity:
            _, evicted = self._cache.popitem(last=False)
            self.heap.free(evicted)
        self._cache[(char, size)] = bitmap


class Rasterizer:
    """Scan-line rasterization over a page device.

    Owns the allocation pattern of painting: one span buffer per paint
    operation, freed when the paint completes.
    """

    def __init__(self, heap: TracedHeap, device: PageDevice):
        self.heap = heap
        self.device = device

    @traced
    def span_buffer(self) -> HeapObject:
        """Allocate the per-paint coverage buffer (the 6 KB object)."""
        buf = self.heap.malloc(self.device.width * SPAN_BYTES_PER_COLUMN)
        self.heap.touch(buf, self.device.width // 64)
        return buf

    @traced
    def fill_path(self, path: Path) -> int:
        """Even-odd scan-convert ``path`` into the framebuffer.

        Returns the number of spans painted.
        """
        bounds = path.bounds()
        if bounds is None:
            return 0
        self.device.record_op(64 + 8 * len(path.segments))
        buf = self.span_buffer()
        try:
            spans = 0
            y_lo = max(0, int(bounds[1]))
            y_hi = max(y_lo, int(bounds[3]))
            for y in range(y_lo, y_hi + 1):
                crossings = self._crossings(path, y + 0.5)
                self.heap.touch(buf, 1 + len(crossings) // 2)
                for i in range(0, len(crossings) - 1, 2):
                    x0, x1 = int(crossings[i]), int(crossings[i + 1]) + 1
                    self.device.blit_span(y, x0, x1)
                    spans += 1
            return spans
        finally:
            self.heap.free(buf)

    @traced
    def stroke_path(self, path: Path, width: float = 1.0) -> int:
        """Stroke every segment as a thin quad fill.

        Allocates one span buffer for the whole stroke (as GhostScript's
        stroke device does) plus a short-lived expansion record per
        segment.
        """
        if not path.segments:
            return 0
        self.device.record_op(64 + 8 * len(path.segments))
        buf = self.span_buffer()
        try:
            spans = 0
            half = max(0.5, width / 2.0)
            for segment, x0, y0, x1, y1 in path.segments:
                self.heap.touch(segment, 1)
                expansion = self.heap.malloc(32)
                try:
                    spans += self._stroke_segment(x0, y0, x1, y1, half, buf)
                finally:
                    self.heap.free(expansion)
            return spans
        finally:
            self.heap.free(buf)

    def _stroke_segment(self, x0: float, y0: float, x1: float, y1: float,
                        half: float, buf: HeapObject) -> int:
        spans = 0
        if abs(y1 - y0) <= abs(x1 - x0):
            # Mostly horizontal: one span per row of the thickened band.
            if x1 < x0:
                x0, y0, x1, y1 = x1, y1, x0, y0
            y_mid = (y0 + y1) / 2.0
            for y in range(int(y_mid - half), int(y_mid + half) + 1):
                self.heap.touch(buf, 1)
                self.device.blit_span(y, int(x0), int(x1) + 1)
                spans += 1
        else:
            if y1 < y0:
                x0, y0, x1, y1 = x1, y1, x0, y0
            slope = (x1 - x0) / (y1 - y0) if y1 != y0 else 0.0
            for y in range(int(y0), int(y1) + 1):
                x = x0 + slope * (y - y0)
                self.heap.touch(buf, 1)
                self.device.blit_span(y, int(x - half), int(x + half) + 1)
                spans += 1
        return spans

    @staticmethod
    def _crossings(path: Path, scan_y: float) -> List[float]:
        crossings = []
        for _, x0, y0, x1, y1 in path.segments:
            if y0 == y1:
                continue
            if (y0 <= scan_y < y1) or (y1 <= scan_y < y0):
                t = (scan_y - y0) / (y1 - y0)
                crossings.append(x0 + t * (x1 - x0))
        crossings.sort()
        return crossings

    @traced
    def flatten_curve(
        self,
        x0: float, y0: float,
        x1: float, y1: float,
        x2: float, y2: float,
        x3: float, y3: float,
    ) -> List[Tuple[float, float]]:
        """Flatten a cubic Bézier into line-segment endpoints.

        Allocates (and frees) the flattening workspace GhostScript keeps
        per curve; returns the polyline's points after the start point.
        """
        workspace = self.heap.malloc(FLATTEN_WORKSPACE_SIZE)
        try:
            self.heap.touch(workspace, CURVE_FLATNESS_STEPS)
            points = []
            for step in range(1, CURVE_FLATNESS_STEPS + 1):
                t = step / CURVE_FLATNESS_STEPS
                u = 1.0 - t
                x = (
                    u * u * u * x0 + 3 * u * u * t * x1
                    + 3 * u * t * t * x2 + t * t * t * x3
                )
                y = (
                    u * u * u * y0 + 3 * u * u * t * y1
                    + 3 * u * t * t * y2 + t * t * t * y3
                )
                points.append((x, y))
            return points
        finally:
            self.heap.free(workspace)
