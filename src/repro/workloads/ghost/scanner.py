"""PostScript scanner for the ghost workload.

Tokenizes the PostScript subset the generated documents use: numbers,
executable names, literal names (``/name``), strings (``(...)`` with
nesting and escapes), procedure bodies (``{ ... }``), and array literals
(``[ ... ]``).  Procedures and arrays scan into nested Python lists; the
interpreter allocates their traced composite objects when the tokens are
consumed (matching GhostScript, where the scanner and the object memory
cooperate).

Tokens are plain tuples — GhostScript's scanner builds refs on the stack,
not heap objects, so scanning itself is allocation-light.
"""

from __future__ import annotations

from typing import List, Tuple, Union

__all__ = ["PSScanError", "scan", "Token"]


class PSScanError(Exception):
    """Raised on malformed PostScript input."""


#: A scanned token: ("number", float) | ("name", str) | ("litname", str)
#: | ("string", str) | ("proc", [tokens]) | ("array", [tokens])
Token = Tuple[str, Union[float, str, List]]

_DELIMITERS = "{}[]()/%"


def scan(source: str) -> List[Token]:
    """Scan ``source`` into a flat token list (procs/arrays nested)."""
    tokens, pos = _scan_until(source, 0, terminator=None)
    return tokens


def _scan_until(source: str, pos: int, terminator: str) -> Tuple[List[Token], int]:
    tokens: List[Token] = []
    n = len(source)
    while pos < n:
        ch = source[pos]
        if ch in " \t\r\n":
            pos += 1
        elif ch == "%":
            while pos < n and source[pos] != "\n":
                pos += 1
        elif ch == terminator:
            return tokens, pos + 1
        elif ch == "{":
            body, pos = _scan_until(source, pos + 1, "}")
            tokens.append(("proc", body))
        elif ch == "[":
            body, pos = _scan_until(source, pos + 1, "]")
            tokens.append(("array", body))
        elif ch in "}]":
            raise PSScanError(f"unbalanced {ch!r} at offset {pos}")
        elif ch == "(":
            text, pos = _scan_string(source, pos + 1)
            tokens.append(("string", text))
        elif ch == "/":
            name, pos = _scan_name(source, pos + 1)
            if not name:
                raise PSScanError(f"empty literal name at offset {pos}")
            tokens.append(("litname", name))
        elif ch.isdigit() or ch in "+-." and _starts_number(source, pos):
            number, pos = _scan_number(source, pos)
            tokens.append(("number", number))
        else:
            name, pos = _scan_name(source, pos)
            if not name:
                raise PSScanError(
                    f"unexpected character {ch!r} at offset {pos}"
                )
            tokens.append(("name", name))
    if terminator is not None:
        raise PSScanError(f"missing closing {terminator!r}")
    return tokens, pos


def _starts_number(source: str, pos: int) -> bool:
    ch = source[pos]
    if ch.isdigit():
        return True
    return (
        ch in "+-."
        and pos + 1 < len(source)
        and (source[pos + 1].isdigit() or source[pos + 1] == ".")
    )


def _scan_number(source: str, pos: int) -> Tuple[float, int]:
    start = pos
    n = len(source)
    if source[pos] in "+-":
        pos += 1
    while pos < n and (source[pos].isdigit() or source[pos] == "."):
        pos += 1
    try:
        return float(source[start:pos]), pos
    except ValueError:
        raise PSScanError(f"bad number {source[start:pos]!r}") from None


def _scan_name(source: str, pos: int) -> Tuple[str, int]:
    start = pos
    n = len(source)
    while pos < n and not source[pos].isspace() and source[pos] not in _DELIMITERS:
        pos += 1
    return source[start:pos], pos


def _scan_string(source: str, pos: int) -> Tuple[str, int]:
    chars: List[str] = []
    depth = 1
    n = len(source)
    while pos < n:
        ch = source[pos]
        if ch == "\\" and pos + 1 < n:
            pos += 1
            escape = source[pos]
            chars.append({"n": "\n", "t": "\t"}.get(escape, escape))
        elif ch == "(":
            depth += 1
            chars.append(ch)
        elif ch == ")":
            depth -= 1
            if depth == 0:
                return "".join(chars), pos + 1
            chars.append(ch)
        else:
            chars.append(ch)
        pos += 1
    raise PSScanError("unterminated string")
