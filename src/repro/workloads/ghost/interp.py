"""PostScript interpreter for the ghost workload.

Executes the PostScript subset the generated documents use: operand-stack
arithmetic, ``def``/name lookup with a dictionary stack (``dict``/
``begin``/``end``), control (``repeat``, ``for``, ``if``, ``ifelse``),
path construction (``moveto``/``lineto``/``rlineto``/``curveto``/
``arc``/``closepath``), painting (``stroke``/``fill``/``setlinewidth``),
text (``findfont``/``scalefont``/``setfont``/``show``/``stringwidth``),
state (``gsave``/``grestore``/``translate``/``scale``) and ``showpage``.

Allocation model (mirroring GhostScript's object memory):

* composite objects are traced — string literals, procedure bodies, font
  dictionaries, dictionary entries, path segments;
* simple values (numbers, names) live on the operand stack unallocated;
* painting allocates through :class:`~repro.workloads.ghost.graphics.Rasterizer`
  (span buffers, glyph bitmaps, flattening workspaces);
* strings are freed when ``show`` consumes them; inline procedure bodies
  are freed when their controlling operator finishes; defined procedures
  and fonts live until program exit.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple

from repro.runtime.heap import HeapObject, TracedHeap, traced
from repro.workloads.ghost.graphics import (
    GlyphCache,
    PageDevice,
    Path,
    Rasterizer,
)
from repro.workloads.ghost.scanner import PSScanError, Token, scan

__all__ = ["PSError", "PSInterp"]

STRING_HEADER = 16
PROC_HEADER = 16
TOKEN_SLOT = 8
FONT_DICT_SIZE = 128
FONT_METRICS_SIZE = 16 + 256
SCALED_FONT_SIZE = 64
DICT_ENTRY_SIZE = 32
GSTATE_SIZE = 96
SHOW_ENUM_SIZE = 48
SEGMENT_SIZE = 24


class PSError(Exception):
    """Raised on PostScript execution errors (stack underflow, undefined)."""


class PSInterp:
    """A single-use PostScript interpreter over a traced heap."""

    def __init__(self, heap: TracedHeap):
        self.heap = heap
        self.opstack: List[tuple] = []
        self.userdict: Dict[str, tuple] = {}
        self._dict_entries: Dict[str, HeapObject] = {}
        self.fonts: Dict[str, Tuple[HeapObject, HeapObject]] = {}
        self.current_font: Optional[Tuple[str, int, HeapObject]] = None
        self.translate_x = 0.0
        self.translate_y = 0.0
        self.scale_x = 1.0
        self.scale_y = 1.0
        self.line_width = 1.0
        self._gstate_stack: List[tuple] = []
        #: The dictionary stack above userdict: (handle, bindings) pairs.
        self._dict_stack: List[Tuple[HeapObject, Dict[str, tuple]]] = []

        self.device = PageDevice(heap, framebuffer=self._alloc_framebuffer())
        self.rasterizer = Rasterizer(heap, self.device)
        self.glyphs = GlyphCache(heap)
        self.path = Path(heap)

        self._operators: Dict[str, Callable[[], None]] = {
            "add": self.op_add, "sub": self.op_sub, "mul": self.op_mul,
            "div": self.op_div, "neg": self.op_neg,
            "dup": self.op_dup, "pop": self.op_pop, "exch": self.op_exch,
            "def": self.op_def,
            "repeat": self.op_repeat, "for": self.op_for,
            "if": self.op_if, "ifelse": self.op_ifelse,
            "lt": self.op_lt, "le": self.op_le, "gt": self.op_gt,
            "ge": self.op_ge, "eq": self.op_eq,
            "newpath": self.op_newpath, "moveto": self.op_moveto,
            "rmoveto": self.op_rmoveto, "lineto": self.op_lineto,
            "rlineto": self.op_rlineto, "curveto": self.op_curveto,
            "closepath": self.op_closepath,
            "stroke": self.op_stroke, "fill": self.op_fill,
            "findfont": self.op_findfont, "scalefont": self.op_scalefont,
            "setfont": self.op_setfont, "show": self.op_show,
            "showpage": self.op_showpage,
            "gsave": self.op_gsave, "grestore": self.op_grestore,
            "translate": self.op_translate, "scale": self.op_scale,
            "arc": self.op_arc, "setlinewidth": self.op_setlinewidth,
            "stringwidth": self.op_stringwidth,
            "dict": self.op_dict, "begin": self.op_begin, "end": self.op_end,
        }

    @traced
    def _alloc_framebuffer(self) -> HeapObject:
        """The page raster: the program's one huge long-lived object."""
        from repro.workloads.ghost.graphics import PAGE_HEIGHT, PAGE_WIDTH

        return self.heap.malloc(PAGE_WIDTH * PAGE_HEIGHT)

    # ------------------------------------------------------------------
    # Stack plumbing
    # ------------------------------------------------------------------

    def push(self, value: tuple) -> None:
        self.opstack.append(value)

    def pop(self) -> tuple:
        if not self.opstack:
            raise PSError("stackunderflow")
        return self.opstack.pop()

    def pop_num(self) -> float:
        value = self.pop()
        if value[0] != "num":
            raise PSError(f"typecheck: wanted number, got {value[0]}")
        return value[1]

    def pop_proc(self) -> tuple:
        value = self.pop()
        if value[0] != "proc":
            raise PSError(f"typecheck: wanted procedure, got {value[0]}")
        return value

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    @traced
    def run(self, source: str) -> None:
        """Scan and execute a PostScript program."""
        file_buffer = self.heap.malloc(STRING_HEADER + len(source))
        try:
            self.heap.touch(file_buffer, len(source) // 64)
            tokens = scan(source)
        finally:
            self.heap.free(file_buffer)
        self.exec_tokens(tokens)

    @traced
    def exec_tokens(self, tokens: List[Token]) -> None:
        for token in tokens:
            self.exec_token(token)

    def exec_token(self, token: Token) -> None:
        kind, value = token
        if kind == "number":
            self.push(("num", value))
        elif kind == "string":
            self.push(self.make_string(value))
        elif kind == "litname":
            self.push(("name", value))
        elif kind == "proc":
            self.push(self.make_proc(value))
        elif kind == "array":
            self.push(self.make_proc(value))
        elif kind == "name":
            self.exec_name(value)
        else:
            raise PSError(f"unknown token kind {kind!r}")

    @traced
    def exec_name(self, name: str) -> None:
        """Execute a name: dict stack, then userdict, then system operator."""
        binding = None
        for handle, bindings in reversed(self._dict_stack):
            if name in bindings:
                self.heap.touch(handle, 1)
                binding = bindings[name]
                break
        if binding is None:
            binding = self.userdict.get(name)
        if binding is not None:
            entry = self._dict_entries.get(name)
            if entry is not None:
                self.heap.touch(entry, 1)
            if binding[0] == "proc":
                self.exec_proc(binding)
            else:
                self.push(binding)
            return
        operator = self._operators.get(name)
        if operator is None:
            raise PSError(f"undefined: {name}")
        operator()

    @traced
    def exec_proc(self, proc: tuple) -> None:
        """Execute a procedure body."""
        self.heap.touch(proc[2], 1)
        self.exec_tokens(proc[1])

    # ------------------------------------------------------------------
    # Composite object constructors
    # ------------------------------------------------------------------

    @traced
    def make_string(self, text: str) -> tuple:
        """Allocate a PostScript string object."""
        handle = self.heap.malloc(STRING_HEADER + max(1, len(text)))
        self.heap.touch(handle, 1 + len(text) // 8)
        return ("str", text, handle)

    @traced
    def make_proc(self, tokens: List[Token]) -> tuple:
        """Allocate a procedure (executable array) body."""
        handle = self.heap.malloc(PROC_HEADER + TOKEN_SLOT * max(1, len(tokens)))
        self.heap.touch(handle, 1 + len(tokens) // 4)
        return ("proc", tokens, handle)

    def free_value(self, value: tuple) -> None:
        """Free a composite value; simple values are no-ops."""
        if value[0] in ("str", "proc"):
            self.heap.free(value[2])

    # ------------------------------------------------------------------
    # Arithmetic and stack operators
    # ------------------------------------------------------------------

    def op_add(self) -> None:
        b, a = self.pop_num(), self.pop_num()
        self.push(("num", a + b))

    def op_sub(self) -> None:
        b, a = self.pop_num(), self.pop_num()
        self.push(("num", a - b))

    def op_mul(self) -> None:
        b, a = self.pop_num(), self.pop_num()
        self.push(("num", a * b))

    def op_div(self) -> None:
        b, a = self.pop_num(), self.pop_num()
        if b == 0:
            raise PSError("undefinedresult: division by zero")
        self.push(("num", a / b))

    def op_neg(self) -> None:
        self.push(("num", -self.pop_num()))

    def op_dup(self) -> None:
        value = self.pop()
        self.push(value)
        self.push(value)

    def op_pop(self) -> None:
        self.free_value(self.pop())

    def op_exch(self) -> None:
        b, a = self.pop(), self.pop()
        self.push(b)
        self.push(a)

    @traced
    def op_def(self) -> None:
        """``/name value def``: bind in userdict with a traced entry."""
        value = self.pop()
        key = self.pop()
        if key[0] != "name":
            raise PSError(f"typecheck: def needs a literal name, got {key[0]}")
        if self._dict_stack:
            handle, bindings = self._dict_stack[-1]
            self.heap.touch(handle, 2)
            old = bindings.get(key[1])
            if old is not None:
                self.free_value(old)
            bindings[key[1]] = value
            return
        old = self.userdict.get(key[1])
        if old is not None:
            self.free_value(old)
        else:
            entry = self.heap.malloc(DICT_ENTRY_SIZE + len(key[1]))
            self.heap.touch(entry, 2)
            self._dict_entries[key[1]] = entry
        self.userdict[key[1]] = value

    # ------------------------------------------------------------------
    # Control operators
    # ------------------------------------------------------------------

    def op_repeat(self) -> None:
        proc = self.pop_proc()
        count = int(self.pop_num())
        try:
            for _ in range(count):
                self.exec_proc(proc)
        finally:
            self.free_value(proc)

    def op_for(self) -> None:
        proc = self.pop_proc()
        limit = self.pop_num()
        step = self.pop_num()
        start = self.pop_num()
        if step == 0:
            raise PSError("rangecheck: for with zero step")
        try:
            value = start
            while (step > 0 and value <= limit) or (step < 0 and value >= limit):
                self.push(("num", value))
                self.exec_proc(proc)
                value += step
        finally:
            self.free_value(proc)

    def op_if(self) -> None:
        proc = self.pop_proc()
        condition = self.pop_num()
        try:
            if condition != 0:
                self.exec_proc(proc)
        finally:
            self.free_value(proc)

    def op_ifelse(self) -> None:
        alt = self.pop_proc()
        proc = self.pop_proc()
        condition = self.pop_num()
        try:
            self.exec_proc(proc if condition != 0 else alt)
        finally:
            self.free_value(proc)
            self.free_value(alt)

    def _compare(self, relation: Callable[[float, float], bool]) -> None:
        b, a = self.pop_num(), self.pop_num()
        self.push(("num", 1.0 if relation(a, b) else 0.0))

    def op_lt(self) -> None:
        self._compare(lambda a, b: a < b)

    def op_le(self) -> None:
        self._compare(lambda a, b: a <= b)

    def op_gt(self) -> None:
        self._compare(lambda a, b: a > b)

    def op_ge(self) -> None:
        self._compare(lambda a, b: a >= b)

    def op_eq(self) -> None:
        self._compare(lambda a, b: a == b)

    # ------------------------------------------------------------------
    # Path operators
    # ------------------------------------------------------------------

    @traced
    def alloc_segment(self) -> HeapObject:
        """One path-segment record."""
        return self.heap.malloc(SEGMENT_SIZE)

    def _point(self) -> Tuple[float, float]:
        y = self.pop_num()
        x = self.pop_num()
        return (
            x * self.scale_x + self.translate_x,
            y * self.scale_y + self.translate_y,
        )

    def op_newpath(self) -> None:
        self.path.clear()

    def op_moveto(self) -> None:
        x, y = self._point()
        self.path.moveto(x, y)

    def op_rmoveto(self) -> None:
        dy = self.pop_num() * self.scale_y
        dx = self.pop_num() * self.scale_x
        if self.path.current is None:
            raise PSError("nocurrentpoint: rmoveto")
        x, y = self.path.current
        self.path.moveto(x + dx, y + dy)

    @traced
    def op_lineto(self) -> None:
        x, y = self._point()
        self.path.lineto(x, y, self.alloc_segment())

    @traced
    def op_rlineto(self) -> None:
        dy = self.pop_num() * self.scale_y
        dx = self.pop_num() * self.scale_x
        if self.path.current is None:
            raise PSError("nocurrentpoint: rlineto")
        x, y = self.path.current
        self.path.lineto(x + dx, y + dy, self.alloc_segment())

    @traced
    def op_curveto(self) -> None:
        x3, y3 = self._point()
        # The stack holds x1 y1 x2 y2 x3 y3; x3/y3 already popped.
        x2, y2 = self._point()
        x1, y1 = self._point()
        if self.path.current is None:
            raise PSError("nocurrentpoint: curveto")
        x0, y0 = self.path.current
        points = self.rasterizer.flatten_curve(x0, y0, x1, y1, x2, y2, x3, y3)
        for x, y in points:
            self.path.lineto(x, y, self.alloc_segment())

    def op_closepath(self) -> None:
        self.path.close(self.alloc_segment())

    @traced
    def op_stroke(self) -> None:
        self.rasterizer.stroke_path(self.path, width=self.line_width)
        self.path.clear()

    @traced
    def op_fill(self) -> None:
        self.rasterizer.fill_path(self.path)
        self.path.clear()

    # ------------------------------------------------------------------
    # Text operators
    # ------------------------------------------------------------------

    @traced
    def op_findfont(self) -> None:
        key = self.pop()
        if key[0] != "name":
            raise PSError("typecheck: findfont needs a font name")
        name = key[1]
        if name not in self.fonts:
            font_dict = self.heap.malloc(FONT_DICT_SIZE)
            metrics = self.heap.malloc(FONT_METRICS_SIZE)
            self.heap.touch(metrics, 16)
            self.fonts[name] = (font_dict, metrics)
        self.heap.touch(self.fonts[name][0], 1)
        self.push(("font", name, 1))

    @traced
    def op_scalefont(self) -> None:
        size = int(self.pop_num())
        font = self.pop()
        if font[0] != "font":
            raise PSError("typecheck: scalefont needs a font")
        self.push(("font", font[1], size))

    @traced
    def op_setfont(self) -> None:
        font = self.pop()
        if font[0] != "font":
            raise PSError("typecheck: setfont needs a font")
        record = self.heap.malloc(SCALED_FONT_SIZE)
        self.heap.touch(record, 2)
        if self.current_font is not None:
            self.heap.free(self.current_font[2])
        self.current_font = (font[1], font[2], record)

    @traced
    def op_show(self) -> None:
        value = self.pop()
        if value[0] != "str":
            raise PSError("typecheck: show needs a string")
        if self.current_font is None:
            raise PSError("invalidfont: no font set")
        if self.path.current is None:
            raise PSError("nocurrentpoint: show")
        self.device.record_op(40 + len(value[1]))
        enum = self.heap.malloc(SHOW_ENUM_SIZE)
        try:
            name, size, record = self.current_font
            self.heap.touch(record, 1)
            x, y = self.path.current
            for char in value[1]:
                self.show_glyph(char, size, int(x), int(y))
                x += 0.6 * size
                self.heap.touch(enum, 1)
            self.path.moveto(x, y)
        finally:
            self.heap.free(enum)
            self.free_value(value)

    @traced
    def show_glyph(self, char: str, size: int, x: int, y: int) -> None:
        """Paint one character via the glyph cache."""
        bitmap = self.glyphs.lookup(char, size)
        if bitmap is None:
            bitmap = self.render_glyph(char, size)
            self.glyphs.insert(char, size, bitmap)
        rows = max(1, size // 2)
        for row in range(rows):
            self.device.blit_span(y + row, x, x + max(1, int(0.6 * size)))

    @traced
    def render_glyph(self, char: str, size: int) -> HeapObject:
        """Rasterize a character bitmap (a glyph-cache miss)."""
        bitmap = self.heap.malloc(16 + max(1, (size * size) // 8))
        self.heap.touch(bitmap, max(1, (size * size) // 64))
        return bitmap

    # ------------------------------------------------------------------
    # Page and state operators
    # ------------------------------------------------------------------

    @traced
    def op_showpage(self) -> None:
        self.device.show_page()
        self.path.clear()

    @traced
    def op_gsave(self) -> None:
        record = self.heap.malloc(GSTATE_SIZE)
        self.heap.touch(record, 4)
        self._gstate_stack.append((
            record, self.translate_x, self.translate_y,
            self.scale_x, self.scale_y, self.line_width,
        ))

    @traced
    def op_grestore(self) -> None:
        if not self._gstate_stack:
            raise PSError("stackunderflow: grestore")
        record, tx, ty, sx, sy, lw = self._gstate_stack.pop()
        self.heap.free(record)
        self.translate_x = tx
        self.translate_y = ty
        self.scale_x = sx
        self.scale_y = sy
        self.line_width = lw

    def op_translate(self) -> None:
        dy = self.pop_num() * self.scale_y
        dx = self.pop_num() * self.scale_x
        self.translate_x += dx
        self.translate_y += dy

    def op_scale(self) -> None:
        sy = self.pop_num()
        sx = self.pop_num()
        if sx == 0 or sy == 0:
            raise PSError("undefinedresult: zero scale")
        self.scale_x *= sx
        self.scale_y *= sy

    def op_setlinewidth(self) -> None:
        width = self.pop_num()
        if width < 0:
            raise PSError("rangecheck: negative line width")
        self.line_width = max(width * self.scale_x, 0.1)

    @traced
    def op_arc(self) -> None:
        """``x y r ang1 ang2 arc``: append a polyline approximation.

        Like GhostScript, the arc is flattened; each step allocates a
        segment record, and a flattening workspace covers the whole arc.
        """
        ang2 = math.radians(self.pop_num())
        ang1 = math.radians(self.pop_num())
        radius = self.pop_num() * self.scale_x
        cy = self.pop_num() * self.scale_y + self.translate_y
        cx = self.pop_num() * self.scale_x + self.translate_x
        if radius < 0:
            raise PSError("rangecheck: negative arc radius")
        if ang2 < ang1:
            ang2 += 2 * math.pi
        steps = max(4, int(24 * (ang2 - ang1) / (2 * math.pi)))
        workspace = self.heap.malloc(96)
        try:
            self.heap.touch(workspace, steps)
            start = (cx + radius * math.cos(ang1),
                     cy + radius * math.sin(ang1))
            if self.path.current is None:
                self.path.moveto(*start)
            else:
                self.path.lineto(*start, self.alloc_segment())
            for step in range(1, steps + 1):
                angle = ang1 + (ang2 - ang1) * step / steps
                self.path.lineto(
                    cx + radius * math.cos(angle),
                    cy + radius * math.sin(angle),
                    self.alloc_segment(),
                )
        finally:
            self.heap.free(workspace)

    @traced
    def op_stringwidth(self) -> None:
        """``(text) stringwidth``: push the advance width and height."""
        value = self.pop()
        if value[0] != "str":
            raise PSError("typecheck: stringwidth needs a string")
        if self.current_font is None:
            raise PSError("invalidfont: no font set")
        _, size, record = self.current_font
        self.heap.touch(record, 1)
        width = 0.6 * size * len(value[1])
        self.free_value(value)
        self.push(("num", width))
        self.push(("num", 0.0))

    @traced
    def op_dict(self) -> None:
        """``n dict``: allocate an empty dictionary object."""
        capacity = int(self.pop_num())
        if capacity < 0:
            raise PSError("rangecheck: negative dict size")
        handle = self.heap.malloc(32 + DICT_ENTRY_SIZE * max(1, capacity))
        self.heap.touch(handle, 2)
        self.push(("dict", {}, handle))

    def op_begin(self) -> None:
        value = self.pop()
        if value[0] != "dict":
            raise PSError("typecheck: begin needs a dict")
        self._dict_stack.append((value[2], value[1]))

    def op_end(self) -> None:
        if not self._dict_stack:
            raise PSError("dictstackunderflow: end")
        handle, bindings = self._dict_stack.pop()
        # Leaving scope releases the dictionary and its bindings.
        for binding in bindings.values():
            self.free_value(binding)
        self.heap.free(handle)
