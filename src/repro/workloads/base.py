"""Workload framework.

The paper measures five allocation-intensive C programs.  This package
recreates each as a genuine mini-program in Python (see DESIGN.md §2 for
the substitution argument): the programs really run their algorithms —
factoring, logic minimization, AWK interpretation, PostScript
interpretation, report extraction — and every dynamic object they create
is allocated from a :class:`~repro.runtime.heap.TracedHeap`.

Conventions every workload follows:

* The workload is a class holding the heap as ``self.heap``; its functions
  are methods decorated with :func:`~repro.runtime.heap.traced` so the
  allocation-time call chain mirrors the program's real structure.
* Allocation goes through one or more *wrapper layers* (an ``xalloc``
  method modelled on the ubiquitous C ``xmalloc`` idiom).  This reproduces
  the paper's observation that short call chains are poor predictors
  because "until enough layers are resolved, the different actual
  allocators of objects are indistinguishable" (§4).
* Modelled object sizes follow C layout rules for the structures the
  original program would use (struct headers plus payload), computed by
  small ``sizeof``-style helpers on each workload.
* Each workload publishes at least two datasets, ``train`` and ``test``,
  whose relationship mimics the paper's input pairs (§4): GAWK runs the
  same script on different data, PERL runs a *different program*, and so
  on.  All inputs are generated deterministically (seeded) so runs are
  reproducible without bundled data files.
* ``scale`` multiplies input sizes so the test suite can run tiny
  configurations while benchmarks run full ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.runtime.events import Trace
from repro.runtime.heap import TracedHeap

__all__ = ["Workload", "DatasetSpec", "WorkloadError"]


class WorkloadError(Exception):
    """Raised for unknown datasets or invalid workload parameters."""


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one input dataset of a workload."""

    name: str
    description: str
    #: How this dataset relates to the others — used in EXPERIMENTS.md to
    #: explain why true prediction is easy or hard for the program.
    relation: str = ""


class Workload:
    """Base class for the five traced mini-programs.

    Subclasses set :attr:`name`, :attr:`DATASETS`, and implement
    :meth:`run`.  Instances are single-use, like the heap they wrap.
    """

    name: str = "abstract"
    DATASETS: Dict[str, DatasetSpec] = {}

    def __init__(self, heap: TracedHeap):
        self.heap = heap

    def run(self, dataset: str, scale: float = 1.0) -> None:
        """Execute the program on ``dataset`` at the given input scale."""
        raise NotImplementedError

    @classmethod
    def dataset_spec(cls, dataset: str) -> DatasetSpec:
        """The spec for ``dataset``; raises :class:`WorkloadError` if unknown."""
        try:
            return cls.DATASETS[dataset]
        except KeyError:
            raise WorkloadError(
                f"{cls.name}: unknown dataset {dataset!r} "
                f"(have {sorted(cls.DATASETS)})"
            ) from None

    @classmethod
    def trace(cls, dataset: str, scale: float = 1.0,
              record_touches: bool = False) -> Trace:
        """Run the workload on a fresh heap and return its trace.

        ``record_touches`` additionally records every heap reference as a
        timeline event (needed by the cache-locality experiments; roughly
        doubles trace size).
        """
        cls.dataset_spec(dataset)
        # The framework harness is the one sanctioned heap-construction
        # site: workload code itself must use the injected self.heap.
        heap = TracedHeap(program=cls.name, dataset=dataset,  # alloclint: disable=R001
                          record_touches=record_touches)
        instance = cls(heap)
        instance.run(dataset, scale=scale)
        return heap.finish()

    @classmethod
    def train_test_pair(
        cls, scale: float = 1.0
    ) -> Tuple[Trace, Trace]:
        """Traces of the ``train`` and ``test`` datasets, in that order."""
        return cls.trace("train", scale=scale), cls.trace("test", scale=scale)
