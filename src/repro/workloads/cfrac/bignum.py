"""Traced arbitrary-precision arithmetic for the cfrac workload.

The original CFRAC benchmark (Zorn & Grunwald's allocation suite) spends
nearly all of its allocation on multi-precision integers: every arithmetic
operation mallocs a result and most results die almost immediately.  This
module recreates that behaviour.  Numeric values are computed with Python
integers, but every bignum the C program would have malloc'd is allocated
here as a traced heap object whose modelled size follows the classic
limb-array layout::

    struct bignum { int sign; int nlimbs; uint32 limbs[]; }  ->  8 + 4*nlimbs

Arithmetic routines are layered the way the C library is layered —
``operation -> bn_new -> xalloc -> malloc`` — so the allocation-site
call chains have the depth structure the paper's Table 6 depends on
(length-1 chains all end in ``xalloc`` and predict nothing).

Callers own every bignum they receive and must :meth:`~BignumLib.free` it;
the lifetimes observed by the tracer are the program's real ones, not an
artifact of garbage collection.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.runtime.heap import HeapObject, TracedHeap, traced

__all__ = ["BignumLib", "BIGNUM_HEADER", "LIMB_BYTES"]

#: Modelled ``struct bignum`` header: sign word + limb count.
BIGNUM_HEADER = 8
#: Limbs are 32-bit words.
LIMB_BYTES = 4


def _limbs(value: int) -> int:
    """Number of 32-bit limbs needed to store ``value``'s magnitude."""
    return max(1, (abs(value).bit_length() + 31) // 32)


class BignumLib:
    """Multi-precision integer library over a traced heap.

    Each :class:`~repro.runtime.heap.HeapObject` produced here carries its
    Python integer value as payload; ``size`` models the C allocation.
    """

    def __init__(self, heap: TracedHeap):
        self.heap = heap

    # ------------------------------------------------------------------
    # Allocation layers (the xmalloc idiom)
    # ------------------------------------------------------------------

    @traced
    def xalloc(self, size: int) -> HeapObject:
        """Checked allocation wrapper — the C program's ``xmalloc``."""
        return self.heap.malloc(size)

    @traced
    def bn_new(self, value: int) -> HeapObject:
        """Allocate a bignum holding ``value``."""
        obj = self.xalloc(BIGNUM_HEADER + LIMB_BYTES * _limbs(value))
        obj.payload = value
        # Writing the limbs touches the header and each limb word.
        self.heap.touch(obj, 2 + 2 * _limbs(value))
        return obj

    def free(self, obj: HeapObject) -> None:
        """Release a bignum."""
        self.heap.free(obj)

    def value(self, obj: HeapObject) -> int:
        """Read a bignum's value (touches the header and each limb)."""
        self.heap.touch(obj, 2 + 2 * _limbs(obj.payload))
        return obj.payload

    # ------------------------------------------------------------------
    # Arithmetic (each returns freshly allocated results)
    # ------------------------------------------------------------------

    @traced
    def add(self, a: HeapObject, b: HeapObject) -> HeapObject:
        """``a + b`` as a new bignum."""
        return self.bn_new(self.value(a) + self.value(b))

    @traced
    def sub(self, a: HeapObject, b: HeapObject) -> HeapObject:
        """``a - b`` as a new bignum."""
        return self.bn_new(self.value(a) - self.value(b))

    @traced
    def mul(self, a: HeapObject, b: HeapObject) -> HeapObject:
        """``a * b`` as a new bignum."""
        return self.bn_new(self.value(a) * self.value(b))

    @traced
    def mul_small(self, a: HeapObject, k: int) -> HeapObject:
        """``a * k`` for a machine-word ``k``, as a new bignum."""
        return self.bn_new(self.value(a) * k)

    @traced
    def divmod(self, a: HeapObject, b: HeapObject) -> Tuple[HeapObject, HeapObject]:
        """``(a // b, a % b)`` as two new bignums."""
        q, r = divmod(self.value(a), self.value(b))
        return self.bn_new(q), self.bn_new(r)

    @traced
    def mod(self, a: HeapObject, b: HeapObject) -> HeapObject:
        """``a % b`` as a new bignum."""
        return self.bn_new(self.value(a) % self.value(b))

    @traced
    def mulmod(self, a: HeapObject, b: HeapObject, m: HeapObject) -> HeapObject:
        """``a * b mod m`` as a new bignum (the CF recurrence workhorse)."""
        return self.bn_new(self.value(a) * self.value(b) % self.value(m))

    @traced
    def gcd(self, a: HeapObject, b: HeapObject) -> HeapObject:
        """``gcd(a, b)`` as a new bignum.

        The Euclidean remainder sequence allocates (and promptly frees) one
        temporary per step, as the C library's ``bn_gcd`` does.
        """
        x, y = abs(self.value(a)), abs(self.value(b))
        while y:
            tmp = self.bn_new(x % y)
            x, y = y, self.value(tmp)
            self.free(tmp)
        return self.bn_new(x)

    @traced
    def isqrt(self, a: HeapObject) -> HeapObject:
        """Integer square root as a new bignum."""
        return self.bn_new(math.isqrt(self.value(a)))

    @traced
    def copy(self, a: HeapObject) -> HeapObject:
        """A fresh bignum with the same value."""
        return self.bn_new(self.value(a))

    def is_zero(self, a: HeapObject) -> bool:
        """Whether the bignum is zero (touches one limb)."""
        self.heap.touch(a, 1)
        return a.payload == 0
