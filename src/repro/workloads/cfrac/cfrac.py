"""CFRAC: integer factorization by continued fractions (Morrison-Brillhart).

A working reimplementation of the paper's first benchmark program: factor
products of two primes with the continued-fraction method.  The algorithm
is the real one —

1. expand the continued fraction of ``sqrt(k*N)``, generating the
   convergent numerators ``A_i (mod N)`` and the small quadratic residues
   ``Q_i`` with ``A_{i-1}^2 = (-1)^i Q_i (mod N)``;
2. keep the expansions whose ``Q_i`` factor completely over a factor base
   of small primes (a *smooth relation*);
3. once there are more relations than factor-base primes, find a subset
   whose exponent vectors sum to zero mod 2 by Gaussian elimination over
   GF(2), giving ``X^2 = Y^2 (mod N)`` and usually a factor via
   ``gcd(X - Y, N)``.

Allocation behaviour mirrors the C benchmark: the continued-fraction
recurrence and smoothness testing allocate a dozen short-lived bignums per
step through :class:`~repro.workloads.cfrac.bignum.BignumLib`, while the
factor base and the accumulated relations survive until the elimination
phase — the extreme lifetime skew the paper observed in CFRAC ("while the
vast majority of objects ... are very short-lived, some objects it
allocates are extremely long-lived", §5.2).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.runtime.heap import HeapObject, TracedHeap, traced
from repro.workloads.base import DatasetSpec, Workload, WorkloadError
from repro.workloads.cfrac.bignum import BignumLib
from repro.workloads.inputs import semiprimes

__all__ = ["CfracWorkload"]

#: Trial-division bound for the factor base.
FACTOR_BASE_BOUND = 1000
#: Relations collected beyond the factor-base size before solving.
EXTRA_RELATIONS = 10
#: Continued-fraction steps tried per multiplier before giving up on it.
MAX_STEPS_PER_MULTIPLIER = 20000
#: Multipliers tried in order (square-free, as Morrison-Brillhart suggest).
MULTIPLIERS = (1, 3, 5, 7, 11, 13)

#: Modelled C sizes: a relation record and the factor-base array header.
RELATION_STRUCT_SIZE = 24
ARRAY_HEADER = 8

#: Single-large-prime variation: non-smooth residues whose cofactor is a
#: single prime below this bound are kept as *partial relations*; two
#: partials sharing a large prime combine into a full relation.
LARGE_PRIME_BOUND = FACTOR_BASE_BOUND ** 2


class _EarlyFactor(Exception):
    """Raised internally when a large prime turns out to divide n."""

    def __init__(self, factor: int):
        super().__init__(factor)
        self.factor = factor


class _Relation:
    """Payload of one smooth relation: its A value and exponent vector."""

    __slots__ = ("a_copy", "exps", "bitvec", "record")

    def __init__(self, a_copy: HeapObject, exps: List[int], bitvec: HeapObject):
        self.a_copy = a_copy
        self.exps = exps
        self.bitvec = bitvec
        self.record: Optional[HeapObject] = None


class CfracWorkload(Workload):
    """The cfrac benchmark: factor semiprimes, tracing every allocation."""

    name = "cfrac"
    DATASETS = {
        "train": DatasetSpec(
            "train",
            "ten 10-digit semiprimes (seed 101)",
            relation="same program, different numbers of the same magnitude",
        ),
        "test": DatasetSpec(
            "test",
            "ten 10-digit semiprimes (seed 202)",
            relation="same program, different numbers of the same magnitude",
        ),
        "tiny": DatasetSpec("tiny", "two 8-digit semiprimes, for tests"),
    }

    def __init__(self, heap: TracedHeap):
        super().__init__(heap)
        self.bn = BignumLib(heap)
        #: Factors found, keyed by input; populated by :meth:`run`.
        self.results: Dict[int, Optional[int]] = {}
        #: Exit-time report records (record handle, value bignum); these
        #: survive to program exit like the C program's result list.
        self._retained: List[Tuple[HeapObject, HeapObject]] = []

    def run(self, dataset: str, scale: float = 1.0) -> None:
        self.dataset_spec(dataset)
        if dataset == "tiny":
            numbers = semiprimes(2, seed=33, digits=8)
        else:
            seed = 101 if dataset == "train" else 202
            count = max(1, round(10 * scale))
            numbers = semiprimes(count, seed=seed, digits=10)
        for n in numbers:
            factor = self.factor(n)
            self.results[n] = factor
            self.record_result(n, factor)

    @traced
    def record_result(self, n: int, factor: Optional[int]) -> None:
        """Retain the factorization for the exit-time report.

        The C program keeps every result until it prints them at exit;
        these records are cfrac's only whole-run-lifetime allocations,
        which is why its maximum object lifetime in Table 3 equals its
        total allocation.
        """
        record = self.bn.xalloc(RELATION_STRUCT_SIZE)
        record.payload = (n, factor)
        self.heap.touch(record, 2)
        value = self.bn.bn_new(factor if factor else n)
        self._retained.append((record, value))

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    @traced
    def factor(self, n: int) -> Optional[int]:
        """Find a non-trivial factor of ``n``; ``None`` if the search fails."""
        if n < 4:
            raise WorkloadError(f"nothing to factor in {n}")
        root = math.isqrt(n)
        if root * root == n:
            return root
        n_bn = self.bn.bn_new(n)
        try:
            for k in MULTIPLIERS:
                factor = self.try_multiplier(n_bn, k)
                if factor is not None:
                    return factor
            return None
        except _EarlyFactor as found:
            return found.factor
        finally:
            self.bn.free(n_bn)

    @traced
    def try_multiplier(self, n_bn: HeapObject, k: int) -> Optional[int]:
        """Run one continued-fraction expansion of ``sqrt(k * n)``."""
        n = self.bn.value(n_bn)
        primes, base_obj = self.build_factor_base(k * n)
        try:
            # Small primes dividing n are factors outright.
            for p in primes:
                if n % p == 0 and p < n:
                    return p
            relations = self.expand(n_bn, k, primes)
            if relations is None:
                return None
            try:
                return self.solve(n_bn, relations, primes)
            finally:
                self.free_relations(relations)
        finally:
            self.bn.free(base_obj)

    # ------------------------------------------------------------------
    # Factor base
    # ------------------------------------------------------------------

    @traced
    def build_factor_base(self, m: int) -> Tuple[List[int], HeapObject]:
        """Primes ``p <= bound`` over which ``m`` is a quadratic residue.

        Returns the prime list and the (long-lived) traced array modelling
        the C program's factor-base vector.
        """
        primes = [2]
        for p in _odd_primes(FACTOR_BASE_BOUND):
            if m % p == 0 or pow(m % p, (p - 1) // 2, p) == 1:
                primes.append(p)
        base_obj = self.bn.xalloc(ARRAY_HEADER + 4 * len(primes))
        self.heap.touch(base_obj, len(primes))
        return primes, base_obj

    # ------------------------------------------------------------------
    # Continued-fraction expansion
    # ------------------------------------------------------------------

    @traced
    def expand(
        self, n_bn: HeapObject, k: int, primes: List[int]
    ) -> Optional[List[_Relation]]:
        """Generate smooth relations from the expansion of ``sqrt(k*n)``.

        Returns ``None`` when the expansion's period is exhausted or the
        step budget runs out before enough relations appear.
        """
        bn = self.bn
        n = bn.value(n_bn)
        m = k * n
        root = math.isqrt(m)
        needed = len(primes) + 1 + EXTRA_RELATIONS

        m_bn = bn.bn_new(m)
        root_bn = bn.bn_new(root)
        # CF state: P_i, Q_i as bignums; A_{i-1}, A_{i-2} mod n.
        p_cur = bn.bn_new(0)
        q_cur = bn.bn_new(1)
        a_val = root  # a_0
        a_prev2 = bn.bn_new(1)  # A_{-1}
        a_prev = bn.bn_new(root % n)  # A_0

        relations: List[_Relation] = []
        partials: Dict[int, Tuple[HeapObject, List[int]]] = {}
        try:
            for step in range(1, MAX_STEPS_PER_MULTIPLIER + 1):
                # P_{i} = a_{i-1} * Q_{i-1} - P_{i-1}
                t1 = bn.mul_small(q_cur, a_val)
                p_next = bn.sub(t1, p_cur)
                bn.free(t1)
                # Q_{i} = (m - P_i^2) / Q_{i-1}
                t2 = bn.mul(p_next, p_next)
                t3 = bn.sub(m_bn, t2)
                q_next, rem = bn.divmod(t3, q_cur)
                bn.free(t2)
                bn.free(t3)
                if not bn.is_zero(rem):
                    raise WorkloadError("CF recurrence broke: non-zero remainder")
                bn.free(rem)

                q_value = bn.value(q_next)
                if q_value == 1 and step > 1:
                    # Period exhausted; this multiplier is done.
                    bn.free(q_next)
                    bn.free(p_next)
                    return None if len(relations) < needed else relations

                # a_i = (root + P_i) / Q_i
                t4 = bn.add(root_bn, p_next)
                a_bn, a_rem = bn.divmod(t4, q_next)
                a_val = bn.value(a_bn)
                bn.free(t4)
                bn.free(a_rem)
                bn.free(a_bn)

                # Smoothness: A_{i-1}^2 = (-1)^i Q_i (mod n).
                factored = self.smooth_factor(q_value, primes, sign=step % 2)
                if factored is not None:
                    exps, cofactor = factored
                    if cofactor == 1:
                        relations.append(
                            self.make_relation(a_prev, exps, primes)
                        )
                    else:
                        full = self.combine_partial(
                            n_bn, partials, a_prev, exps, cofactor, primes
                        )
                        if full is not None:
                            relations.append(full)
                    if len(relations) >= needed:
                        bn.free(q_next)
                        bn.free(p_next)
                        return relations

                # A_i = (a_i * A_{i-1} + A_{i-2}) mod n
                t5 = bn.mul_small(a_prev, a_val)
                t6 = bn.add(t5, a_prev2)
                a_next = bn.mod(t6, n_bn)
                bn.free(t5)
                bn.free(t6)

                bn.free(a_prev2)
                a_prev2, a_prev = a_prev, a_next
                bn.free(p_cur)
                bn.free(q_cur)
                p_cur, q_cur = p_next, q_next
            return None
        finally:
            for obj in (m_bn, root_bn, p_cur, q_cur, a_prev2, a_prev):
                if not obj.freed:
                    bn.free(obj)
            for stored_a, _ in partials.values():
                if not stored_a.freed:
                    bn.free(stored_a)
            # Relations are freed here only on failure paths that abandon
            # them; successful returns hand ownership to the caller.
            if len(relations) < len(primes) + 1 + EXTRA_RELATIONS:
                self.free_relations(relations)

    @traced
    def smooth_factor(
        self, q: int, primes: List[int], sign: int
    ) -> Optional[Tuple[List[int], int]]:
        """Factor ``q`` over the base; returns ``(exponents, cofactor)``.

        The cofactor is 1 for a fully smooth residue, a single large prime
        below :data:`LARGE_PRIME_BOUND` for a partial relation, and the
        whole return is ``None`` when the residue is useless.  Successful
        divisions allocate the quotient bignum the C library would
        produce; failed divisibility tests are register-only, like the
        word-sized top-limb test in the original.
        """
        bn = self.bn
        exps = [sign]  # exponent of -1
        remaining = q
        for p in primes:
            count = 0
            while remaining % p == 0:
                quotient = bn.bn_new(remaining // p)
                remaining = bn.value(quotient)
                bn.free(quotient)
                count += 1
            exps.append(count)
        if remaining == 1:
            return exps, 1
        if remaining < LARGE_PRIME_BOUND:
            # Trial division removed every prime below the bound's square
            # root, so the cofactor is necessarily prime.
            return exps, remaining
        return None

    @traced
    def make_relation(
        self, a_prev: HeapObject, exps: List[int], primes: List[int]
    ) -> _Relation:
        """Allocate the long-lived record of one smooth relation."""
        bn = self.bn
        a_copy = bn.copy(a_prev)
        bitvec = bn.xalloc(ARRAY_HEADER + (len(primes) + 8) // 8)
        bitvec.payload = _parity_mask(exps)
        self.heap.touch(bitvec, (len(primes) + 31) // 32)
        record = bn.xalloc(RELATION_STRUCT_SIZE)
        record.payload = _Relation(a_copy, exps, bitvec)
        # The record object itself is freed together with the relation; we
        # return the payload and keep the handle inside it.
        record.payload.record = record  # type: ignore[attr-defined]
        return record.payload

    @traced
    def combine_partial(
        self,
        n_bn: HeapObject,
        partials: Dict[int, Tuple[HeapObject, List[int]]],
        a_prev: HeapObject,
        exps: List[int],
        large_prime: int,
        primes: List[int],
    ) -> Optional[_Relation]:
        """Store a partial relation, or combine it with a stored partner.

        Two partials sharing a large prime ``lp`` give
        ``(A1 * A2 / lp)^2 = prod p^(e1+e2) (mod n)`` — a full relation.
        The stored partial's A value is a medium-lived allocation: it
        survives until its partner arrives or the expansion ends.
        """
        bn = self.bn
        n = bn.value(n_bn)
        if n % large_prime == 0 and large_prime < n:
            raise _EarlyFactor(large_prime)
        partner = partials.pop(large_prime, None)
        if partner is None:
            partials[large_prime] = (bn.copy(a_prev), list(exps))
            return None
        partner_a, partner_exps = partner
        product = bn.mulmod(a_prev, partner_a, n_bn)
        bn.free(partner_a)
        inverse = bn.bn_new(pow(large_prime, -1, n))
        combined_a = bn.mulmod(product, inverse, n_bn)
        bn.free(product)
        bn.free(inverse)
        combined_exps = [a + b for a, b in zip(exps, partner_exps)]
        relation = self.make_relation(combined_a, combined_exps, primes)
        bn.free(combined_a)
        return relation

    def free_relations(self, relations: List[_Relation]) -> None:
        """Release every object owned by ``relations``."""
        for rel in relations:
            if not rel.a_copy.freed:
                self.bn.free(rel.a_copy)
            if not rel.bitvec.freed:
                self.bn.free(rel.bitvec)
            record = getattr(rel, "record", None)
            if record is not None and not record.freed:
                self.bn.free(record)

    # ------------------------------------------------------------------
    # Linear algebra and the final congruence
    # ------------------------------------------------------------------

    @traced
    def solve(
        self,
        n_bn: HeapObject,
        relations: List[_Relation],
        primes: List[int],
    ) -> Optional[int]:
        """Find dependencies over GF(2) and try each for a factor."""
        for combo in self.dependencies(relations):
            factor = self.try_congruence(n_bn, relations, primes, combo)
            if factor is not None:
                return factor
        return None

    @traced
    def dependencies(self, relations: List[_Relation]) -> List[int]:
        """Subsets (as bitmasks over relation indices) with even exponents.

        Gaussian elimination over GF(2); each row read touches the
        relation's stored bit vector.
        """
        pivot_by_bit: Dict[int, Tuple[int, int]] = {}
        combos: List[int] = []
        for index, rel in enumerate(relations):
            self.heap.touch(rel.bitvec, 2)
            mask = rel.bitvec.payload
            combo = 1 << index
            while mask:
                low = mask & -mask
                pivot = pivot_by_bit.get(low)
                if pivot is None:
                    pivot_by_bit[low] = (mask, combo)
                    break
                mask ^= pivot[0]
                combo ^= pivot[1]
            if mask == 0:
                combos.append(combo)
        return combos

    @traced
    def try_congruence(
        self,
        n_bn: HeapObject,
        relations: List[_Relation],
        primes: List[int],
        combo: int,
    ) -> Optional[int]:
        """Build ``X^2 = Y^2 (mod n)`` from one dependency and test gcd."""
        bn = self.bn
        n = bn.value(n_bn)
        chosen = [
            rel for index, rel in enumerate(relations) if combo & (1 << index)
        ]
        if not chosen:
            return None

        x = bn.bn_new(1)
        for rel in chosen:
            nxt = bn.mulmod(x, rel.a_copy, n_bn)
            bn.free(x)
            x = nxt

        # Sum exponents (index 0 is the sign, ignored in Y).
        totals = [0] * (len(primes) + 1)
        for rel in chosen:
            for i, e in enumerate(rel.exps):
                totals[i] += e
        y = bn.bn_new(1)
        for prime, total in zip(primes, totals[1:]):
            if total % 2 != 0:
                raise WorkloadError("dependency with odd exponent sum")
            if total:
                p_pow = bn.bn_new(pow(prime, total // 2, n))
                nxt = bn.mulmod(y, p_pow, n_bn)
                bn.free(p_pow)
                bn.free(y)
                y = nxt

        diff = bn.sub(x, y)
        g = bn.gcd(diff, n_bn)
        factor = bn.value(g)
        bn.free(diff)
        bn.free(g)
        bn.free(x)
        bn.free(y)
        if 1 < factor < n:
            return factor
        return None


def _parity_mask(exps: List[int]) -> int:
    """Bit ``i`` set when ``exps[i]`` is odd."""
    mask = 0
    for i, e in enumerate(exps):
        if e & 1:
            mask |= 1 << i
    return mask


def _odd_primes(bound: int) -> List[int]:
    """Odd primes up to ``bound`` by sieve."""
    sieve = bytearray([1]) * (bound + 1)
    sieve[0:2] = b"\x00\x00"
    for i in range(2, math.isqrt(bound) + 1):
        if sieve[i]:
            sieve[i * i :: i] = bytearray(len(sieve[i * i :: i]))
    return [i for i in range(3, bound + 1) if sieve[i]]
