"""The cfrac workload: continued-fraction integer factorization."""

from repro.workloads.cfrac.bignum import BignumLib
from repro.workloads.cfrac.cfrac import CfracWorkload

__all__ = ["BignumLib", "CfracWorkload"]
