"""Deterministic input generators for the workloads.

The paper's programs consumed real files — dictionaries, PLA examples,
PostScript manuals, integers to factor.  To keep the reproduction
self-contained every input is generated pseudo-randomly from a fixed seed:
the same (dataset, scale) always produces the same input, so traces are
reproducible, while ``train`` and ``test`` seeds differ so true prediction
is a genuine cross-input experiment.

Generators here are shared across workloads; each workload's module
decides how to combine them (which seeds, sizes, and shapes make up its
``train`` and ``test`` datasets).
"""

from __future__ import annotations

import random
from typing import List, Tuple

__all__ = [
    "word_list",
    "text_lines",
    "semiprimes",
    "pla_terms",
    "is_probable_prime",
]

_VOWELS = "aeiou"
_CONSONANTS = "bcdfghjklmnprstvwz"


def word_list(count: int, seed: int, min_syllables: int = 1,
              max_syllables: int = 4) -> List[str]:
    """``count`` pronounceable pseudo-dictionary words, deterministically.

    Words are syllable-built so their length distribution (3-12 chars)
    resembles a natural dictionary — the shape that drives string-buffer
    sizes in the gawk and perl workloads.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    rng = random.Random(seed)
    words = []
    for _ in range(count):
        syllables = rng.randint(min_syllables, max_syllables)
        parts = []
        for _ in range(syllables):
            parts.append(rng.choice(_CONSONANTS))
            parts.append(rng.choice(_VOWELS))
            if rng.random() < 0.3:
                parts.append(rng.choice(_CONSONANTS))
        words.append("".join(parts))
    return words


def text_lines(lines: int, seed: int, words_per_line: Tuple[int, int] = (3, 12),
               vocabulary: int = 500) -> List[str]:
    """``lines`` lines of space-separated words over a small vocabulary.

    Models the record-oriented files the paper's gawk and perl scripts
    processed.  A bounded vocabulary makes associative-array workloads
    (word counting) behave like real text.
    """
    vocab = word_list(vocabulary, seed=seed ^ 0x5EED)
    rng = random.Random(seed)
    lo, hi = words_per_line
    return [
        " ".join(rng.choice(vocab) for _ in range(rng.randint(lo, hi)))
        for _ in range(lines)
    ]


def is_probable_prime(n: int) -> bool:
    """Deterministic Miller-Rabin for 64-bit integers."""
    if n < 2:
        return False
    for p in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    # These witnesses are exact for every n < 3.3 * 10^24.
    for a in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def _random_prime(rng: random.Random, digits: int) -> int:
    lo = 10 ** (digits - 1)
    hi = 10 ** digits - 1
    while True:
        candidate = rng.randrange(lo, hi) | 1
        if is_probable_prime(candidate):
            return candidate


def semiprimes(count: int, seed: int, digits: int = 9) -> List[int]:
    """``count`` products of two primes with ``digits`` total digits.

    The cfrac inputs: "20-40 digit numbers that were the product of two
    primes" in the paper, scaled down so the pure-Python factorizer
    finishes in seconds while exercising the same allocation structure.
    """
    rng = random.Random(seed)
    hi_digits = digits // 2 + digits % 2
    lo_digits = digits - hi_digits
    result = []
    for _ in range(count):
        p = _random_prime(rng, max(2, lo_digits))
        q = _random_prime(rng, max(2, hi_digits))
        result.append(p * q)
    return result


def pla_terms(
    inputs: int, terms: int, seed: int, dont_care_rate: float = 0.4
) -> List[str]:
    """A random two-level cover: ``terms`` product terms over ``inputs`` vars.

    Each term is a string over ``{0, 1, -}`` (the PLA input-plane format
    espresso reads); ``dont_care_rate`` controls cube size.  Random covers
    are heavily redundant, which gives the minimizer real work.
    """
    rng = random.Random(seed)
    result = []
    for _ in range(terms):
        term = []
        for _ in range(inputs):
            if rng.random() < dont_care_rate:
                term.append("-")
            else:
                term.append(rng.choice("01"))
        result.append("".join(term))
    return result
