"""The benchmark suite: timed, telemetry-instrumented allocator replays.

One benchmark per (program, allocator) pair over the evaluation dataset:
the trace is resolved once through the shared
:class:`~repro.analysis.TraceStore` (so cache state never leaks into the
timed region), then replayed ``repeats`` times with a fresh
:class:`~repro.obs.telemetry.Telemetry` recorder each time.  The minimum
wall time across repeats is the recorded timing — the standard defence
against scheduler noise — and the deterministic metrics (instruction
costs, capture rate, heap size, mispredictions) come from the final
replay, which is bit-identical to every other replay of the same trace.

The telemetry probe is attached on *every* repeat so timings are
internally consistent (its ~5% overhead is part of the measured quantity,
identically in every session).  Each benchmark runs under a
``bench.<name>`` span when tracing is enabled, so a session exports a
Perfetto-readable picture of exactly what it measured.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.alloc.spec import (
    BSD_SPEC,
    FIRSTFIT_SPEC,
    PAPER_DEFAULT_SPEC,
    AllocatorSpec,
)
from repro.analysis.simulate import SimulationResult, simulate_spec
from repro.bench.provenance import collect_provenance
from repro.bench.record import BenchRecord, BenchSession
from repro.obs.metrics import Metrics, peak_rss_kb
from repro.obs.spans import TRACER
from repro.obs.telemetry import MISPREDICTION_KINDS, Telemetry

__all__ = ["BENCH_ALLOCATORS", "BENCH_SPECS", "DEFAULT_REPEATS",
           "run_suite", "run_session"]

#: The allocators the suite replays, in record order.
BENCH_ALLOCATORS = ("arena", "firstfit", "bsd")

#: Suite name -> the :class:`AllocatorSpec` it replays.
BENCH_SPECS: Dict[str, AllocatorSpec] = {
    "arena": PAPER_DEFAULT_SPEC,
    "firstfit": FIRSTFIT_SPEC,
    "bsd": BSD_SPEC,
}

#: Default min-of-k repeat count.
DEFAULT_REPEATS = 3

#: Evaluation dataset for every benchmark (the paper's "largest input").
_DATASET = "test"


def _resolve_trace(store, program: str):
    """The replay input: a streamed source when the store streams.

    A streaming store (``bench run --jobs N``) hands back its
    file-backed — possibly sharded — :meth:`source` view so the timed
    region measures the streamed replay; any other store (including the
    minimal fakes in tests) keeps the materialized :meth:`trace` path.
    """
    if getattr(store, "streaming", False):
        return store.source(program, _DATASET)
    return store.trace(program, _DATASET)


def _resolve_predictor(store, program: str, spec: AllocatorSpec):
    """The spec's predictor through the store's resolution surface.

    A real :class:`TraceStore` resolves by spec
    (:meth:`~repro.analysis.experiments.TraceStore.predictor_for`); the
    minimal fakes in tests only expose ``predictor(program)``, which is
    exactly the default-spec answer.
    """
    if spec.predictor == "none":
        return None
    resolver = getattr(store, "predictor_for", None)
    if resolver is not None:
        return resolver(program, spec)
    return store.predictor(program)


def _replay_once(
    store, program: str, allocator: str, telemetry: Telemetry
) -> SimulationResult:
    trace = _resolve_trace(store, program)
    spec = BENCH_SPECS.get(allocator)
    if spec is None:
        raise ValueError(f"unknown allocator {allocator!r}")
    return simulate_spec(
        trace, spec, _resolve_predictor(store, program, spec),
        telemetry=telemetry,
    )


def run_suite(
    store,
    programs: Optional[Sequence[str]] = None,
    allocators: Sequence[str] = BENCH_ALLOCATORS,
    repeats: int = DEFAULT_REPEATS,
    clock: Callable[[], float] = time.perf_counter,
) -> List[BenchRecord]:
    """Run every benchmark and return one record per (program, allocator).

    ``store`` needs the :class:`~repro.analysis.TraceStore` surface
    (``programs``, ``trace``, ``predictor``) — tests substitute a fake
    over synthetic traces.  Traces and predictors are resolved *before*
    the timed region so a cold cache can never masquerade as an allocator
    regression.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    programs = list(programs) if programs is not None else list(store.programs)
    records: List[BenchRecord] = []
    for program in programs:
        # Resolve the trace and predictor outside the timed replays.
        _resolve_trace(store, program)
        if "arena" in allocators:
            _resolve_predictor(store, program, BENCH_SPECS["arena"])
        for allocator in allocators:
            name = f"replay/{program}/{allocator}"
            with TRACER.span(f"bench.{name}", cat="bench",
                             repeats=repeats):
                walls: List[float] = []
                result: Optional[SimulationResult] = None
                telemetry: Optional[Telemetry] = None
                for _ in range(repeats):
                    # A private Metrics sink keeps the per-repeat
                    # telemetry totals out of the process-wide registry.
                    telemetry = Telemetry(metrics=Metrics())
                    start = clock()
                    result = _replay_once(store, program, allocator,
                                          telemetry)
                    walls.append(clock() - start)
            totals = telemetry.totals()
            records.append(
                BenchRecord(
                    name=name,
                    program=program,
                    dataset=_DATASET,
                    allocator=allocator,
                    repeats=repeats,
                    wall_seconds=min(walls),
                    wall_seconds_mean=sum(walls) / len(walls),
                    allocs=result.ops.allocs,
                    frees=result.ops.frees,
                    instr_per_alloc=result.cost.per_alloc,
                    instr_per_free=result.cost.per_free,
                    max_heap_size=result.max_heap_size,
                    final_live_bytes=result.final_live_bytes,
                    arena_alloc_pct=result.arena_alloc_pct,
                    arena_byte_pct=result.arena_byte_pct,
                    mispredictions={
                        kind: totals[kind] for kind in MISPREDICTION_KINDS
                    },
                    peak_rss_kb=peak_rss_kb(),
                )
            )
    return records


def run_session(
    store,
    seq: int,
    programs: Optional[Sequence[str]] = None,
    allocators: Sequence[str] = BENCH_ALLOCATORS,
    repeats: int = DEFAULT_REPEATS,
    extra_provenance: Optional[Dict] = None,
) -> BenchSession:
    """Run the suite and wrap it as a provenance-stamped session."""
    with TRACER.span("bench.session", cat="bench", seq=seq):
        records = run_suite(
            store, programs=programs, allocators=allocators, repeats=repeats
        )
    return BenchSession(
        seq=seq,
        provenance=collect_provenance(
            scale=getattr(store, "scale", 1.0), extra=extra_provenance
        ),
        records=records,
    )
