"""Session provenance: what produced a benchmark record, exactly.

A perf number without its commit, scale, and interpreter is noise — the
related measurement-methodology literature (Risco-Martín et al.; van
Kempen & Berger) is largely a catalogue of conclusions that evaporated
when the harness changed under them.  Every ``BENCH_<seq>.json`` session
and the benchmark suite's ``results/metrics.json`` dump therefore carry
the same provenance block, built here.
"""

from __future__ import annotations

import platform
import subprocess
import sys
from datetime import datetime, timezone
from typing import Any, Dict, Optional

__all__ = ["BENCH_SCHEMA_VERSION", "git_sha", "collect_provenance"]

#: Version of the BENCH record schema.  Bump on any field change so the
#: comparator can refuse to diff records it does not understand.
BENCH_SCHEMA_VERSION = 1


def git_sha(short: bool = False) -> str:
    """The repository's current commit, or ``"unknown"`` outside git."""
    cmd = ["git", "rev-parse"] + (["--short"] if short else []) + ["HEAD"]
    try:
        out = subprocess.run(
            cmd, capture_output=True, text=True, timeout=10, check=True
        ).stdout.strip()
        return out or "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def collect_provenance(
    scale: float, extra: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """The provenance block stamped into every session artifact.

    ``created_at`` is informational (history listings); the comparator
    and the determinism tests ignore it.
    """
    info: Dict[str, Any] = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "git_sha": git_sha(),
        "scale": float(scale),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": f"{platform.system()}-{platform.machine()}",
        "argv0": sys.argv[0].rsplit("/", 1)[-1] if sys.argv else "",
        # Deliberate wall-clock read: created_at is informational only
        # and excluded from determinism comparisons (see docstring).
        "created_at": datetime.now(timezone.utc).isoformat(  # alloclint: disable=R003
            timespec="seconds"
        ),
    }
    if extra:
        info.update(extra)
    return info
