"""Noise-aware comparison of two benchmark sessions — the regression gate.

Two kinds of metric get two kinds of threshold:

* **wall time** is noisy even as a min-of-k, so it is held to a relative
  tolerance (default ``0.5`` = 50% slower fails) with an absolute floor —
  replays finishing in a few milliseconds are all noise and are never
  gated on time;
* **deterministic metrics** (simulated instruction costs, capture rates,
  heap size, misprediction totals) are exactly reproducible from the same
  traces, so *any* move in the bad direction is a regression: costs,
  heap size, and mispredictions must not rise; capture rates must not
  fall; event counts must not change at all.

Sessions must agree on schema version and workload scale — comparing a
``0.05``-scale run against a full-scale baseline is a category error the
comparator refuses rather than mis-reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.bench.record import BenchRecord, BenchSession

__all__ = [
    "DEFAULT_WALL_TOLERANCE",
    "DEFAULT_WALL_FLOOR",
    "Delta",
    "CompareResult",
    "compare_sessions",
    "render_compare",
]

#: Default relative wall-time tolerance (0.5 = new may be up to 50%
#: slower before it counts as a regression).
DEFAULT_WALL_TOLERANCE = 0.5

#: Wall times where both sides are under this many seconds are never
#: compared — at that duration the measurement is all scheduler noise.
DEFAULT_WALL_FLOOR = 0.05


@dataclass(frozen=True)
class Delta:
    """One metric's movement between the old and new session."""

    benchmark: str
    metric: str
    old: float
    new: float
    limit_pct: Optional[float] = None  # None: zero-tolerance metric

    @property
    def change_pct(self) -> float:
        """Relative change in percent (new vs old)."""
        if self.old == 0:
            return 0.0 if self.new == 0 else float("inf")
        return 100.0 * (self.new - self.old) / abs(self.old)


# One row per gated metric: (name, getter, direction).  Direction is the
# *good* direction — "lower" flags increases, "higher" flags decreases,
# "equal" flags any change.
_DETERMINISTIC_METRICS: List[tuple] = [
    ("allocs", lambda r: r.allocs, "equal"),
    ("frees", lambda r: r.frees, "equal"),
    ("instr_per_alloc", lambda r: r.instr_per_alloc, "lower"),
    ("instr_per_free", lambda r: r.instr_per_free, "lower"),
    ("max_heap_size", lambda r: r.max_heap_size, "lower"),
    ("arena_alloc_pct", lambda r: r.arena_alloc_pct, "higher"),
    ("arena_byte_pct", lambda r: r.arena_byte_pct, "higher"),
    ("mispredictions_total", lambda r: r.mispredictions_total, "lower"),
]

#: Relative slack for deterministic float metrics: absorbs serialization
#: rounding, nothing more.
_FLOAT_EPS = 1e-9


@dataclass
class CompareResult:
    """Everything ``bench compare`` decides, before rendering."""

    old_seq: int
    new_seq: int
    regressions: List[Delta] = field(default_factory=list)
    improvements: List[Delta] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)
    added: List[str] = field(default_factory=list)
    benchmarks_checked: int = 0

    @property
    def ok(self) -> bool:
        """True when nothing regressed and no benchmark disappeared."""
        return not self.regressions and not self.missing


def _changed(old: float, new: float) -> bool:
    return abs(new - old) > _FLOAT_EPS * max(abs(old), abs(new), 1.0)


def compare_sessions(
    old: BenchSession,
    new: BenchSession,
    wall_tolerance: float = DEFAULT_WALL_TOLERANCE,
    wall_floor: float = DEFAULT_WALL_FLOOR,
    include_wall: bool = True,
) -> CompareResult:
    """Gate ``new`` against ``old``; raises ValueError on incomparables.

    ``include_wall=False`` skips wall-time entirely — the right mode when
    the two sessions come from different machines (e.g. gating CI against
    a committed baseline), where only the deterministic metrics carry
    cross-host meaning.
    """
    if old.schema_version != new.schema_version:
        raise ValueError(
            f"schema version mismatch: old session v{old.schema_version} "
            f"vs new v{new.schema_version} — regenerate the baseline"
        )
    if old.scale != new.scale:
        raise ValueError(
            f"scale mismatch: old session ran at scale {old.scale}, new at "
            f"{new.scale} — benchmark trajectories are per-scale"
        )
    result = CompareResult(old_seq=old.seq, new_seq=new.seq)
    new_by_name = {rec.name: rec for rec in new.records}
    old_names = set()
    for old_rec in old.records:
        old_names.add(old_rec.name)
        new_rec = new_by_name.get(old_rec.name)
        if new_rec is None:
            result.missing.append(old_rec.name)
            continue
        result.benchmarks_checked += 1
        _compare_record(
            old_rec, new_rec, result,
            wall_tolerance=wall_tolerance,
            wall_floor=wall_floor,
            include_wall=include_wall,
        )
    result.added = sorted(set(new_by_name) - old_names)
    return result


def _compare_record(
    old: BenchRecord,
    new: BenchRecord,
    result: CompareResult,
    wall_tolerance: float,
    wall_floor: float,
    include_wall: bool,
) -> None:
    if include_wall and max(old.wall_seconds, new.wall_seconds) >= wall_floor:
        delta = Delta(
            benchmark=old.name,
            metric="wall_seconds",
            old=old.wall_seconds,
            new=new.wall_seconds,
            limit_pct=100.0 * wall_tolerance,
        )
        if new.wall_seconds > old.wall_seconds * (1.0 + wall_tolerance):
            result.regressions.append(delta)
        elif new.wall_seconds < old.wall_seconds * (1.0 - wall_tolerance):
            result.improvements.append(delta)
    for metric, get, direction in _DETERMINISTIC_METRICS:
        old_value, new_value = float(get(old)), float(get(new))
        if not _changed(old_value, new_value):
            continue
        delta = Delta(
            benchmark=old.name, metric=metric,
            old=old_value, new=new_value,
        )
        worse = (
            direction == "equal"
            or (direction == "lower" and new_value > old_value)
            or (direction == "higher" and new_value < old_value)
        )
        (result.regressions if worse else result.improvements).append(delta)


def _fmt_value(metric: str, value: float) -> str:
    if metric == "wall_seconds":
        return f"{value:.3f}s"
    if value == int(value):
        return f"{int(value):,}"
    return f"{value:.4f}"


def _fmt_delta(delta: Delta, verdict: str) -> str:
    pct = delta.change_pct
    pct_text = f"{pct:+.1f}%" if pct != float("inf") else "+inf%"
    limit = (
        f" (limit {delta.limit_pct:.0f}%)" if delta.limit_pct is not None
        else " (zero tolerance)"
    )
    return (
        f"{verdict} {delta.benchmark}: {delta.metric} "
        f"{_fmt_value(delta.metric, delta.old)} -> "
        f"{_fmt_value(delta.metric, delta.new)} [{pct_text}]{limit}"
    )


def render_compare(result: CompareResult) -> str:
    """The comparison as text: one line per finding, verdict last."""
    lines = [
        f"bench compare: session {result.old_seq:04d} -> "
        f"{result.new_seq:04d} ({result.benchmarks_checked} benchmarks)"
    ]
    for name in result.missing:
        lines.append(f"  MISSING {name}: present in old session, absent in new")
    for delta in result.regressions:
        lines.append("  " + _fmt_delta(delta, "REGRESSION"))
    for delta in result.improvements:
        lines.append("  " + _fmt_delta(delta, "improvement"))
    for name in result.added:
        lines.append(f"  added {name}: no old record, not gated")
    lines.append(
        "result: "
        + ("OK — no regressions"
           if result.ok
           else f"FAIL — {len(result.regressions)} regression(s), "
                f"{len(result.missing)} missing benchmark(s)")
    )
    return "\n".join(lines)
