"""Benchmark trajectory: recorded perf history and the regression gate.

``repro.bench`` turns ad-hoc timings into a recorded, comparable history:

* :mod:`repro.bench.suite` runs the benchmark suite (timed,
  telemetry-instrumented allocator replays over the shared trace store);
* :mod:`repro.bench.record` defines the schema-versioned per-benchmark
  records and sessions;
* :mod:`repro.bench.store` appends sessions to the ``BENCH_<seq>.json``
  trajectory (default ``results/bench``);
* :mod:`repro.bench.compare` gates a new session against an old one with
  noise-aware thresholds;
* :mod:`repro.bench.provenance` stamps every artifact with git SHA,
  scale, python version, and schema version.

Surfaced as ``repro-alloc bench run / compare / history`` and wired into
the benchmark pytest session (``REPRO_BENCH_RECORD=1``) and CI.
"""

from repro.bench.compare import (
    DEFAULT_WALL_FLOOR,
    DEFAULT_WALL_TOLERANCE,
    CompareResult,
    Delta,
    compare_sessions,
    render_compare,
)
from repro.bench.provenance import (
    BENCH_SCHEMA_VERSION,
    collect_provenance,
    git_sha,
)
from repro.bench.record import TIMING_FIELDS, BenchRecord, BenchSession
from repro.bench.store import BENCH_DIR_ENV, BenchStore, default_bench_dir
from repro.bench.suite import (
    BENCH_ALLOCATORS,
    DEFAULT_REPEATS,
    run_session,
    run_suite,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BENCH_ALLOCATORS",
    "BENCH_DIR_ENV",
    "DEFAULT_REPEATS",
    "DEFAULT_WALL_FLOOR",
    "DEFAULT_WALL_TOLERANCE",
    "TIMING_FIELDS",
    "BenchRecord",
    "BenchSession",
    "BenchStore",
    "CompareResult",
    "Delta",
    "collect_provenance",
    "compare_sessions",
    "default_bench_dir",
    "git_sha",
    "render_compare",
    "run_session",
    "run_suite",
]
