"""Schema-versioned benchmark records and sessions.

One :class:`BenchRecord` captures everything the regression gate needs
about one benchmark: the noisy part (min-of-k wall time) and the
deterministic part (simulated instruction costs from
:mod:`repro.alloc.costs`, arena capture rate, heap size, and the PR 2
telemetry misprediction totals).  A :class:`BenchSession` is one suite
run — the records plus full provenance — and serializes to the
``BENCH_<seq>.json`` trajectory files.

The deterministic fields are exactly reproducible from the same traces:
two suite runs on one commit produce identical records modulo the fields
named in :data:`TIMING_FIELDS` (the test suite asserts this), which is
what lets the comparator hold them to a zero-noise threshold while wall
times get a generous one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.bench.provenance import BENCH_SCHEMA_VERSION

__all__ = ["TIMING_FIELDS", "BenchRecord", "BenchSession"]

#: Record fields that vary run-to-run on the same commit (wall-clock
#: noise, memory footprint).  Everything else must be bit-identical
#: across runs.
TIMING_FIELDS = ("wall_seconds", "wall_seconds_mean", "peak_rss_kb")


@dataclass(frozen=True)
class BenchRecord:
    """One benchmark's measurements (one replay family in the suite)."""

    name: str
    program: str
    dataset: str
    allocator: str
    repeats: int
    #: Min-of-k wall time of the replay, seconds.
    wall_seconds: float
    #: Mean wall time across the k repeats, seconds (context for noise).
    wall_seconds_mean: float
    # -- deterministic metrics ----------------------------------------
    allocs: int
    frees: int
    instr_per_alloc: float
    instr_per_free: float
    max_heap_size: int
    final_live_bytes: int
    arena_alloc_pct: float
    arena_byte_pct: float
    mispredictions: Dict[str, int] = field(default_factory=dict)
    #: Peak process RSS in KB sampled after this benchmark's replays
    #: (0 when the platform cannot report it; pre-existing sessions
    #: without the field load as 0).  Environment-dependent, so it lives
    #: in :data:`TIMING_FIELDS`, outside the deterministic gate.
    peak_rss_kb: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready dict with stable key order and rounded floats."""
        return {
            "name": self.name,
            "program": self.program,
            "dataset": self.dataset,
            "allocator": self.allocator,
            "repeats": self.repeats,
            "wall_seconds": round(self.wall_seconds, 6),
            "wall_seconds_mean": round(self.wall_seconds_mean, 6),
            "allocs": self.allocs,
            "frees": self.frees,
            "instr_per_alloc": round(self.instr_per_alloc, 6),
            "instr_per_free": round(self.instr_per_free, 6),
            "max_heap_size": self.max_heap_size,
            "final_live_bytes": self.final_live_bytes,
            "arena_alloc_pct": round(self.arena_alloc_pct, 6),
            "arena_byte_pct": round(self.arena_byte_pct, 6),
            "mispredictions": dict(sorted(self.mispredictions.items())),
            "peak_rss_kb": self.peak_rss_kb,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BenchRecord":
        """Rebuild a record from its :meth:`to_dict` form."""
        return cls(
            name=data["name"],
            program=data["program"],
            dataset=data["dataset"],
            allocator=data["allocator"],
            repeats=int(data["repeats"]),
            wall_seconds=float(data["wall_seconds"]),
            wall_seconds_mean=float(data["wall_seconds_mean"]),
            allocs=int(data["allocs"]),
            frees=int(data["frees"]),
            instr_per_alloc=float(data["instr_per_alloc"]),
            instr_per_free=float(data["instr_per_free"]),
            max_heap_size=int(data["max_heap_size"]),
            final_live_bytes=int(data["final_live_bytes"]),
            arena_alloc_pct=float(data["arena_alloc_pct"]),
            arena_byte_pct=float(data["arena_byte_pct"]),
            mispredictions={
                k: int(v) for k, v in data.get("mispredictions", {}).items()
            },
            peak_rss_kb=int(data.get("peak_rss_kb", 0)),
        )

    def deterministic_dict(self) -> Dict[str, Any]:
        """:meth:`to_dict` with the run-to-run noisy fields stripped."""
        data = self.to_dict()
        for key in TIMING_FIELDS:
            data.pop(key, None)
        return data

    @property
    def mispredictions_total(self) -> int:
        """All misprediction events across the three failure modes."""
        return sum(self.mispredictions.values())


@dataclass
class BenchSession:
    """One suite run: schema version, sequence number, provenance, records."""

    seq: int
    provenance: Dict[str, Any]
    records: List[BenchRecord]
    schema_version: int = BENCH_SCHEMA_VERSION
    #: Optional per-program top-K site attribution summaries
    #: (:meth:`repro.obs.attrib.AttributionProfile.summary_dict`), keyed
    #: by program name.  Deterministic but ungated: the comparator reads
    #: only ``records``, so attaching attribution never moves the bench
    #: gate — it explains regressions, it does not define them.
    attribution: Dict[str, Any] = field(default_factory=dict)

    @property
    def scale(self) -> float:
        """The workload scale this session ran at."""
        return float(self.provenance.get("scale", 1.0))

    def record(self, name: str) -> BenchRecord:
        """The record called ``name`` (KeyError if absent)."""
        for rec in self.records:
            if rec.name == name:
                return rec
        raise KeyError(name)

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "schema_version": self.schema_version,
            "seq": self.seq,
            "provenance": dict(self.provenance),
            "records": [rec.to_dict() for rec in self.records],
        }
        if self.attribution:
            data["attribution"] = dict(self.attribution)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BenchSession":
        return cls(
            seq=int(data["seq"]),
            provenance=dict(data.get("provenance", {})),
            records=[
                BenchRecord.from_dict(rec) for rec in data.get("records", [])
            ],
            schema_version=int(data["schema_version"]),
            attribution=dict(data.get("attribution", {})),
        )
