"""The benchmark-trajectory store: ``BENCH_<seq>.json`` on disk.

A trajectory is an append-only directory of numbered session files
(default ``results/bench``, overridable with ``--bench-dir`` or the
``REPRO_BENCH_DIR`` environment variable).  Sequence numbers are
zero-padded so lexical and numeric order agree; writes are atomic
(temp file + ``os.replace``) so an interrupted run never leaves a
half-written session for ``bench compare`` to trip over.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.bench.record import BenchSession

__all__ = ["BENCH_DIR_ENV", "BenchStore", "default_bench_dir"]

#: Environment variable naming the trajectory directory.
BENCH_DIR_ENV = "REPRO_BENCH_DIR"

_SEQ_RE = re.compile(r"^BENCH_(\d+)\.json$")


def default_bench_dir() -> Path:
    """``$REPRO_BENCH_DIR`` or ``results/bench`` under the working tree."""
    env = os.environ.get(BENCH_DIR_ENV)
    if env:
        return Path(env).expanduser()
    return Path("results") / "bench"


class BenchStore:
    """Reads and appends the ``BENCH_<seq>.json`` trajectory."""

    def __init__(self, directory: Union[str, os.PathLike, None] = None):
        self.directory = (
            Path(directory) if directory else default_bench_dir()
        )

    # ------------------------------------------------------------------
    # Listing
    # ------------------------------------------------------------------

    def session_paths(self) -> List[Tuple[int, Path]]:
        """Every ``(seq, path)`` in the trajectory, ascending by seq."""
        found: List[Tuple[int, Path]] = []
        if self.directory.is_dir():
            for path in self.directory.iterdir():
                match = _SEQ_RE.match(path.name)
                if match:
                    found.append((int(match.group(1)), path))
        found.sort(key=lambda pair: pair[0])
        return found

    def next_seq(self) -> int:
        """The sequence number the next :meth:`write` will use."""
        paths = self.session_paths()
        return (paths[-1][0] + 1) if paths else 1

    def history(self) -> List[BenchSession]:
        """Every session in the trajectory, ascending by seq."""
        return [self.load(path) for _, path in self.session_paths()]

    # ------------------------------------------------------------------
    # Reading and writing
    # ------------------------------------------------------------------

    def path_for(self, seq: int) -> Path:
        """Where session ``seq`` lives (whether or not present)."""
        return self.directory / f"BENCH_{seq:04d}.json"

    def load(self, ref: Union[int, str, os.PathLike]) -> BenchSession:
        """Load a session by seq number, ``"latest"``/``"prev"``, or path."""
        path = self.resolve(ref)
        with open(path, "r", encoding="utf-8") as handle:
            return BenchSession.from_dict(json.load(handle))

    def resolve(self, ref: Union[int, str, os.PathLike]) -> Path:
        """Turn a session reference into the file that holds it."""
        if isinstance(ref, int):
            return self.path_for(ref)
        text = str(ref)
        if text in ("latest", "prev"):
            paths = self.session_paths()
            want = 1 if text == "latest" else 2
            if len(paths) < want:
                raise FileNotFoundError(
                    f"no {text!r} session: the trajectory at "
                    f"{self.directory} holds {len(paths)} session(s)"
                )
            return paths[-want][1]
        if text.isdigit():
            return self.path_for(int(text))
        return Path(ref)

    def write(self, session: BenchSession) -> Path:
        """Atomically write ``session`` to its trajectory file."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(session.seq)
        payload = json.dumps(session.to_dict(), indent=2, sort_keys=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.directory), prefix=".bench-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8", newline="\n") as tmp:
                tmp.write(payload)
                tmp.write("\n")
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def __repr__(self) -> str:
        return f"<BenchStore dir={str(self.directory)!r}>"
