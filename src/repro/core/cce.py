"""Call-chain encryption (CCE).

§5.1 of the paper describes an alternative to walking the last four stack
frames at each allocation, attributed to Larry Carter: give every function
a 16-bit id and, at each call, XOR the caller's running key with the
callee's id.  The running key then identifies the current call chain in
O(1) at allocation time, at a cost of ~3 instructions per function call.

Because XOR is commutative and self-inverse, distinct chains can collide
(the paper notes ids "should be selected so that the resulting keys ...
are likely to be unique" and suggests static call-graph analysis).  This
module implements the scheme with deterministic pseudo-random ids, a
:class:`CCEPredictor` keyed on (encrypted chain, rounded size), and a
collision analysis used by the ablation benchmarks to quantify how much
accuracy the encoding gives up relative to the real chain.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import reduce
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.core.predictor import (
    DEFAULT_THRESHOLD,
    TRUE_PREDICTION_ROUNDING,
    LifetimePredictor,
)
from repro.core.sites import CallChain, round_size
from typing import TYPE_CHECKING, Union

if TYPE_CHECKING:
    from repro.runtime.events import Trace
    from repro.runtime.stream.protocol import EventSource

__all__ = [
    "function_id",
    "encrypt_chain",
    "CCEPredictor",
    "train_cce_predictor",
    "CollisionReport",
    "collision_report",
    "KEY_BITS",
]

#: Key width.  The paper uses 16-bit ids because contemporary hardware
#: (MIPS R3000) supported 16-bit immediates.
KEY_BITS = 16
_KEY_MASK = (1 << KEY_BITS) - 1


def function_id(name: str, bits: int = KEY_BITS) -> int:
    """Deterministic pseudo-random ``bits``-bit id for function ``name``.

    Derived from a stable hash so ids agree across processes and runs —
    the reproduction's stand-in for the compile-time id assignment the
    paper envisions.
    """
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") & ((1 << bits) - 1)


def encrypt_chain(chain: Sequence[str], bits: int = KEY_BITS) -> int:
    """The CCE key of ``chain``: XOR of every frame's function id.

    This models the running key a compiled program would maintain: starting
    from 0 at program entry, each call XORs in the callee's id, each return
    XORs it back out — so at any moment the key is the XOR over the live
    stack, which is what this function computes directly.
    """
    return reduce(lambda key, fn: key ^ function_id(fn, bits), chain, 0)


class CCEPredictor(LifetimePredictor):
    """Short-lived predictor keyed on (CCE key, rounded size).

    Functionally a :class:`~repro.core.predictor.SitePredictor` whose chain
    abstraction is the XOR key instead of a sub-chain; collisions between
    chains can both lose predictions (a short-lived chain colliding with a
    long-lived one disqualifies the key) and create spurious ones.
    """

    def __init__(
        self,
        keys: FrozenSet[Tuple[int, int]],
        threshold: int,
        size_rounding: int,
        bits: int = KEY_BITS,
        program: str = "?",
    ):
        self.keys = keys
        self.threshold = threshold
        self.size_rounding = size_rounding
        self.bits = bits
        self.program = program

    @property
    def site_count(self) -> int:
        return len(self.keys)

    def key_for(self, chain: CallChain, size: int) -> Tuple[int, int]:
        """Abstract (chain, size) to this predictor's (key, size) pair."""
        return (
            encrypt_chain(chain, self.bits),
            round_size(size, self.size_rounding),
        )

    def predicts_short_lived(self, chain: CallChain, size: int) -> bool:
        return self.key_for(chain, size) in self.keys


def train_cce_predictor(
    trace: Union["Trace", "EventSource"],
    threshold: int = DEFAULT_THRESHOLD,
    size_rounding: int = TRUE_PREDICTION_ROUNDING,
    bits: int = KEY_BITS,
) -> CCEPredictor:
    """Train a :class:`CCEPredictor` with the all-short-lived site rule.

    A (key, size) entry qualifies only if *every* object whose chain
    encrypts to that key died under the threshold — so chains that collide
    with a long-lived chain are (safely) disqualified.  The and-fold is
    order-independent, so a streamed trace selects exactly the keys the
    materialized one does.
    """
    from repro.runtime.stream.protocol import (
        as_event_source,
        iter_object_lifetimes,
    )

    source = as_event_source(trace)
    chain_of = source.header.chains.chain
    all_short: Dict[Tuple[int, int], bool] = {}
    for chain_id, size, lifetime, _ in iter_object_lifetimes(source):
        key = (
            encrypt_chain(chain_of(chain_id), bits),
            round_size(size, size_rounding),
        )
        short = lifetime < threshold
        all_short[key] = all_short.get(key, True) and short
    selected = frozenset(key for key, short in all_short.items() if short)
    return CCEPredictor(
        selected,
        threshold=threshold,
        size_rounding=size_rounding,
        bits=bits,
        program=source.header.program,
    )


@dataclass(frozen=True)
class CollisionReport:
    """How faithfully CCE keys separate a set of call chains."""

    chains: int
    distinct_keys: int
    colliding_chains: int
    worst_bucket: int

    @property
    def collision_rate(self) -> float:
        """Fraction of chains sharing their key with a different chain."""
        if self.chains == 0:
            return 0.0
        return self.colliding_chains / self.chains


def collision_report(
    chains: Iterable[Sequence[str]], bits: int = KEY_BITS
) -> CollisionReport:
    """Measure key collisions over ``chains`` at the given key width."""
    buckets: Dict[int, Set[CallChain]] = {}
    for chain in chains:
        buckets.setdefault(encrypt_chain(chain, bits), set()).add(tuple(chain))
    sizes: List[int] = [len(bucket) for bucket in buckets.values()]
    colliding = sum(size for size in sizes if size > 1)
    return CollisionReport(
        chains=sum(sizes),
        distinct_keys=len(buckets),
        colliding_chains=colliding,
        worst_bucket=max(sizes, default=0),
    )
