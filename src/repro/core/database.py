"""Site database serialization.

The paper's deployment story (§5.1): training runs produce "a set of
allocation sites that predict only short-lived objects ... stored in a
database that is incorporated into an allocation system that is then
linked to the program".  This module is that database — trained predictors
saved to and loaded from JSON files, so a training session and the
optimized execution can be separate processes (as the CLI's ``profile``
and ``simulate`` subcommands are).
"""

from __future__ import annotations

import json
import os
from typing import Union

from repro.core.cce import CCEPredictor
from repro.core.predictor import (
    LifetimePredictor,
    SitePredictor,
    SizeOnlyPredictor,
    StaticEscapePredictor,
)

__all__ = ["save_predictor", "load_predictor", "DatabaseFormatError"]

FORMAT_VERSION = 1

PathLike = Union[str, "os.PathLike[str]"]


class DatabaseFormatError(Exception):
    """Raised when a site-database file is malformed or unrecognized."""


def save_predictor(predictor: LifetimePredictor, path: PathLike) -> None:
    """Write a trained predictor to ``path`` as JSON."""
    if not isinstance(
        predictor,
        (SitePredictor, SizeOnlyPredictor, CCEPredictor, StaticEscapePredictor),
    ):
        raise TypeError(f"cannot serialize predictor type {type(predictor)!r}")
    doc = {
        "format": "repro-sites",
        "version": FORMAT_VERSION,
        "threshold": predictor.threshold,
    }
    if isinstance(predictor, SitePredictor):
        doc["kind"] = "site"
        doc["program"] = predictor.program
        doc["chain_length"] = predictor.chain_length
        doc["size_rounding"] = predictor.size_rounding
        doc["sites"] = [
            {"chain": list(chain), "size": size}
            for chain, size in sorted(predictor.sites)
        ]
    elif isinstance(predictor, SizeOnlyPredictor):
        doc["kind"] = "size-only"
        doc["program"] = predictor.program
        doc["sizes"] = sorted(predictor.sizes)
    elif isinstance(predictor, CCEPredictor):
        doc["kind"] = "cce"
        doc["program"] = predictor.program
        doc["size_rounding"] = predictor.size_rounding
        doc["bits"] = predictor.bits
        doc["keys"] = [[key, size] for key, size in sorted(predictor.keys)]
    elif isinstance(predictor, StaticEscapePredictor):
        doc["kind"] = "static-escape"
        doc["program"] = predictor.program
        doc["sites"] = [
            {"chain": list(chain), "size": size, "class": cls}
            for (chain, size), cls in sorted(
                predictor.classes.items(),
                key=lambda item: (
                    item[0][0],
                    (0, 0) if item[0][1] is None else (1, item[0][1]),
                ),
            )
        ]
    else:
        raise TypeError(f"cannot serialize predictor type {type(predictor)!r}")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)


def load_predictor(path: PathLike) -> LifetimePredictor:
    """Read a predictor previously written by :func:`save_predictor`."""
    with open(path, "r", encoding="utf-8") as fh:
        try:
            doc = json.load(fh)
        except json.JSONDecodeError as exc:
            raise DatabaseFormatError(f"{path}: not valid JSON: {exc}") from exc
    if isinstance(doc, dict) and doc.get("format") == "repro-static-escape":
        # A static escape database (repro.static.escape) loads as its
        # predictor directly, so `simulate --sites` takes either kind.
        try:
            return StaticEscapePredictor(
                {
                    (tuple(entry["chain"]), entry["size"]): entry["class"]
                    for entry in doc["sites"]
                },
                threshold=doc["threshold"],
                program=doc.get("program", "?"),
            )
        except (KeyError, TypeError) as exc:
            raise DatabaseFormatError(
                f"{path}: malformed database: {exc}"
            ) from exc
    if not isinstance(doc, dict) or doc.get("format") != "repro-sites":
        raise DatabaseFormatError(f"{path}: not a site-database file")
    if doc.get("version") != FORMAT_VERSION:
        raise DatabaseFormatError(
            f"{path}: unsupported version {doc.get('version')!r}"
        )
    kind = doc.get("kind")
    try:
        if kind == "site":
            return SitePredictor(
                frozenset(
                    (tuple(entry["chain"]), entry["size"])
                    for entry in doc["sites"]
                ),
                threshold=doc["threshold"],
                chain_length=doc["chain_length"],
                size_rounding=doc["size_rounding"],
                program=doc["program"],
            )
        if kind == "size-only":
            return SizeOnlyPredictor(
                frozenset(doc["sizes"]),
                threshold=doc["threshold"],
                program=doc["program"],
            )
        if kind == "cce":
            return CCEPredictor(
                frozenset((key, size) for key, size in doc["keys"]),
                threshold=doc["threshold"],
                size_rounding=doc["size_rounding"],
                bits=doc["bits"],
                program=doc["program"],
            )
        if kind == "static-escape":
            return StaticEscapePredictor(
                {
                    (tuple(entry["chain"]), entry["size"]): entry["class"]
                    for entry in doc["sites"]
                },
                threshold=doc["threshold"],
                program=doc["program"],
            )
    except (KeyError, TypeError) as exc:
        raise DatabaseFormatError(f"{path}: malformed database: {exc}") from exc
    raise DatabaseFormatError(f"{path}: unknown predictor kind {kind!r}")
