"""Multi-class lifetime prediction — the paper's future-work direction.

§6 of the paper: "This paper has explored the possibility of lifetime
prediction and simulated the performance of one algorithm based on this
idea.  Further exploration of algorithms based on this idea are required."
The single 32 KB threshold leaves a gap the paper's own Table 3 exposes:
ESPRESSO's lifetimes cluster between 2 KB and 25 KB and its 75% quantile
sits at 25.5 KB, so a large mid-range population barely misses (or barely
makes) the short-lived cut.

This module generalizes the predictor to an ordered ladder of lifetime
classes: a site is assigned the *smallest* class whose threshold bounds
every training lifetime observed at that site (the same conservative
all-objects rule as the paper's, applied per rung).  Class 0 reproduces
the paper's predictor exactly; higher classes feed the additional arena
areas of :class:`repro.alloc.multiarena.MultiArenaAllocator`, each sized
to its threshold the way the paper sizes 64 KB to the 32 KB cutoff.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from typing import TYPE_CHECKING

from repro.core.predictor import (
    DEFAULT_THRESHOLD,
    TRUE_PREDICTION_ROUNDING,
    LifetimePredictor,
)
from repro.core.profile import SiteKey, build_profile
from repro.core.sites import FULL_CHAIN, CallChain, site_key

if TYPE_CHECKING:
    from repro.runtime.events import Trace

__all__ = [
    "DEFAULT_CLASS_THRESHOLDS",
    "MultiClassPredictor",
    "train_multiclass_predictor",
]

#: Default class ladder: the paper's 32 KB rung plus a medium class for
#: the espresso-shaped mid-range population.
DEFAULT_CLASS_THRESHOLDS: Tuple[int, ...] = (32 * 1024, 256 * 1024)


class MultiClassPredictor(LifetimePredictor):
    """Assigns allocation sites to lifetime classes.

    ``thresholds`` is the strictly increasing ladder of byte-time bounds;
    class *i* contains sites whose training objects all died under
    ``thresholds[i]`` (and not under ``thresholds[i-1]``).  Sites beyond
    the last rung — or unseen at prediction time — are long-lived
    (``class_of`` returns ``None``).

    ``threshold`` and :meth:`predicts_short_lived` expose the class-0 view
    so a multi-class predictor drops into every API that expects the
    paper's single-threshold predictor.
    """

    def __init__(
        self,
        site_classes: Dict[SiteKey, int],
        thresholds: Sequence[int],
        chain_length: Optional[int],
        size_rounding: int,
        program: str = "?",
    ):
        ladder = tuple(thresholds)
        if not ladder or list(ladder) != sorted(set(ladder)):
            raise ValueError(
                f"thresholds must be strictly increasing, got {thresholds}"
            )
        self.site_classes = site_classes
        self.thresholds = ladder
        self.threshold = ladder[0]
        self.chain_length = chain_length
        self.size_rounding = size_rounding
        self.program = program

    @property
    def num_classes(self) -> int:
        """Number of predicted (non-long-lived) classes."""
        return len(self.thresholds)

    @property
    def site_count(self) -> int:
        return len(self.site_classes)

    def key_for(self, chain: CallChain, size: int) -> SiteKey:
        """Abstract an allocation to this predictor's site level."""
        return site_key(
            chain, size, length=self.chain_length,
            size_rounding=self.size_rounding,
        )

    def class_of(self, chain: CallChain, size: int) -> Optional[int]:
        """The predicted lifetime class, or ``None`` for long-lived."""
        return self.site_classes.get(self.key_for(chain, size))

    def predicts_short_lived(self, chain: CallChain, size: int) -> bool:
        """Class-0 membership: the paper's single-threshold prediction."""
        return self.class_of(chain, size) == 0

    def class_site_count(self, klass: int) -> int:
        """Number of sites assigned to class ``klass``."""
        return sum(1 for c in self.site_classes.values() if c == klass)


def train_multiclass_predictor(
    trace: "Trace",
    thresholds: Sequence[int] = DEFAULT_CLASS_THRESHOLDS,
    chain_length: Optional[int] = FULL_CHAIN,
    size_rounding: int = TRUE_PREDICTION_ROUNDING,
) -> MultiClassPredictor:
    """Train a class ladder from one execution's trace.

    Applies the paper's conservative rule per rung: a site lands in the
    smallest class whose threshold strictly bounds its maximum observed
    lifetime.  With ``thresholds=(32768,)`` this is byte-for-byte the
    paper's predictor.
    """
    profile = build_profile(
        trace, chain_length=chain_length, size_rounding=size_rounding
    )
    ladder = tuple(thresholds)
    site_classes: Dict[SiteKey, int] = {}
    for key, stats in profile.sites():
        if stats.max_lifetime is None:
            continue
        for klass, bound in enumerate(ladder):
            if stats.max_lifetime < bound:
                site_classes[key] = klass
                break
    return MultiClassPredictor(
        site_classes,
        thresholds=ladder,
        chain_length=chain_length,
        size_rounding=size_rounding,
        program=trace.program,
    )
