"""The paper's primary contribution: lifetime prediction from allocation sites.

Submodules:

* :mod:`repro.core.quantile` — P^2 streaming quantile histograms (Jain &
  Chlamtac), used for per-site lifetime distributions.
* :mod:`repro.core.sites` — call chains, recursion-cycle pruning, length-N
  sub-chains, and the (chain, size) allocation-site abstraction.
* :mod:`repro.core.profile` — trace → per-site lifetime statistics.
* :mod:`repro.core.predictor` — trained short-lived predictors (site-based
  and size-only), self/true prediction, and their evaluation.
* :mod:`repro.core.cce` — the XOR call-chain-encryption encoding.
* :mod:`repro.core.database` — predictor (site database) serialization.
"""

from repro.core.cce import CCEPredictor, collision_report, train_cce_predictor
from repro.core.database import load_predictor, save_predictor
from repro.core.predictor import (
    DEFAULT_THRESHOLD,
    LifetimePredictor,
    PredictionEvaluation,
    SitePredictor,
    SizeOnlyPredictor,
    actual_short_lived_bytes,
    evaluate,
    train_site_predictor,
    train_size_only_predictor,
)
from repro.core.multiclass import (
    MultiClassPredictor,
    train_multiclass_predictor,
)
from repro.core.profile import SiteProfile, SiteStats, build_profile
from repro.core.quantile import ExactQuantiles, P2Histogram, P2Quantile
from repro.core.sites import (
    FULL_CHAIN,
    AllocationSite,
    ChainTable,
    prune_recursive_cycles,
    round_size,
    site_key,
    sub_chain,
)

__all__ = [
    "CCEPredictor",
    "collision_report",
    "train_cce_predictor",
    "load_predictor",
    "save_predictor",
    "DEFAULT_THRESHOLD",
    "LifetimePredictor",
    "PredictionEvaluation",
    "SitePredictor",
    "SizeOnlyPredictor",
    "actual_short_lived_bytes",
    "evaluate",
    "train_site_predictor",
    "train_size_only_predictor",
    "MultiClassPredictor",
    "train_multiclass_predictor",
    "SiteProfile",
    "SiteStats",
    "build_profile",
    "ExactQuantiles",
    "P2Histogram",
    "P2Quantile",
    "FULL_CHAIN",
    "AllocationSite",
    "ChainTable",
    "prune_recursive_cycles",
    "round_size",
    "site_key",
    "sub_chain",
]
