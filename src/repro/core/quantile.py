"""Streaming quantile estimation with the P-square algorithm.

Barrett & Zorn collect a lifetime *quantile histogram* for every allocation
site using the P^2 (P-square) algorithm of Jain and Chlamtac (CACM 28(10),
1985).  P^2 estimates a set of quantiles of a stream in O(1) memory per
quantile, without storing observations, which is what makes per-site
histograms affordable when a program has thousands of sites.

This module provides:

``P2Quantile``
    The classic five-marker estimator for a single quantile ``p``.

``P2Histogram``
    The equiprobable-cell histogram variant: ``cells`` cells give
    ``cells + 1`` markers tracking the ``i / cells`` quantiles, including the
    exact minimum and maximum.  The paper's Table 3 uses the four-cell
    (quartile) form of this estimator.

``ExactQuantiles``
    A store-everything reference implementation used by the test suite to
    bound P^2 approximation error and by small analyses where memory is not
    a concern.

The estimators accept any real-valued observations; the rest of the library
feeds them object lifetimes measured in bytes of allocation (the paper's
byte-time clock, see :mod:`repro.runtime.heap`).
"""

from __future__ import annotations

import math
from bisect import insort
from typing import Iterable, List, Sequence

__all__ = ["P2Quantile", "P2Histogram", "ExactQuantiles"]


def _parabolic(q: Sequence[float], n: Sequence[float], i: int, d: int) -> float:
    """P^2 parabolic prediction of marker ``i`` moved ``d`` positions.

    Implements equation (1) of Jain & Chlamtac: the new height is found by
    fitting a parabola through marker ``i`` and its neighbours.
    """
    return q[i] + d / (n[i + 1] - n[i - 1]) * (
        (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
        + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
    )


def _linear(q: Sequence[float], n: Sequence[float], i: int, d: int) -> float:
    """Linear fallback used when the parabolic prediction is not monotone."""
    return q[i] + d * (q[i + d] - q[i]) / (n[i + d] - n[i])


class _P2Markers:
    """Shared marker-adjustment machinery for the P^2 estimators.

    Subclasses fix the number of markers and the desired-position increment
    of each marker per observation.  The marker invariant maintained here is
    the heart of P^2: marker heights stay sorted, marker positions stay
    strictly increasing, and each interior marker drifts toward its desired
    (ideal) position, moving at most one position per observation using the
    parabolic formula (or linear interpolation when the parabola would break
    monotonicity).
    """

    def __init__(self, increments: Sequence[float]):
        # increments[i] is d(desired position)/d(observation) for marker i.
        self._increments = list(increments)
        self._nmarkers = len(increments)
        self._initial: List[float] = []
        self._q: List[float] = []  # marker heights
        self._n: List[float] = []  # marker positions (1-based counts)
        self._np: List[float] = []  # desired marker positions
        self._count = 0

    @property
    def count(self) -> int:
        """Number of observations seen so far."""
        return self._count

    def add(self, x: float) -> None:
        """Fold one observation into the estimate."""
        self._count += 1
        if self._q:
            self._update(x)
        else:
            insort(self._initial, x)
            if len(self._initial) == self._nmarkers:
                self._q = list(self._initial)
                self._n = [float(i + 1) for i in range(self._nmarkers)]
                self._np = [
                    1.0 + (self._nmarkers - 1) * inc for inc in self._increments
                ]
                self._initial = []

    def extend(self, xs: Iterable[float]) -> None:
        """Fold every observation of ``xs`` into the estimate."""
        for x in xs:
            self.add(x)

    def _update(self, x: float) -> None:
        q, n, np_ = self._q, self._n, self._np
        last = self._nmarkers - 1

        # Find the cell containing x, extending the extreme markers if
        # needed (steps B1-B2 of the published algorithm).
        if x < q[0]:
            q[0] = x
            k = 0
        elif x >= q[last]:
            if x > q[last]:
                q[last] = x
            k = last - 1
        else:
            k = 0
            while not (q[k] <= x < q[k + 1]):
                k += 1

        # Shift positions of markers above the cell, advance desired
        # positions of every marker (steps B3-B4).
        for i in range(k + 1, self._nmarkers):
            n[i] += 1.0
        for i in range(self._nmarkers):
            np_[i] += self._increments[i]

        # Adjust interior markers toward their desired positions (step B5).
        for i in range(1, last):
            d = np_[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                d <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                step = 1 if d > 0 else -1
                candidate = _parabolic(q, n, i, step)
                if not (q[i - 1] < candidate < q[i + 1]):
                    candidate = _linear(q, n, i, step)
                q[i] = candidate
                n[i] += step

    def _marker_heights(self) -> List[float]:
        """Marker heights, falling back to sorted observations pre-warmup."""
        if self._q:
            return list(self._q)
        return list(self._initial)


class P2Quantile(_P2Markers):
    """Single-quantile P^2 estimator with five markers.

    >>> est = P2Quantile(0.5)
    >>> est.extend(range(1, 101))
    >>> 45 <= est.value() <= 55
    True
    """

    def __init__(self, p: float):
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {p}")
        self.p = p
        super().__init__([0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0])

    def value(self) -> float:
        """Current estimate of the ``p`` quantile.

        Raises :class:`ValueError` when no observations have been seen.
        Before five observations have arrived the exact sample quantile of
        the stored observations is returned.
        """
        if self._count == 0:
            raise ValueError("no observations")
        if self._q:
            return self._q[2]
        return _exact_quantile(self._initial, self.p)


class P2Histogram(_P2Markers):
    """Equiprobable-cell P^2 histogram.

    With ``cells = B`` the histogram maintains ``B + 1`` markers estimating
    the ``0/B, 1/B, ..., B/B`` quantiles of the stream; the first and last
    markers hold the exact minimum and maximum.  The paper's per-site
    lifetime quantile histograms are the ``cells=4`` (quartile) instance.
    """

    def __init__(self, cells: int = 4):
        if cells < 2:
            raise ValueError(f"need at least 2 cells, got {cells}")
        self.cells = cells
        super().__init__([i / cells for i in range(cells + 1)])

    def quantiles(self) -> List[float]:
        """Estimates of the ``i / cells`` quantiles, min and max included."""
        if self._count == 0:
            raise ValueError("no observations")
        if self._q:
            return list(self._q)
        data = self._marker_heights()
        return [
            _exact_quantile(data, i / self.cells) for i in range(self.cells + 1)
        ]

    def quantile(self, p: float) -> float:
        """Estimate of the ``p`` quantile, interpolated between markers.

        ``p`` must lie in [0, 1].  Between markers the estimate is linear in
        marker position, matching how the published algorithm reads out its
        histogram.
        """
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {p}")
        qs = self.quantiles()
        scaled = p * self.cells
        lo = min(int(math.floor(scaled)), self.cells - 1)
        frac = scaled - lo
        return qs[lo] + frac * (qs[lo + 1] - qs[lo])

    @property
    def min(self) -> float:
        """Exact minimum observation."""
        return self.quantiles()[0]

    @property
    def max(self) -> float:
        """Exact maximum observation."""
        return self.quantiles()[-1]


def _exact_quantile(sorted_data: Sequence[float], p: float) -> float:
    """Exact ``p`` quantile of ``sorted_data`` with linear interpolation."""
    if not sorted_data:
        raise ValueError("no observations")
    if len(sorted_data) == 1:
        return sorted_data[0]
    pos = p * (len(sorted_data) - 1)
    lo = int(math.floor(pos))
    hi = min(lo + 1, len(sorted_data) - 1)
    frac = pos - lo
    return sorted_data[lo] + frac * (sorted_data[hi] - sorted_data[lo])


class ExactQuantiles:
    """Store-everything quantile tracker, the testing reference for P^2.

    Keeps observations in sorted order; ``quantile`` answers any quantile
    exactly (with linear interpolation between order statistics).
    """

    def __init__(self) -> None:
        self._data: List[float] = []

    @property
    def count(self) -> int:
        """Number of observations seen so far."""
        return len(self._data)

    def add(self, x: float) -> None:
        """Insert one observation, keeping the store sorted."""
        insort(self._data, x)

    def extend(self, xs: Iterable[float]) -> None:
        """Insert every observation of ``xs``."""
        for x in xs:
            self.add(x)

    def quantile(self, p: float) -> float:
        """Exact ``p`` quantile of everything seen so far."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {p}")
        return _exact_quantile(self._data, p)

    def quantiles(self, ps: Iterable[float]) -> List[float]:
        """Exact quantiles for each probability in ``ps``."""
        return [self.quantile(p) for p in ps]
