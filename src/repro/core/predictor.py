"""Lifetime predictors and their evaluation.

This is the paper's central contribution (§2, §4): given a training
execution, select the allocation sites whose objects were *all* short-lived
and predict, at allocation time, that new objects from those sites will be
short-lived too.

Three predictor families are provided, matching the paper's experiments:

:class:`SitePredictor`
    Keys on (call chain, size) at a configurable chain length and size
    rounding — the paper's main predictor (Tables 4 and 6).

:class:`SizeOnlyPredictor`
    Keys on object size alone — the ablation of Table 5, which shows size
    by itself predicts poorly.

:class:`~repro.core.cce.CCEPredictor` (in :mod:`repro.core.cce`)
    Keys on the XOR-encrypted call chain — the constant-overhead encoding
    of §5.1.

*Self prediction* trains and evaluates on the same trace; *true prediction*
trains on one input's trace and evaluates on another's (§4).  For true
prediction the paper rounds sizes to a multiple of four so sites map
between runs; :func:`train_site_predictor` defaults match that.

:func:`evaluate` scores any predictor against a trace, producing the
columns of Tables 4-6: percentage of total bytes correctly predicted
short-lived, percentage erroneously predicted (actually long-lived), sites
used, and the fraction of heap references going to predicted objects (the
New Ref column).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple, Union

from repro.core.profile import SiteKey, SiteProfile, build_profile
from repro.core.sites import (
    FULL_CHAIN,
    CallChain,
    prune_recursive_cycles,
    round_size,
    site_key,
)
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.runtime.events import Trace
    from repro.runtime.stream.protocol import EventSource

#: Consumers here take either an in-memory trace or an event stream; all
#: per-object statistics they accumulate are order-independent, so both
#: inputs produce identical predictors and evaluations.
TraceLike = Union["Trace", "EventSource"]

__all__ = [
    "DEFAULT_THRESHOLD",
    "TRUE_PREDICTION_ROUNDING",
    "LifetimePredictor",
    "SitePredictor",
    "SizeOnlyPredictor",
    "StaticEscapePredictor",
    "train_site_predictor",
    "train_size_only_predictor",
    "actual_short_lived_bytes",
    "PredictionEvaluation",
    "evaluate",
]

#: The paper's definition of "short-lived": dead before 32 kilobytes of new
#: data are allocated (§4.1).
DEFAULT_THRESHOLD = 32 * 1024

#: Size rounding used to map allocation sites between training and test
#: runs (§4: "by rounding the object size to a multiple of four bytes ...
#: corresponding sites were more likely to map correctly").
TRUE_PREDICTION_ROUNDING = 4


class LifetimePredictor:
    """Interface shared by every predictor.

    A predictor answers one question at allocation time: will the object
    being born at ``(chain, size)`` be short-lived?  Implementations also
    expose ``site_count`` (how many database entries back the prediction —
    the Sites Used columns) and ``threshold`` (the short-lived cutoff they
    were trained for).
    """

    threshold: int

    def predicts_short_lived(self, chain: CallChain, size: int) -> bool:
        """Whether an object born at ``(chain, size)`` is predicted short-lived."""
        raise NotImplementedError

    @property
    def site_count(self) -> int:
        """Number of predictor database entries (Sites Used)."""
        raise NotImplementedError


class SitePredictor(LifetimePredictor):
    """Predicts short-lived objects from a database of allocation sites.

    The database is the set of site keys — (sub-chain, rounded size) — whose
    training objects all died under the threshold.  At allocation time the
    incoming chain and size are abstracted to the same level and looked up;
    this mirrors the hash-table lookup of the paper's runtime (§5.1).
    """

    def __init__(
        self,
        sites: FrozenSet[SiteKey],
        threshold: int,
        chain_length: Optional[int],
        size_rounding: int,
        program: str = "?",
    ):
        self.sites = sites
        self.threshold = threshold
        self.chain_length = chain_length
        self.size_rounding = size_rounding
        self.program = program

    @property
    def site_count(self) -> int:
        return len(self.sites)

    @property
    def level(self) -> Tuple[Optional[int], int]:
        """The (chain length, size rounding) the database was built at."""
        return (self.chain_length, self.size_rounding)

    def key_for(self, chain: CallChain, size: int) -> SiteKey:
        """Abstract an allocation's (chain, size) to this predictor's level."""
        return site_key(
            chain, size, length=self.chain_length, size_rounding=self.size_rounding
        )

    def predicts_short_lived(self, chain: CallChain, size: int) -> bool:
        return self.key_for(chain, size) in self.sites

    def restricted_to(self, profile: SiteProfile) -> "SitePredictor":
        """The sub-database of sites that actually occur in ``profile``.

        Used to report the paper's true-prediction Sites Used column, which
        counts only the training sites that matched the test execution.
        """
        if profile.level != self.level:
            raise ValueError(
                f"profile level {profile.level} does not match "
                f"predictor level {self.level}"
            )
        matched = frozenset(key for key in self.sites if key in profile)
        return SitePredictor(
            matched,
            threshold=self.threshold,
            chain_length=self.chain_length,
            size_rounding=self.size_rounding,
            program=self.program,
        )


class SizeOnlyPredictor(LifetimePredictor):
    """Predicts short-lived objects from the requested size alone (Table 5)."""

    def __init__(self, sizes: FrozenSet[int], threshold: int, program: str = "?"):
        self.sizes = sizes
        self.threshold = threshold
        self.program = program

    @property
    def site_count(self) -> int:
        return len(self.sizes)

    def predicts_short_lived(self, chain: CallChain, size: int) -> bool:
        return size in self.sizes


class StaticEscapePredictor(LifetimePredictor):
    """Predicts short-lived objects from a static escape classification.

    The database comes from :mod:`repro.static.escape` — no profiling
    run involved — and maps ``(cycle-pruned chain, size)`` keys to an
    escape class: ``"short"``, ``"escaping"``, or ``"unknown"``.  A size
    of ``None`` is the fold-failure wildcard matching every dynamic
    size.  An allocation is predicted short-lived only when at least one
    database entry matches it and *every* matching entry (exact size and
    wildcard alike) is classified ``"short"`` — ``"escaping"`` and
    ``"unknown"`` are both conservative "no" answers, so an unknown
    escape can never be predicted short.

    This class is pure data (plain dicts of strings) so predictors cross
    process boundaries in sharded evaluation, and it lives in
    :mod:`repro.core` so the allocators and tables need no dependency on
    the static layer.
    """

    def __init__(
        self,
        classes: Dict[Tuple[Tuple[str, ...], Optional[int]], str],
        threshold: int = DEFAULT_THRESHOLD,
        program: str = "?",
    ):
        self.classes = dict(classes)
        self.threshold = threshold
        self.program = program
        self._by_chain: Dict[Tuple[str, ...], Dict[Optional[int], str]] = {}
        for (chain, size), cls in self.classes.items():
            self._by_chain.setdefault(chain, {})[size] = cls

    @property
    def site_count(self) -> int:
        """Number of sites classified short — the entries that predict."""
        return sum(1 for cls in self.classes.values() if cls == "short")

    def key_for(
        self, chain: CallChain, size: int
    ) -> Tuple[Tuple[str, ...], Optional[int]]:
        """Abstract an allocation to this database's key space."""
        return (prune_recursive_cycles(tuple(chain)), size)

    def matching_keys(
        self, chain: CallChain, size: int
    ) -> Tuple[Tuple[Tuple[str, ...], Optional[int]], ...]:
        """The database keys that match ``(chain, size)``, if any."""
        pruned = prune_recursive_cycles(tuple(chain))
        entry = self._by_chain.get(pruned)
        if not entry:
            return ()
        keys = []
        if size in entry:
            keys.append((pruned, size))
        if None in entry and size is not None:
            keys.append((pruned, None))
        return tuple(keys)

    def class_of(self, chain: CallChain, size: int) -> Optional[str]:
        """The effective class for an allocation: the worst matching entry.

        ``None`` when no entry matches (the site is outside the static
        space); otherwise ``"unknown"`` dominates ``"escaping"``
        dominates ``"short"``, mirroring :meth:`predicts_short_lived`.
        """
        matched = [self.classes[key] for key in self.matching_keys(chain, size)]
        if not matched:
            return None
        for cls in ("unknown", "escaping"):
            if cls in matched:
                return cls
        return "short"

    def predicts_short_lived(self, chain: CallChain, size: int) -> bool:
        return self.class_of(chain, size) == "short"


def train_site_predictor(
    trace: TraceLike,
    threshold: int = DEFAULT_THRESHOLD,
    chain_length: Optional[int] = FULL_CHAIN,
    size_rounding: int = TRUE_PREDICTION_ROUNDING,
) -> SitePredictor:
    """Train a :class:`SitePredictor` from one execution's trace.

    Selects every site, at the requested abstraction level, whose training
    objects were all freed in under ``threshold`` bytes of allocation — the
    paper's conservative all-short-lived rule, chosen because mispredicted
    long-lived objects pollute arenas (§4.1, §5.2).  Selection depends
    only on each site's maximum lifetime, so a streamed trace trains the
    identical database in O(live objects) memory.
    """
    # Imported lazily: repro.obs.telemetry imports this module for
    # DEFAULT_THRESHOLD, so a top-level obs import would be circular.
    from repro.obs.spans import TRACER
    from repro.runtime.stream.protocol import source_identity

    program, dataset = source_identity(trace)
    with TRACER.span("profile.train_sites", cat="core",
                     program=program, dataset=dataset,
                     threshold=threshold):
        if getattr(trace, "shard_jobs", 1) > 1:
            # Selection reads only each site's max lifetime, an
            # order-independent fold, so a sharded source trains the
            # identical database in parallel.
            from repro.runtime.shard import (
                SiteSelectFold,
                fold_object_lifetimes,
            )

            fold = fold_object_lifetimes(
                trace,
                lambda: SiteSelectFold(
                    trace.header.chains, chain_length, size_rounding
                ),
            )
            selected = fold.short_lived_sites(threshold)
        else:
            profile = build_profile(
                trace, chain_length=chain_length, size_rounding=size_rounding
            )
            selected = frozenset(profile.short_lived_sites(threshold))
    return SitePredictor(
        selected,
        threshold=threshold,
        chain_length=chain_length,
        size_rounding=size_rounding,
        program=program,
    )


def train_size_only_predictor(
    trace: TraceLike, threshold: int = DEFAULT_THRESHOLD
) -> SizeOnlyPredictor:
    """Train a :class:`SizeOnlyPredictor`: sizes whose objects all died young."""
    from repro.runtime.stream.protocol import (
        as_event_source,
        iter_object_lifetimes,
    )

    source = as_event_source(trace)
    if getattr(source, "shard_jobs", 1) > 1:
        from repro.runtime.shard import SizeOnlyFold, fold_object_lifetimes

        fold = fold_object_lifetimes(source, lambda: SizeOnlyFold(threshold))
        selected = fold.short_lived_sizes()
        return SizeOnlyPredictor(
            selected, threshold=threshold, program=source.header.program
        )
    per_size: Dict[int, bool] = {}
    for _, size, lifetime, _ in iter_object_lifetimes(source):
        short = lifetime < threshold
        per_size[size] = per_size.get(size, True) and short
    selected = frozenset(size for size, short in per_size.items() if short)
    return SizeOnlyPredictor(
        selected, threshold=threshold, program=source.header.program
    )


def actual_short_lived_bytes(trace: TraceLike, threshold: int) -> int:
    """Bytes of objects that truly died under ``threshold`` — the oracle.

    This is the per-object ground truth behind the Actual Short-lived Bytes
    column: the most any site-based predictor could correctly capture.
    """
    from repro.runtime.stream.protocol import (
        as_event_source,
        iter_object_lifetimes,
    )

    source = as_event_source(trace)
    if getattr(source, "shard_jobs", 1) > 1:
        from repro.runtime.shard import ShortBytesFold, fold_object_lifetimes

        return fold_object_lifetimes(
            source, lambda: ShortBytesFold(threshold)
        ).total
    total = 0
    for _, size, lifetime, _ in iter_object_lifetimes(source):
        if lifetime < threshold:
            total += size
    return total


@dataclass(frozen=True)
class PredictionEvaluation:
    """Scoring of one predictor against one trace (columns of Tables 4-6)."""

    program: str
    dataset: str
    threshold: int
    total_sites: int
    sites_used: int
    total_bytes: int
    actual_short_bytes: int
    predicted_short_bytes: int  # correctly predicted short-lived
    error_bytes: int  # predicted short-lived but actually long-lived
    predicted_objects: int
    total_heap_refs: int
    predicted_heap_refs: int

    @property
    def actual_pct(self) -> float:
        """Actual short-lived bytes as a percentage of total bytes."""
        return _pct(self.actual_short_bytes, self.total_bytes)

    @property
    def predicted_pct(self) -> float:
        """Correctly predicted short-lived bytes, % of total bytes."""
        return _pct(self.predicted_short_bytes, self.total_bytes)

    @property
    def error_pct(self) -> float:
        """Bytes wrongly predicted short-lived, % of total bytes."""
        return _pct(self.error_bytes, self.total_bytes)

    @property
    def new_ref_pct(self) -> float:
        """Heap references to predicted objects, % of all heap references.

        The New Ref column of Table 6 — the fraction of heap references the
        segregated arenas would localize.
        """
        return _pct(self.predicted_heap_refs, self.total_heap_refs)

    @property
    def coverage_of_actual(self) -> float:
        """Correctly predicted bytes as a fraction of the oracle's bytes."""
        if self.actual_short_bytes == 0:
            return 0.0
        return self.predicted_short_bytes / self.actual_short_bytes


def evaluate(
    predictor: LifetimePredictor,
    trace: TraceLike,
    count_matched_sites: bool = True,
) -> PredictionEvaluation:
    """Score ``predictor`` on ``trace``.

    ``total_sites`` reports the number of distinct sites in the test trace
    at the predictor's own abstraction level (for a size-only predictor,
    the number of distinct sizes).  When ``count_matched_sites`` is true
    and the predictor is site-based, the Sites Used column counts only the
    database entries that matched some test allocation, matching how the
    paper reports true prediction.

    Scoring accumulates sums and sets over objects, so it is
    order-independent: a streamed trace evaluates to exactly the numbers
    the materialized one does, in one event pass.
    """
    from repro.obs.spans import TRACER  # lazy: see train_site_predictor
    from repro.runtime.stream.protocol import as_event_source

    source = as_event_source(trace)
    header = source.header
    with TRACER.span("predict.evaluate", cat="core",
                     program=header.program, dataset=header.dataset):
        return _evaluate(predictor, source, count_matched_sites)


def _evaluate(
    predictor: LifetimePredictor,
    source: "EventSource",
    count_matched_sites: bool,
) -> PredictionEvaluation:
    from repro.runtime.stream.protocol import iter_object_lifetimes

    header = source.header
    if getattr(source, "shard_jobs", 1) > 1:
        # Scoring is sums and set unions over objects, so a sharded
        # source evaluates through the parallel map/reduce fold.
        from repro.runtime.shard import EvaluateFold, fold_object_lifetimes

        fold = fold_object_lifetimes(
            source, lambda: EvaluateFold(predictor, header.chains)
        )
        return fold.result(
            header, source.summary, count_matched_sites=count_matched_sites
        )
    chain_of = header.chains.chain
    total_bytes = 0
    actual_short = 0
    predicted_short = 0
    error_bytes = 0
    predicted_objects = 0
    predicted_refs = 0
    matched_keys = set()
    test_keys = set()
    threshold = predictor.threshold
    is_site_based = isinstance(predictor, SitePredictor)
    is_static = isinstance(predictor, StaticEscapePredictor)

    for chain_id, size, lifetime, touches in iter_object_lifetimes(source):
        chain = chain_of(chain_id)
        total_bytes += size
        short = lifetime < threshold
        if short:
            actual_short += size
        if is_site_based:
            key = predictor.key_for(chain, size)  # type: ignore[attr-defined]
            test_keys.add(key)
            hit = key in predictor.sites  # type: ignore[attr-defined]
            if hit:
                matched_keys.add(key)
        elif is_static:
            test_keys.add(predictor.key_for(chain, size))  # type: ignore[attr-defined]
            hit = predictor.predicts_short_lived(chain, size)
            if hit:
                matched_keys.update(
                    predictor.matching_keys(chain, size)  # type: ignore[attr-defined]
                )
        else:
            test_keys.add(size)
            hit = predictor.predicts_short_lived(chain, size)
            if hit:
                matched_keys.add(size)
        if hit:
            predicted_objects += 1
            predicted_refs += touches
            if short:
                predicted_short += size
            else:
                error_bytes += size

    sites_used = (
        len(matched_keys) if count_matched_sites else predictor.site_count
    )
    return PredictionEvaluation(
        program=header.program,
        dataset=header.dataset,
        threshold=threshold,
        total_sites=len(test_keys),
        sites_used=sites_used,
        total_bytes=total_bytes,
        actual_short_bytes=actual_short,
        predicted_short_bytes=predicted_short,
        error_bytes=error_bytes,
        predicted_objects=predicted_objects,
        total_heap_refs=source.summary.heap_refs,
        predicted_heap_refs=predicted_refs,
    )


def _pct(numerator: int, denominator: int) -> float:
    if denominator == 0:
        return 0.0
    return 100.0 * numerator / denominator
