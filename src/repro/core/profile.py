"""Per-site lifetime profiles.

The training half of the paper's pipeline (§4.1): replay a trace, group
objects by allocation site, and accumulate each site's lifetime
distribution as a quantile histogram.  The resulting :class:`SiteProfile`
is what the predictor-selection rules in :mod:`repro.core.predictor`
consume, and what the site database shipped with the optimized allocator is
generated from.

Sites are identified at a configurable abstraction level — call-chain
length (:data:`~repro.core.sites.FULL_CHAIN` or a length-N sub-chain) and
size rounding — because the paper studies exactly those two knobs
(Tables 4-6).  A profile knows the level it was built at and refuses to be
compared with a profile built at a different level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from repro.core.quantile import P2Histogram
from repro.core.sites import FULL_CHAIN, CallChain, site_key
from typing import TYPE_CHECKING, Union

if TYPE_CHECKING:
    from repro.runtime.events import Trace
    from repro.runtime.stream.protocol import EventSource

__all__ = ["SiteStats", "SiteProfile", "build_profile", "SiteKey"]

SiteKey = Tuple[CallChain, int]


@dataclass
class SiteStats:
    """Accumulated lifetime statistics for one allocation site.

    ``max_lifetime`` is exact (it drives the paper's all-short-lived
    predictor rule); the quartile histogram is the P^2 approximation the
    paper collects.  Lifetimes follow the trace convention: objects never
    explicitly freed die at program exit (they are additionally counted in
    ``unfreed_objects``/``unfreed_bytes`` for reporting).
    """

    objects: int = 0
    bytes: int = 0
    touches: int = 0
    unfreed_objects: int = 0
    unfreed_bytes: int = 0
    min_lifetime: Optional[int] = None
    max_lifetime: Optional[int] = None
    histogram: P2Histogram = field(default_factory=lambda: P2Histogram(cells=4))

    def observe(
        self, size: int, lifetime: int, touches: int, freed: bool = True
    ) -> None:
        """Fold one object born at this site into the statistics."""
        self.objects += 1
        self.bytes += size
        self.touches += touches
        if not freed:
            self.unfreed_objects += 1
            self.unfreed_bytes += size
        if self.min_lifetime is None or lifetime < self.min_lifetime:
            self.min_lifetime = lifetime
        if self.max_lifetime is None or lifetime > self.max_lifetime:
            self.max_lifetime = lifetime
        self.histogram.add(lifetime)

    def all_short_lived(self, threshold: int) -> bool:
        """True when *every* object from this site died under ``threshold``.

        This is the paper's site-selection rule: "we only consider
        allocation sites in which all of the objects allocated lived less
        than 32 kilobytes" (§4.1).
        """
        return self.max_lifetime is not None and self.max_lifetime < threshold


class SiteProfile:
    """Lifetime statistics for every allocation site of one execution."""

    def __init__(
        self,
        program: str,
        dataset: str,
        chain_length: Optional[int],
        size_rounding: int,
    ):
        self.program = program
        self.dataset = dataset
        self.chain_length = chain_length
        self.size_rounding = size_rounding
        self._sites: Dict[SiteKey, SiteStats] = {}
        self.total_objects = 0
        self.total_bytes = 0

    @property
    def level(self) -> Tuple[Optional[int], int]:
        """The (chain length, size rounding) abstraction level."""
        return (self.chain_length, self.size_rounding)

    def __len__(self) -> int:
        return len(self._sites)

    def __contains__(self, key: SiteKey) -> bool:
        return key in self._sites

    def observe(
        self,
        key: SiteKey,
        size: int,
        lifetime: int,
        touches: int,
        freed: bool = True,
    ) -> None:
        """Fold one object into the profile under site ``key``."""
        stats = self._sites.get(key)
        if stats is None:
            stats = self._sites[key] = SiteStats()
        stats.observe(size, lifetime, touches, freed=freed)
        self.total_objects += 1
        self.total_bytes += size

    def stats(self, key: SiteKey) -> SiteStats:
        """Statistics for site ``key``; raises :class:`KeyError` if unseen."""
        return self._sites[key]

    def sites(self) -> Iterator[Tuple[SiteKey, SiteStats]]:
        """All (key, stats) pairs, unordered."""
        return iter(self._sites.items())

    def short_lived_sites(self, threshold: int) -> Dict[SiteKey, SiteStats]:
        """Sites whose objects were all short-lived under ``threshold``."""
        return {
            key: stats
            for key, stats in self._sites.items()
            if stats.all_short_lived(threshold)
        }

def build_profile(
    trace: Union["Trace", "EventSource"],
    chain_length: Optional[int] = FULL_CHAIN,
    size_rounding: int = 1,
) -> SiteProfile:
    """Group a trace's objects by allocation site and accumulate lifetimes.

    ``chain_length`` and ``size_rounding`` choose the site abstraction; the
    defaults give the paper's baseline (complete cycle-pruned chain, exact
    size).  The per-object "Actual Short-lived Bytes" denominator of the
    paper's tables is computed directly from the trace by
    :func:`repro.core.predictor.actual_short_lived_bytes`.

    An in-memory :class:`Trace` folds objects in allocation (object-id)
    order, as always; an :class:`~repro.runtime.stream.protocol.
    EventSource` folds each object at its death event in one stream pass
    with an O(live objects) working set.  Every order-independent
    statistic — counts, byte sums, min/max lifetime, and therefore the
    all-short-lived predictor selection — is identical between the two;
    only the order-*dependent* P^2 quantile approximations inside each
    site can differ, which is why the materialized path keeps the
    historical fold order (``repro-alloc sites`` reports stay stable).
    """
    from repro.runtime.events import Trace as _Trace
    from repro.runtime.stream.protocol import TraceEventSource

    if isinstance(trace, TraceEventSource):
        # An in-memory trace merely wrapped as a stream: unwrap so the
        # P^2 fold order (and hence the sites report) stays historical.
        trace = trace.trace
    if not isinstance(trace, _Trace):
        return _build_profile_streaming(trace, chain_length, size_rounding)
    profile = SiteProfile(
        program=trace.program,
        dataset=trace.dataset,
        chain_length=chain_length,
        size_rounding=size_rounding,
    )
    for obj_id in range(trace.total_objects):
        key = site_key(
            trace.chain_of(obj_id),
            trace.size_of(obj_id),
            length=chain_length,
            size_rounding=size_rounding,
        )
        profile.observe(
            key,
            size=trace.size_of(obj_id),
            lifetime=trace.lifetime_of(obj_id),
            touches=trace.touches_of(obj_id),
            freed=trace.freed(obj_id),
        )
    return profile


def _build_profile_streaming(
    source: "EventSource",
    chain_length: Optional[int],
    size_rounding: int,
) -> SiteProfile:
    """One-pass :func:`build_profile` over an event stream."""
    from repro.runtime.stream.protocol import EV_ALLOC, EV_FREE

    header = source.header
    profile = SiteProfile(
        program=header.program,
        dataset=header.dataset,
        chain_length=chain_length,
        size_rounding=size_rounding,
    )
    chain_of = header.chains.chain
    live = {}
    for ev in source.events():
        tag = ev[0]
        if tag == EV_ALLOC:
            live[ev[1]] = (ev[2], ev[3], ev[4])
        elif tag == EV_FREE:
            chain_id, size, birth = live.pop(ev[1])
            key = site_key(
                chain_of(chain_id), size,
                length=chain_length, size_rounding=size_rounding,
            )
            profile.observe(
                key, size=size, lifetime=ev[2] - birth, touches=ev[3],
            )
    summary = source.summary
    end_time = summary.end_time
    unfreed_touches = dict(summary.unfreed_touches)
    for obj_id in sorted(live):
        chain_id, size, birth = live[obj_id]
        key = site_key(
            chain_of(chain_id), size,
            length=chain_length, size_rounding=size_rounding,
        )
        profile.observe(
            key,
            size=size,
            lifetime=end_time - birth,
            touches=unfreed_touches.get(obj_id, 0),
            freed=False,
        )
    return profile
