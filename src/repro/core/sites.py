"""Call chains and allocation sites.

The paper's predictor keys on the *allocation site*: an abstraction of the
program's call stack at each object birth, together with the requested size
(§3.2).  This module implements that abstraction:

* a **call chain** is the ordered list of functions on the runtime stack at
  an event, outermost caller first, the function that directly invoked the
  allocator last;
* **recursive cycle pruning** collapses loops of recursive invocations the
  way gprof collapses cycles in the dynamic call graph, because recursion
  adds no predictive information;
* a **length-N sub-chain** is the last ``N`` callers of the (unpruned)
  chain — the paper's Table 6 studies prediction accuracy as a function of
  ``N`` and finds length 4 nearly as good as the full chain;
* an :class:`AllocationSite` is a (chain, size) pair.  Because the same
  chain requesting 8 bytes and 16 bytes behaves differently, size is part of
  the site.  For mapping sites between training and test runs the size is
  rounded up to a multiple of four bytes (§4), which this module also
  implements.

Chains are plain tuples of function-name strings.  The paper notes its
tools used function chains rather than return-address chains (so two calls
in the same function are not distinguished); ours match that choice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "CallChain",
    "prune_recursive_cycles",
    "sub_chain",
    "round_size",
    "AllocationSite",
    "site_key",
    "ChainTable",
    "FULL_CHAIN",
]

CallChain = Tuple[str, ...]

#: Sentinel chain length meaning "use the complete, cycle-pruned chain"
#: (the paper's ``infinity`` row in Table 6).
FULL_CHAIN: Optional[int] = None


def prune_recursive_cycles(chain: Sequence[str]) -> CallChain:
    """Collapse recursive cycles in a call chain, gprof-style.

    Whenever a function reappears while it is still on the (pruned) chain,
    everything from its previous occurrence onward is folded into that one
    occurrence.  The result contains each function at most once, preserving
    first-occurrence order of the surviving frames:

    >>> prune_recursive_cycles(["main", "walk", "visit", "walk", "leaf"])
    ('main', 'walk', 'leaf')

    Mutual recursion collapses the same way: in ``a b a b c`` the second
    ``a`` folds back to the first, then ``b`` extends it again and is folded
    when re-entered, yielding ``('a', 'b', 'c')``.
    """
    pruned: List[str] = []
    positions: Dict[str, int] = {}
    for fn in chain:
        if fn in positions:
            # Fold the cycle: drop everything after the earlier occurrence.
            cut = positions[fn] + 1
            for dropped in pruned[cut:]:
                del positions[dropped]
            del pruned[cut:]
        else:
            positions[fn] = len(pruned)
            pruned.append(fn)
    return tuple(pruned)


def sub_chain(chain: Sequence[str], length: Optional[int]) -> CallChain:
    """The last ``length`` callers of ``chain``; the full chain if ``None``.

    ``length=1`` is the function that directly called the allocator.  When
    ``length`` is :data:`FULL_CHAIN` the chain is returned cycle-pruned —
    matching the paper, which prunes recursion only in the complete-chain
    case (Table 6 caption).
    """
    if length is FULL_CHAIN:
        return prune_recursive_cycles(chain)
    if length < 1:
        raise ValueError(f"sub-chain length must be >= 1, got {length}")
    return tuple(chain[-length:])


def round_size(size: int, multiple: int = 4) -> int:
    """Round ``size`` up to a multiple of ``multiple`` bytes.

    The paper found that rounding object sizes to a multiple of four made
    allocation sites from different runs map to each other more reliably,
    while coarser rounding destroyed too much size information (§4).
    """
    if size < 0:
        raise ValueError(f"size must be non-negative, got {size}")
    if multiple < 1:
        raise ValueError(f"rounding multiple must be >= 1, got {multiple}")
    return ((size + multiple - 1) // multiple) * multiple


@dataclass(frozen=True)
class AllocationSite:
    """A (call chain, object size) pair identifying where an object is born.

    ``chain`` is stored exactly as captured (unpruned); views of the site at
    different chain lengths or size roundings are derived via :meth:`key`.
    Two sites with the same chain but different sizes are distinct sites
    (§3.2: "the same call-chain allocating 8 bytes at one time and 16 bytes
    another corresponds to 2 distinct allocation sites").
    """

    chain: CallChain
    size: int

    def key(
        self,
        length: Optional[int] = FULL_CHAIN,
        size_rounding: int = 1,
    ) -> Tuple[CallChain, int]:
        """Hashable identity of this site at a given abstraction level.

        ``length`` selects the sub-chain (``FULL_CHAIN`` for the complete
        cycle-pruned chain); ``size_rounding`` rounds the size up to that
        multiple, with 1 meaning the exact size.
        """
        return (
            sub_chain(self.chain, length),
            round_size(self.size, size_rounding),
        )

    @property
    def direct_caller(self) -> str:
        """The function that directly invoked the allocator."""
        if not self.chain:
            raise ValueError("empty call chain")
        return self.chain[-1]


def site_key(
    chain: Sequence[str],
    size: int,
    length: Optional[int] = FULL_CHAIN,
    size_rounding: int = 1,
) -> Tuple[CallChain, int]:
    """Functional form of :meth:`AllocationSite.key` for raw chain data."""
    return (sub_chain(chain, length), round_size(size, size_rounding))


class ChainTable:
    """Interning table mapping call chains to small integer ids.

    Trace files store a chain id per allocation event rather than repeating
    the chain, mirroring how the paper's simulator consumed "an identifier
    corresponding to the complete call-chain and size" (§5.2).  Interning
    also guarantees chain-tuple sharing in memory when millions of events
    reference a few hundred chains.
    """

    def __init__(self) -> None:
        self._ids: Dict[CallChain, int] = {}
        self._chains: List[CallChain] = []

    def __len__(self) -> int:
        return len(self._chains)

    def __iter__(self) -> Iterable[CallChain]:
        return iter(self._chains)

    def intern(self, chain: Sequence[str]) -> int:
        """Return the id for ``chain``, assigning a fresh one if new."""
        key = tuple(chain)
        existing = self._ids.get(key)
        if existing is not None:
            return existing
        new_id = len(self._chains)
        self._ids[key] = new_id
        self._chains.append(key)
        return new_id

    def chain(self, chain_id: int) -> CallChain:
        """The chain registered under ``chain_id``.

        Raises :class:`IndexError` for ids never returned by :meth:`intern`.
        """
        if chain_id < 0:
            raise IndexError(f"chain id must be non-negative, got {chain_id}")
        return self._chains[chain_id]

    def id_of(self, chain: Sequence[str]) -> Optional[int]:
        """The id of ``chain`` if interned, else ``None``."""
        return self._ids.get(tuple(chain))

    def to_list(self) -> List[CallChain]:
        """All interned chains, indexable by id (a copy)."""
        return list(self._chains)

    @classmethod
    def from_list(cls, chains: Iterable[Sequence[str]]) -> "ChainTable":
        """Rebuild a table from a previously serialized chain list."""
        table = cls()
        for chain in chains:
            table.intern(chain)
        return table
