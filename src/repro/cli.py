"""Command-line interface.

Mirrors the paper's workflow as subcommands::

    repro-alloc trace gawk train -o gawk-train.rtr3
    repro-alloc convert gawk-train.json.gz gawk-train.rtr3
    repro-alloc profile gawk-train.rtr3 -o gawk.sites
    repro-alloc predict gawk.sites gawk-test.rtr3
    repro-alloc simulate gawk-test.rtr3 --sites gawk.sites --stream
    repro-alloc quantiles gawk-test.rtr3
    repro-alloc sites gawk-test.json.gz --top 10
    repro-alloc warm --jobs 4
    repro-alloc table all
    repro-alloc stats --program gawk
    repro-alloc stats --program gawk --json --diff old-summary.json
    repro-alloc timeline --program gawk --allocator arena
    repro-alloc profile-sites --program gawk --stream --jobs 2
    repro-alloc windows --program gawk --windows 16 --by bytes --json
    repro-alloc report --program gawk --html gawk-report.html
    repro-alloc diff-sessions old.attrib.json new.attrib.json
    repro-alloc bench run --scale 0.05
    repro-alloc bench compare
    repro-alloc bench history --json
    repro-alloc lint --format sarif -o alloclint.sarif
    repro-alloc audit-sites --scale 0.05
    repro-alloc predict-static gawk -o gawk-static.json
    repro-alloc simulate gawk-test.rtr3 --allocator arena --predictor static
    repro-alloc escape-eval --scale 0.05 --json

``trace`` runs a workload and stores its allocation trace; ``convert``
rewrites a trace between the v2 (monolithic JSON) and v3 (chunked,
streamable) formats; ``profile`` trains a short-lived site database from
a trace; ``predict`` scores a database against a trace (Table 4's
columns); ``simulate`` replays a trace against an allocator (with
``--stream``, through the constant-memory event pipeline — ``table`` and
``stats`` take the same flag); ``warm`` populates the persistent trace
cache (optionally in parallel); ``table`` regenerates the paper's
tables; ``stats`` and ``timeline`` replay one workload with the
telemetry recorder attached and report per-site mispredictions or the
heap time series (see :mod:`repro.obs`); ``profile-sites`` attributes
simulated instruction cost, heap occupancy, fragmentation, and
misprediction penalties per allocation site and exports JSON/CSV plus a
flamegraph-ready collapsed-stack view (see :mod:`repro.obs.attrib`);
``windows`` partitions a run into N windows along the byte-time or
event axis and reports per-window heap series plus per-site lifetime
drift (see :mod:`repro.obs.windows` and :mod:`repro.obs.drift`);
``report`` renders the self-contained HTML run report (see
:mod:`repro.obs.html`); ``diff-sessions`` compares two recorded
sessions (attribution exports, telemetry summaries, drift reports, or
bench sessions) and exits nonzero on a per-site regression — ``stats --diff OTHER`` does the same inline (see
:mod:`repro.obs.diff`); ``bench`` runs the benchmark
suite into the ``BENCH_<seq>.json`` trajectory and gates regressions
(see :mod:`repro.bench`); ``lint`` runs the alloclint contract rules
and ``audit-sites`` diffs static allocation sites against the trace
store or a saved site database (see :mod:`repro.static` and DESIGN.md
§9) — both use exit codes 0/1/2 for clean/findings/error so CI can
gate on them; ``predict-static`` runs the profile-free escape analysis
and emits a static predictor database, ``--predictor static`` swaps it
for the trained database on ``simulate``/``table``/``profile-sites``/
``bench run``, and ``escape-eval`` scores static vs trained vs oracle
over every workload (see :mod:`repro.static.escape` and DESIGN.md
§14).

The global ``--spans-out`` / ``--spans-folded`` flags record a span
trace of any subcommand (Chrome trace-event JSON for Perfetto, or a
folded-stack text view); with them absent, tracing is off and stdout is
byte-identical to an uninstrumented run.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from concurrent.futures import ProcessPoolExecutor
from datetime import datetime, timezone
from functools import partial
from pathlib import Path
from typing import List, Optional

from repro.alloc.base import AllocatorError
from repro.analysis import TraceStore, simulate_arena, simulate_bsd, simulate_firstfit
from repro.analysis import report as report_mod
from repro.analysis.compare import diff_traces, render_diff
from repro.analysis.inspect import lifetime_report, sites_report
from repro.obs.metrics import METRICS, Metrics, record_peak_rss
from repro.analysis import tables as tables_mod
from repro.bench import (
    BENCH_ALLOCATORS,
    DEFAULT_REPEATS,
    DEFAULT_WALL_TOLERANCE,
    BenchStore,
    compare_sessions,
    render_compare,
    run_session,
)
from repro.core.database import (
    DatabaseFormatError,
    load_predictor,
    save_predictor,
)
from repro.core.predictor import (
    DEFAULT_THRESHOLD,
    TRUE_PREDICTION_ROUNDING,
    evaluate,
    train_site_predictor,
)
from repro.core.sites import FULL_CHAIN
from repro.obs import (
    DEFAULT_SAMPLE_INTERVAL,
    Telemetry,
    export_timeline,
    render_folded,
    render_stats,
    render_timeline,
    telemetry_summary,
)
from repro.obs.attrib import (
    ATTRIB_PROFILES,
    attribute_sites,
    export_attribution,
    render_attrib,
)
from repro.obs.diff import (
    DEFAULT_REL_THRESHOLD,
    diff_documents,
    diff_paths,
    load_session_doc,
    render_diff_report,
)
from repro.obs.drift import (
    DEFAULT_FLIP_FRACTION,
    DEFAULT_MIN_OBJECTS,
    DEFAULT_MIN_WINDOWS,
    drift_report,
    render_drift,
    write_drift_json,
)
from repro.obs.export import DEFAULT_TELEMETRY_DIR
from repro.obs.html import write_report
from repro.obs.windows import (
    DEFAULT_WINDOWS,
    WINDOW_AXES,
    export_windows,
    render_windows,
    window_profile,
)
from repro.obs.spans import TRACER, write_chrome_trace
from repro.runtime.heap import HeapError
from repro.runtime.shard import ShardedTraceSource
from repro.runtime.stream.v3 import TraceFileSource
from repro.runtime.tracefile import (
    TraceFormatError,
    convert_trace,
    load_trace,
    open_trace_stream,
    save_trace,
)
from repro.analysis.escape_eval import escape_eval, render_escape_eval
from repro.static import (
    AuditError,
    StaticAnalysisError,
    StaticDBFormatError,
    audit_predictor_file,
    audit_trace,
    build_static_db,
)
from repro.static.escape import build_escape_db
from repro.static.lint import (
    DEFAULT_SEVERITIES,
    RULES,
    SEVERITY_LEVELS,
    LintConfig,
    lint_paths,
)
from repro.static.reporters import (
    render_audit_json,
    render_audit_text,
    render_lint_json,
    render_lint_sarif,
    render_lint_text,
)
from repro.workloads.registry import PROGRAM_ORDER, run_workload

__all__ = ["main"]


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    tracing = bool(args.spans_out or args.spans_folded)
    if tracing:
        TRACER.enable()
    try:
        # The root span turns every export into a correctly nested tree:
        # cli.<command> encloses cache loads, workload runs, training,
        # replays, and table rendering.  Disabled, it is a no-op object.
        with TRACER.span(f"cli.{args.command}", cat="cli"):
            return args.handler(args)
    except (OSError, ValueError, TraceFormatError, AllocatorError,
            HeapError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if tracing:
            _export_spans(args.spans_out, args.spans_folded)
            # Leave the process-wide tracer the way we found it, so a
            # library caller invoking main() twice gets fresh traces.
            TRACER.disable()
            TRACER.reset()


def _export_spans(spans_out: Optional[str],
                  spans_folded: Optional[str]) -> None:
    """Write the recorded span trace; notices go to stderr only."""
    if spans_out:
        path = write_chrome_trace(TRACER, spans_out)
        print(f"spans: {path}", file=sys.stderr)
    if spans_folded:
        path = Path(spans_folded)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(render_folded(TRACER) + "\n", encoding="utf-8")
        print(f"spans (folded): {path}", file=sys.stderr)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-alloc",
        description="Lifetime-predicting allocation (Barrett & Zorn, PLDI'93)",
    )
    parser.add_argument(
        "--spans-out", metavar="PATH", default=None,
        help="record a span trace of this invocation and write it as "
             "Chrome trace-event JSON (open in Perfetto)")
    parser.add_argument(
        "--spans-folded", metavar="PATH", default=None,
        help="also/instead write the span trace as folded stacks "
             "(flamegraph.pl / speedscope input)")
    sub = parser.add_subparsers(required=True, metavar="command",
                                dest="command")

    trace = sub.add_parser("trace", help="run a workload, store its trace")
    trace.add_argument("program", choices=PROGRAM_ORDER)
    trace.add_argument("dataset", help="dataset name (train/test/...)")
    trace.add_argument("-o", "--output", required=True,
                       help="trace file (.json/.json.gz for v2, "
                            ".rtr3 for the streamable v3 format)")
    trace.add_argument("--scale", type=float, default=1.0,
                       help="input scale factor (default 1.0)")
    trace.set_defaults(handler=_cmd_trace)

    profile = sub.add_parser(
        "profile", help="train a short-lived site database from a trace"
    )
    profile.add_argument("trace", help="trace file from `trace`")
    profile.add_argument("-o", "--output", required=True,
                         help="site-database file")
    profile.add_argument("--threshold", type=int, default=DEFAULT_THRESHOLD,
                         help="short-lived cutoff in bytes (default 32768)")
    profile.add_argument("--chain-length", type=int, default=0,
                         help="sub-chain length; 0 = full chain (default)")
    profile.add_argument("--rounding", type=int,
                         default=TRUE_PREDICTION_ROUNDING,
                         help="size rounding in bytes (default 4)")
    profile.set_defaults(handler=_cmd_profile)

    predict = sub.add_parser(
        "predict", help="score a site database against a trace"
    )
    predict.add_argument("sites", help="site-database file from `profile`")
    predict.add_argument("trace", help="trace file to score against")
    predict.set_defaults(handler=_cmd_predict)

    predict_static = sub.add_parser(
        "predict-static",
        help="derive a profile-free site database by escape analysis",
    )
    predict_static.add_argument("program", choices=PROGRAM_ORDER,
                                help="workload whose sources to analyze")
    predict_static.add_argument("-o", "--output", default=None,
                                help="write the static escape database "
                                     "here (loadable by simulate --sites)")
    predict_static.add_argument("--source-root", metavar="DIR", default=None,
                                help="analyze workload sources under DIR "
                                     "instead of the installed tree")
    predict_static.add_argument("--threshold", type=int,
                                default=DEFAULT_THRESHOLD,
                                help="short-lived cutoff the emitted "
                                     "predictor claims (default 32768)")
    predict_static.add_argument("--json", action="store_true",
                                help="print the full database document "
                                     "instead of the summary")
    predict_static.set_defaults(handler=_cmd_predict_static)

    simulate = sub.add_parser(
        "simulate", help="replay a trace against an allocator"
    )
    simulate.add_argument("trace", help="trace file to replay")
    simulate.add_argument("--allocator", default="arena",
                          choices=["arena", "firstfit", "bsd"])
    simulate.add_argument("--sites", help="site database (arena allocator)")
    simulate.add_argument("--predictor", choices=["trained", "static"],
                          default="trained",
                          help="arena predictor source: 'trained' loads "
                               "--sites; 'static' derives the escape-"
                               "analysis predictor from the traced "
                               "program's sources (no --sites needed)")
    simulate.add_argument("--arenas", type=int, default=16,
                          help="number of arenas (default 16)")
    simulate.add_argument("--arena-size", type=int, default=4096,
                          help="bytes per arena (default 4096)")
    simulate.add_argument("--telemetry-out", metavar="DIR", default=None,
                          help="also record heap telemetry during the "
                               "replay and export the time series here")
    simulate.add_argument("--interval", type=int,
                          default=DEFAULT_SAMPLE_INTERVAL,
                          help="telemetry sample interval in allocations "
                               f"(default {DEFAULT_SAMPLE_INTERVAL})")
    _add_stream_option(simulate)
    simulate.add_argument("--jobs", type=int, default=1, metavar="N",
                          help="decode trace chunks with N worker "
                               "processes (needs --stream and a v3 "
                               "trace; output stays byte-identical)")
    simulate.set_defaults(handler=_cmd_simulate)

    convert = sub.add_parser(
        "convert", help="convert a trace file between formats (v2 <-> v3)"
    )
    convert.add_argument("source", help="trace file to read")
    convert.add_argument("dest", help="trace file to write")
    convert.add_argument("--trace-version", type=int, default=None,
                         choices=[2, 3],
                         help="target format version (default: 3, or 2 "
                              "when DEST ends in .json/.json.gz)")
    convert.set_defaults(handler=_cmd_convert)

    quantiles = sub.add_parser(
        "quantiles", help="lifetime quartiles of a stored trace"
    )
    quantiles.add_argument("trace", help="trace file to analyze")
    quantiles.add_argument("--threshold", type=int, default=DEFAULT_THRESHOLD,
                           help="short-lived cutoff in bytes (default 32768)")
    quantiles.set_defaults(handler=_cmd_quantiles)

    sites = sub.add_parser(
        "sites", help="highest-volume allocation sites of a stored trace"
    )
    sites.add_argument("trace", help="trace file to analyze")
    sites.add_argument("--top", type=int, default=15,
                       help="how many sites to list (default 15)")
    sites.add_argument("--threshold", type=int, default=DEFAULT_THRESHOLD,
                       help="short-lived cutoff in bytes (default 32768)")
    sites.set_defaults(handler=_cmd_sites)

    diff = sub.add_parser(
        "diff", help="attribute the self-vs-true prediction gap"
    )
    diff.add_argument("train", help="training trace file")
    diff.add_argument("test", help="test trace file")
    diff.add_argument("--threshold", type=int, default=DEFAULT_THRESHOLD,
                      help="short-lived cutoff in bytes (default 32768)")
    diff.add_argument("--top", type=int, default=10,
                      help="unpredictable sites to list (default 10)")
    diff.set_defaults(handler=_cmd_diff)

    warm = sub.add_parser(
        "warm", help="populate the persistent trace cache"
    )
    _add_store_options(warm, jobs=True)
    warm.add_argument("-v", "--verbose", action="store_true",
                      help="print per-stage wall times and cache counters")
    warm.add_argument("--metrics-json", metavar="PATH", default=None,
                      help="write the session's pipeline metrics "
                           "(timings + counters) to PATH as JSON")
    warm.set_defaults(handler=_cmd_warm)

    table = sub.add_parser("table", help="regenerate the paper's tables")
    table.add_argument("which", help="table number 1-9, or 'all'")
    _add_store_options(table, jobs=True)
    _add_stream_option(table)
    _add_predictor_option(table)
    table.set_defaults(handler=_cmd_table)

    escape_cmd = sub.add_parser(
        "escape-eval",
        help="compare the static escape predictor against trained "
             "predictors and the oracle over every workload",
    )
    escape_cmd.add_argument("--programs", nargs="+", choices=PROGRAM_ORDER,
                            default=None, metavar="PROG",
                            help="restrict to these programs (default: all)")
    escape_cmd.add_argument("--threshold", type=int,
                            default=DEFAULT_THRESHOLD,
                            help="short-lived cutoff in bytes "
                                 "(default 32768)")
    escape_cmd.add_argument("--arenas", type=int, default=16,
                            help="number of arenas (default 16)")
    escape_cmd.add_argument("--arena-size", type=int, default=4096,
                            help="bytes per arena (default 4096)")
    escape_cmd.add_argument("--json", action="store_true",
                            help="print the machine-readable comparison "
                                 "instead of the table")
    _add_store_options(escape_cmd)
    _add_stream_option(escape_cmd)
    escape_cmd.add_argument("--jobs", type=int, default=1, metavar="N",
                            help="decode trace chunks with N worker "
                                 "processes (needs --stream; output "
                                 "stays byte-identical)")
    escape_cmd.set_defaults(handler=_cmd_escape_eval)

    stats = sub.add_parser(
        "stats", help="per-site misprediction accounting for one workload"
    )
    _add_telemetry_options(stats)
    stats.add_argument("--top", type=int, default=15,
                       help="how many sites to list (default 15)")
    stats.add_argument("--json", action="store_true",
                       help="print the machine-readable summary instead "
                            "of the table")
    _add_stream_option(stats)
    stats.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="decode trace chunks with N worker processes "
                            "(needs --stream; output stays "
                            "byte-identical)")
    stats.add_argument("--diff", metavar="SUMMARY", default=None,
                       help="diff this recorded telemetry summary JSON "
                            "(old) against the current replay (new); "
                            "exits 1 on a regression verdict")
    stats.add_argument("--rel-threshold", type=float,
                       default=DEFAULT_REL_THRESHOLD,
                       help="relative change below which a --diff metric "
                            "counts as unchanged "
                            f"(default {DEFAULT_REL_THRESHOLD})")
    stats.set_defaults(handler=_cmd_stats)

    profile_sites = sub.add_parser(
        "profile-sites",
        help="attribute cost/occupancy/fragmentation per allocation site",
    )
    profile_sites.add_argument("--program", required=True,
                               choices=PROGRAM_ORDER,
                               help="workload to attribute")
    profile_sites.add_argument("--dataset", default="test",
                               help="dataset to attribute (default test)")
    profile_sites.add_argument("--profile", default="arena",
                               choices=list(ATTRIB_PROFILES),
                               help="allocator cost profile (default arena: "
                                    "a predictor decides placement)")
    profile_sites.add_argument("--sites", default=None,
                               help="site database for the arena profile "
                                    "(default: train on the program's "
                                    "train dataset)")
    profile_sites.add_argument("--threshold", type=int, default=None,
                               help="short-lived cutoff in bytes (default: "
                                    "the predictor's, else 32768)")
    profile_sites.add_argument("--top", type=int, default=10,
                               help="sites to list in the table "
                                    "(default 10)")
    profile_sites.add_argument("--json", action="store_true",
                               help="print the attribution document "
                                    "instead of the table")
    profile_sites.add_argument("--out-dir", metavar="DIR",
                               default=str(DEFAULT_TELEMETRY_DIR),
                               help="where to write the JSON/CSV/"
                                    "collapsed-stack artifacts "
                                    f"(default {DEFAULT_TELEMETRY_DIR})")
    _add_store_options(profile_sites)
    _add_stream_option(profile_sites)
    _add_predictor_option(profile_sites)
    profile_sites.add_argument("--jobs", type=int, default=1, metavar="N",
                               help="shard the attribution fold over N "
                                    "worker processes (needs --stream; "
                                    "output stays byte-identical)")
    profile_sites.set_defaults(handler=_cmd_profile_sites)

    windows = sub.add_parser(
        "windows",
        help="windowed heap time series and per-site lifetime drift",
    )
    windows.add_argument("--program", required=True, choices=PROGRAM_ORDER,
                         help="workload to window")
    windows.add_argument("--dataset", default="test",
                         help="dataset to window (default test)")
    windows.add_argument("--windows", type=int, default=DEFAULT_WINDOWS,
                         metavar="N",
                         help="number of windows to partition the run "
                              f"into (default {DEFAULT_WINDOWS})")
    windows.add_argument("--by", default="bytes",
                         choices=list(WINDOW_AXES),
                         help="window axis: equal byte-time spans or "
                              "equal allocation-event counts "
                              "(default bytes)")
    windows.add_argument("--sites-db", default=None,
                         help="site database scoring the per-window "
                              "short fractions (default: train on the "
                              "program's train dataset)")
    windows.add_argument("--threshold", type=int, default=None,
                         help="short-lived cutoff in bytes (default: "
                              "the predictor's, else 32768)")
    windows.add_argument("--top", type=int, default=10,
                         help="drifting sites to list in the table "
                              "(default 10)")
    windows.add_argument("--json", action="store_true",
                         help="print the windows + drift documents "
                              "instead of the tables")
    windows.add_argument("--out-dir", metavar="DIR",
                         default=str(DEFAULT_TELEMETRY_DIR),
                         help="where to write the windows JSON/CSV and "
                              "drift JSON artifacts "
                              f"(default {DEFAULT_TELEMETRY_DIR})")
    windows.add_argument("--min-windows", type=int,
                         default=DEFAULT_MIN_WINDOWS, metavar="K",
                         help="windows that must contradict before a "
                              "site counts as drifting "
                              f"(default {DEFAULT_MIN_WINDOWS})")
    windows.add_argument("--min-objects", type=int,
                         default=DEFAULT_MIN_OBJECTS, metavar="N",
                         help="objects a window needs for its short "
                              "fraction to count "
                              f"(default {DEFAULT_MIN_OBJECTS})")
    windows.add_argument("--flip-fraction", type=float,
                         default=DEFAULT_FLIP_FRACTION,
                         help="short-fraction boundary a window must "
                              "cross to contradict "
                              f"(default {DEFAULT_FLIP_FRACTION})")
    _add_store_options(windows)
    _add_stream_option(windows)
    windows.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="shard the window fold over N worker "
                              "processes (needs --stream; output stays "
                              "byte-identical)")
    windows.set_defaults(handler=_cmd_windows)

    report = sub.add_parser(
        "report",
        help="self-contained HTML run report (windows, drift, "
             "attribution, telemetry, bench)",
    )
    _add_telemetry_options(report)
    report.add_argument("--windows", type=int, default=DEFAULT_WINDOWS,
                        metavar="N",
                        help="windows in the report's time series "
                             f"(default {DEFAULT_WINDOWS})")
    report.add_argument("--by", default="bytes", choices=list(WINDOW_AXES),
                        help="window axis (default bytes)")
    report.add_argument("--threshold", type=int, default=None,
                        help="short-lived cutoff in bytes (default: "
                             "the predictor's, else 32768)")
    report.add_argument("--html", required=True, metavar="PATH",
                        help="where to write the single-file HTML report")
    report.add_argument("--timestamp", default=None, metavar="STAMP",
                        help="explicit generated-at stamp embedded in "
                             "the report (default: current UTC time; "
                             "pass a fixed stamp for byte-identical "
                             "renders)")
    report.add_argument("--bench-dir", default=None, metavar="DIR",
                        help="bench trajectory to chart (default: the "
                             "standard BENCH_<seq>.json directory)")
    report.set_defaults(handler=_cmd_report)

    diff_sessions = sub.add_parser(
        "diff-sessions",
        help="regression verdicts between two recorded sessions",
    )
    diff_sessions.add_argument("old", help="baseline session file "
                                           "(attribution export, telemetry "
                                           "summary, or bench session)")
    diff_sessions.add_argument("new", help="candidate session file "
                                           "(same kind as OLD)")
    diff_sessions.add_argument("--rel-threshold", type=float,
                               default=DEFAULT_REL_THRESHOLD,
                               help="relative change below which a metric "
                                    "counts as unchanged "
                                    f"(default {DEFAULT_REL_THRESHOLD})")
    diff_sessions.add_argument("--json", action="store_true",
                               help="print the diff as JSON instead of "
                                    "the report")
    diff_sessions.set_defaults(handler=_cmd_diff_sessions)

    timeline = sub.add_parser(
        "timeline", help="heap telemetry time series for one workload"
    )
    _add_telemetry_options(timeline)
    timeline.add_argument("--out-dir", metavar="DIR",
                          default=str(DEFAULT_TELEMETRY_DIR),
                          help="where to write the JSONL/CSV/JSON series "
                               f"(default {DEFAULT_TELEMETRY_DIR})")
    timeline.add_argument("--json", action="store_true",
                          help="print the sample rows as one JSON "
                               "document (deterministic key order); "
                               "artifact notices move to stderr")
    timeline.add_argument("--windows", type=int, default=None, metavar="N",
                          help="append the windowed time series over N "
                               "windows (see the windows subcommand)")
    timeline.add_argument("--by", default="bytes",
                          choices=list(WINDOW_AXES),
                          help="window axis for --windows "
                               "(default bytes)")
    timeline.set_defaults(handler=_cmd_timeline)

    bench = sub.add_parser(
        "bench",
        help="benchmark trajectory: run the suite, compare, show history",
    )
    bench_sub = bench.add_subparsers(required=True, metavar="action")

    bench_run = bench_sub.add_parser(
        "run", help="run the benchmark suite into BENCH_<seq>.json"
    )
    bench_run.add_argument("--scale", type=float, default=None,
                           help="workload scale factor (default: "
                                "$REPRO_BENCH_SCALE or 1.0)")
    bench_run.add_argument("--cache-dir", default=None, metavar="DIR",
                           help="trace cache directory (default "
                                "$REPRO_CACHE_DIR or ~/.cache/repro-alloc)")
    bench_run.add_argument("--no-cache", action="store_true",
                           help="bypass the persistent trace cache")
    bench_run.add_argument("--bench-dir", default=None, metavar="DIR",
                           help="trajectory directory (default "
                                "$REPRO_BENCH_DIR or results/bench)")
    bench_run.add_argument("--repeats", type=int, default=DEFAULT_REPEATS,
                           help="replays per benchmark; the minimum wall "
                                f"time is recorded (default {DEFAULT_REPEATS})")
    bench_run.add_argument("--programs", nargs="+", choices=PROGRAM_ORDER,
                           default=None, metavar="PROG",
                           help="restrict to these programs (default: all)")
    bench_run.add_argument("--allocators", nargs="+",
                           choices=list(BENCH_ALLOCATORS),
                           default=list(BENCH_ALLOCATORS), metavar="ALLOC",
                           help="restrict to these allocators (default: all)")
    bench_run.add_argument("--jobs", type=int, default=1, metavar="N",
                           help="replay through the sharded streaming "
                                "path with N workers (records the same "
                                "deterministic metrics; wall time is "
                                "what changes)")
    _add_predictor_option(bench_run)
    bench_run.set_defaults(handler=_cmd_bench_run)

    bench_compare = bench_sub.add_parser(
        "compare", help="gate one session against another"
    )
    bench_compare.add_argument(
        "old", nargs="?", default=None,
        help="baseline session: seq number, path, 'prev' (default), or "
             "'latest'")
    bench_compare.add_argument(
        "new", nargs="?", default=None,
        help="candidate session: seq number, path, or 'latest' (default)")
    bench_compare.add_argument("--bench-dir", default=None, metavar="DIR",
                               help="trajectory directory (default "
                                    "$REPRO_BENCH_DIR or results/bench)")
    bench_compare.add_argument(
        "--wall-tol", type=float, default=DEFAULT_WALL_TOLERANCE,
        help="relative wall-time noise threshold "
             f"(default {DEFAULT_WALL_TOLERANCE})")
    bench_compare.add_argument(
        "--no-wall", action="store_true",
        help="skip wall-time gating entirely (cross-machine compares: "
             "only the deterministic metrics carry meaning)")
    bench_compare.set_defaults(handler=_cmd_bench_compare)

    bench_history = bench_sub.add_parser(
        "history", help="list the recorded benchmark trajectory"
    )
    bench_history.add_argument("--bench-dir", default=None, metavar="DIR",
                               help="trajectory directory (default "
                                    "$REPRO_BENCH_DIR or results/bench)")
    bench_history.add_argument("--json", action="store_true",
                               help="print the trajectory as JSON instead "
                                    "of the table (scriptable, like "
                                    "stats --json)")
    bench_history.set_defaults(handler=_cmd_bench_history)

    lint = sub.add_parser(
        "lint",
        help="alloclint: check the repo contract rules (R001-R004)",
    )
    lint.add_argument("paths", nargs="*", default=["src"], metavar="PATH",
                      help="files or directories to lint (default: src)")
    lint.add_argument("--format", choices=["text", "json", "sarif"],
                      default="text", help="report format (default text)")
    lint.add_argument("-o", "--output", metavar="PATH", default=None,
                      help="write the report here instead of stdout")
    lint.add_argument("--sarif-out", metavar="PATH", default=None,
                      help="additionally write a SARIF report to PATH "
                           "(CI artifact)")
    lint.add_argument("--severity", action="append", metavar="RULE=LEVEL",
                      default=None,
                      help="override a rule's severity, e.g. R002=info "
                           "(levels: info, warning, error; repeatable)")
    lint.add_argument("--fail-level", choices=sorted(SEVERITY_LEVELS),
                      default="warning",
                      help="lowest severity that fails the run "
                           "(default warning)")
    lint.set_defaults(handler=_cmd_lint)

    audit = sub.add_parser(
        "audit-sites",
        help="diff static allocation sites against traces or a site DB",
    )
    audit.add_argument("--programs", nargs="+", choices=PROGRAM_ORDER,
                       default=None, metavar="PROG",
                       help="restrict to these programs (default: all)")
    audit.add_argument("--dataset", default="train",
                       help="dataset to trace for the dynamic side "
                            "(default train)")
    audit.add_argument("--sites-db", metavar="PATH", default=None,
                       help="audit this saved predictor database instead "
                            "of tracing (site-kind databases only)")
    audit.add_argument("--source-root", metavar="DIR", default=None,
                       help="analyze workload sources under DIR instead "
                            "of the installed tree (drift testing)")
    audit.add_argument("--static-out", metavar="PATH", default=None,
                       help="also write the static site database(s): a "
                            ".json file for a single program, else a "
                            "directory")
    audit.add_argument("--json", action="store_true",
                       help="print the machine-readable audit instead of "
                            "the text report")
    audit.add_argument("--max-unexercised", type=int, default=10,
                       metavar="N",
                       help="unexercised sites to list per program in the "
                            "text report; -1 for all (default 10)")
    _add_store_options(audit)
    audit.set_defaults(handler=_cmd_audit_sites)

    return parser


def _add_store_options(
    sub: argparse.ArgumentParser, jobs: bool = False
) -> None:
    """The trace-store flags every store-backed subcommand shares.

    ``warm``/``table`` fan work out across processes and also take
    ``--jobs``; ``stats``/``timeline`` replay a single execution and
    only need the scale and cache knobs.
    """
    sub.add_argument("--scale", type=float, default=1.0,
                     help="workload scale factor (default 1.0)")
    sub.add_argument("--cache-dir", default=None, metavar="DIR",
                     help="trace cache directory (default $REPRO_CACHE_DIR "
                          "or ~/.cache/repro-alloc)")
    sub.add_argument("--no-cache", action="store_true",
                     help="bypass the persistent trace cache")
    if jobs:
        sub.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="worker processes (default 1: serial)")


def _add_predictor_option(sub: argparse.ArgumentParser) -> None:
    """The ``--predictor`` mode flag of store-backed arena consumers.

    ``trained`` (the default) profiles the ``train`` execution;
    ``static`` swaps in the profile-free escape-analysis predictor —
    same key space, no profiling run.
    """
    sub.add_argument("--predictor", choices=["trained", "static"],
                     default="trained",
                     help="arena predictor source (default trained: "
                          "profile the train execution; static: the "
                          "escape-analysis predictor, no profiling run)")


def _add_stream_option(sub: argparse.ArgumentParser) -> None:
    """The ``--stream`` flag shared by ``simulate``/``table``/``stats``.

    Streaming keeps stdout byte-identical to the materialized path; the
    peak-RSS note demonstrating the memory model goes to stderr.
    """
    sub.add_argument("--stream", action="store_true",
                     help="replay through the constant-memory event "
                          "stream instead of materializing traces; "
                          "reports peak RSS on stderr")


def _add_telemetry_options(sub: argparse.ArgumentParser) -> None:
    """The replay-selection flags shared by ``stats`` and ``timeline``."""
    sub.add_argument("--program", required=True, choices=PROGRAM_ORDER,
                     help="workload to replay")
    sub.add_argument("--dataset", default="test",
                     help="dataset to replay (default test)")
    sub.add_argument("--allocator", default="arena",
                     choices=["arena", "firstfit", "bsd"])
    sub.add_argument("--sites", default=None,
                     help="site database for the arena allocator (default: "
                          "train on the program's train dataset)")
    sub.add_argument("--interval", type=int,
                     default=DEFAULT_SAMPLE_INTERVAL,
                     help="sample interval in allocations "
                          f"(default {DEFAULT_SAMPLE_INTERVAL})")
    _add_store_options(sub)


def _cmd_trace(args: argparse.Namespace) -> int:
    trace = run_workload(args.program, args.dataset, scale=args.scale)
    save_trace(trace, args.output)
    live = trace.live_stats()
    print(
        f"{args.program}/{args.dataset}: {trace.total_objects} objects, "
        f"{trace.total_bytes} bytes, max live {live.max_live_bytes} bytes "
        f"-> {args.output}"
    )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    trace = load_trace(args.trace)
    chain_length = FULL_CHAIN if args.chain_length == 0 else args.chain_length
    predictor = train_site_predictor(
        trace,
        threshold=args.threshold,
        chain_length=chain_length,
        size_rounding=args.rounding,
    )
    save_predictor(predictor, args.output)
    print(
        f"{trace.program}/{trace.dataset}: {predictor.site_count} "
        f"short-lived sites (threshold {args.threshold}) -> {args.output}"
    )
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    predictor = load_predictor(args.sites)
    trace = load_trace(args.trace)
    result = evaluate(predictor, trace)
    print(f"program:            {trace.program}/{trace.dataset}")
    print(f"total bytes:        {result.total_bytes}")
    print(f"actual short-lived: {result.actual_pct:.1f}%")
    print(f"predicted:          {result.predicted_pct:.1f}%")
    print(f"error bytes:        {result.error_pct:.2f}%")
    print(f"sites used:         {result.sites_used}/{result.total_sites}")
    print(f"new heap refs:      {result.new_ref_pct:.1f}%")
    return 0


def _cmd_predict_static(args: argparse.Namespace) -> int:
    source_root = Path(args.source_root) if args.source_root else None
    db = build_escape_db(args.program, source_root=source_root,
                         threshold=args.threshold)
    if args.output:
        db.save(args.output)
        print(f"static escape DB -> {args.output}", file=sys.stderr)
    if args.json:
        print(db.to_json(), end="")
        return 0
    counts = db.class_counts()
    truncated = " (truncated)" if db.truncated else ""
    print(f"program:   {db.program}")
    print(f"files:     {len(db.files)}")
    print(f"sites:     {len(db.sites)}{truncated}")
    print(f"short:     {counts['short']}")
    print(f"escaping:  {counts['escaping']}")
    print(f"unknown:   {counts['unknown']}")
    return 0


def _cmd_escape_eval(args: argparse.Namespace) -> int:
    if args.jobs > 1 and not args.stream:
        raise ValueError(
            "escape-eval: --jobs shards the streamed replay; add --stream"
        )
    store = _make_store(args)
    result = escape_eval(
        store,
        programs=args.programs,
        threshold=args.threshold,
        num_arenas=args.arenas,
        arena_size=args.arena_size,
    )
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(render_escape_eval(result))
    if args.stream:
        _report_peak_rss()
    return 0


def _report_peak_rss() -> None:
    """Record and print peak RSS (stderr, so stdout stays byte-identical).

    Prints the registry's gauge rather than the fresh sample so the
    figure covers merged worker snapshots too — the max across every
    process that contributed, not just the parent.
    """
    record_peak_rss()
    print(f"peak rss: {METRICS.counter('peak_rss_kb')} KB", file=sys.stderr)


def _cmd_convert(args: argparse.Namespace) -> int:
    version = convert_trace(args.source, args.dest,
                            version=args.trace_version)
    print(f"{args.source} -> {args.dest} (format v{version})")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    if args.jobs > 1 and not args.stream:
        raise ValueError(
            "simulate: --jobs shards the streamed replay; add --stream"
        )
    trace = open_trace_stream(args.trace) if args.stream \
        else load_trace(args.trace)
    if args.jobs > 1:
        if isinstance(trace, TraceFileSource):
            trace = ShardedTraceSource(args.trace, jobs=args.jobs)
        else:
            print(
                "simulate: --jobs needs a v3 (.rtr3) trace to shard; "
                "replaying serially",
                file=sys.stderr,
            )
    telemetry = (
        Telemetry(interval=args.interval)
        if args.telemetry_out is not None else None
    )
    if args.allocator == "firstfit":
        result = simulate_firstfit(trace, telemetry=telemetry)
    elif args.allocator == "bsd":
        result = simulate_bsd(trace, telemetry=telemetry)
    else:
        if args.predictor == "static":
            program = (
                trace.header.program if hasattr(trace, "header")
                else trace.program
            )
            predictor = build_escape_db(program).to_predictor()
        elif not args.sites:
            raise ValueError(
                "the arena allocator needs --sites (or --predictor static)"
            )
        else:
            predictor = load_predictor(args.sites)
        result = simulate_arena(
            trace, predictor,
            num_arenas=args.arenas, arena_size=args.arena_size,
            telemetry=telemetry,
        )
    print(f"allocator:      {result.allocator}")
    print(f"max heap size:  {result.max_heap_size} bytes")
    print(f"instr/alloc:    {result.cost.per_alloc:.1f}")
    print(f"instr/free:     {result.cost.per_free:.1f}")
    if result.allocator.startswith("arena"):
        print(f"arena allocs:   {result.arena_alloc_pct:.1f}%")
        print(f"arena bytes:    {result.arena_byte_pct:.1f}%")
    if telemetry is not None:
        # The export notice goes to stderr so the measurement summary on
        # stdout is byte-identical with and without telemetry.
        paths = export_timeline(telemetry, Path(args.telemetry_out))
        for path in paths.values():
            print(f"telemetry: {path}", file=sys.stderr)
    if args.stream:
        _report_peak_rss()
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    diff = diff_traces(
        load_trace(args.train), load_trace(args.test),
        threshold=args.threshold,
    )
    print(render_diff(diff, top=args.top))
    return 0


def _cmd_quantiles(args: argparse.Namespace) -> int:
    print(lifetime_report(load_trace(args.trace), threshold=args.threshold))
    return 0


def _cmd_sites(args: argparse.Namespace) -> int:
    print(sites_report(load_trace(args.trace), top=args.top,
                       threshold=args.threshold))
    return 0


_TABLES = {
    "1": (tables_mod.table1, report_mod.render_table1),
    "2": (tables_mod.table2, report_mod.render_table2),
    "3": (tables_mod.table3, report_mod.render_table3),
    "4": (tables_mod.table4, report_mod.render_table4),
    "5": (tables_mod.table5, report_mod.render_table5),
    "6": (tables_mod.table6, report_mod.render_table6),
    "7": (tables_mod.table7, report_mod.render_table7),
    "8": (tables_mod.table8, report_mod.render_table8),
    "9": (tables_mod.table9, report_mod.render_table9),
}


def _make_store(args: argparse.Namespace) -> TraceStore:
    streaming = getattr(args, "stream", False)
    return TraceStore(
        scale=args.scale,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        streaming=streaming,
        # Sharded decode only exists for file-backed streams; a
        # materialized store ignores jobs, so don't pass it through.
        jobs=getattr(args, "jobs", 1) if streaming else 1,
        predictor_mode=getattr(args, "predictor", "trained"),
    )


def _cmd_warm(args: argparse.Namespace) -> int:
    store = _make_store(args)
    results = store.warm(jobs=args.jobs)
    for result in results:
        label = f"{result.program}/{result.dataset}"
        print(f"{label:<18} {result.source:<6} {result.seconds:6.2f}s")
    total = METRICS.timing("warm").seconds
    by_source = {
        source: sum(1 for r in results if r.source == source)
        for source in ("memory", "disk", "run")
    }
    where = store.cache.directory if store.cache is not None else "(no cache)"
    print(
        f"warmed {len(results)} executions in {total:.2f}s "
        f"({by_source['memory']} memory, {by_source['disk']} disk, "
        f"{by_source['run']} run) -> {where}"
    )
    if args.verbose:
        print()
        print(METRICS.report("pipeline metrics:"))
        print()
        print(METRICS.to_json())
    if args.metrics_json:
        path = Path(args.metrics_json)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(METRICS.to_json() + "\n", encoding="utf-8")
        print(f"metrics -> {path}", file=sys.stderr)
    return 0


def _replay_with_telemetry(args: argparse.Namespace) -> Telemetry:
    """Shared body of ``stats`` and ``timeline``: one instrumented replay.

    The trace comes through the same :class:`TraceStore` the tables use
    (so warmed caches are reused); the arena predictor defaults to true
    prediction — trained on the program's ``train`` execution — unless a
    saved site database is supplied.
    """
    store = _make_store(args)
    source = store.source(args.program, args.dataset)
    telemetry = Telemetry(interval=args.interval)
    if args.allocator == "firstfit":
        simulate_firstfit(source, telemetry=telemetry)
    elif args.allocator == "bsd":
        simulate_bsd(source, telemetry=telemetry)
    else:
        if args.sites:
            predictor = load_predictor(args.sites)
        else:
            predictor = store.predictor(args.program)
        simulate_arena(source, predictor, telemetry=telemetry)
    if not telemetry.samples:
        raise ValueError(
            f"telemetry recorded zero samples for "
            f"{args.program}/{args.dataset} — empty trace?"
        )
    return telemetry


def _cmd_stats(args: argparse.Namespace) -> int:
    if args.jobs > 1 and not args.stream:
        raise ValueError(
            "stats: --jobs shards the streamed replay; add --stream"
        )
    telemetry = _replay_with_telemetry(args)
    summary = telemetry_summary(telemetry, top=args.top)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(render_stats(telemetry, top=args.top))
    exit_code = 0
    if args.diff:
        result = diff_documents(
            load_session_doc(args.diff), summary,
            rel_threshold=args.rel_threshold,
        )
        print(render_diff_report(result))
        exit_code = 1 if result.regressed else 0
    if args.stream:
        _report_peak_rss()
    return exit_code


def _cmd_profile_sites(args: argparse.Namespace) -> int:
    if args.jobs > 1 and not args.stream:
        raise ValueError(
            "profile-sites: --jobs shards the streamed fold; add --stream"
        )
    store = _make_store(args)
    source = store.source(args.program, args.dataset)
    predictor = None
    if args.profile == "arena":
        predictor = (
            load_predictor(args.sites) if args.sites
            else store.predictor(args.program)
        )
    profile = attribute_sites(
        source,
        profile=args.profile,
        predictor=predictor,
        threshold=args.threshold,
    )
    if args.json:
        print(json.dumps(profile.to_dict(), indent=2, sort_keys=True))
    else:
        print(render_attrib(profile, top=args.top))
    # Artifact notices go to stderr so stdout stays byte-identical
    # across the materialized / --stream / --jobs replay modes (gated
    # in CI and tests/test_stream_parity.py).
    paths = export_attribution(profile, Path(args.out_dir))
    for kind in sorted(paths):
        print(f"attribution {kind}: {paths[kind]}", file=sys.stderr)
    if args.stream:
        _report_peak_rss()
    return 0


def _window_basename(profile) -> str:
    """The artifact basename the windows/drift exports share."""
    raw = (
        f"{profile.program}-{profile.dataset}"
        f"-w{profile.spec.count}{profile.spec.axis[0]}"
    )
    return "".join(
        ch if ch.isalnum() or ch in "-._" else "_" for ch in raw
    )


def _cmd_windows(args: argparse.Namespace) -> int:
    if args.jobs > 1 and not args.stream:
        raise ValueError(
            "windows: --jobs shards the streamed fold; add --stream"
        )
    store = _make_store(args)
    source = store.source(args.program, args.dataset)
    predictor = (
        load_predictor(args.sites_db) if args.sites_db
        else store.predictor(args.program)
    )
    profile = window_profile(
        source,
        windows=args.windows,
        by=args.by,
        predictor=predictor,
        threshold=args.threshold,
    )
    drift = drift_report(
        profile,
        min_windows=args.min_windows,
        min_objects=args.min_objects,
        flip_fraction=args.flip_fraction,
    )
    if args.json:
        print(json.dumps({"windows": profile.to_dict(), "drift": drift},
                         indent=2, sort_keys=True))
    else:
        print(render_windows(profile))
        print()
        print(render_drift(drift, top=args.top))
    # Artifact notices go to stderr so stdout stays byte-identical
    # across the materialized / --stream / --jobs replay modes (gated
    # in CI and tests/test_stream_parity.py).
    out_dir = Path(args.out_dir)
    basename = _window_basename(profile)
    paths = export_windows(profile, out_dir, basename=basename)
    paths["drift"] = write_drift_json(
        drift, out_dir / f"{basename}.drift.json"
    )
    for kind in sorted(paths):
        print(f"windows {kind}: {paths[kind]}", file=sys.stderr)
    if args.stream:
        _report_peak_rss()
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    store = _make_store(args)
    predictor = (
        load_predictor(args.sites) if args.sites
        else store.predictor(args.program)
    )
    profile = window_profile(
        store.source(args.program, args.dataset),
        windows=args.windows,
        by=args.by,
        predictor=predictor,
        threshold=args.threshold,
    )
    drift = drift_report(profile)
    attrib = attribute_sites(
        store.source(args.program, args.dataset),
        profile="arena",
        predictor=predictor,
        threshold=args.threshold,
    )
    telemetry = _replay_with_telemetry(args)
    history = [
        session.to_dict() for session in BenchStore(args.bench_dir).history()
    ]
    # The one wall-clock read in the report path lives here in the CLI,
    # outside the lint's deterministic scope — pass --timestamp for
    # byte-identical renders.
    stamp = (
        args.timestamp if args.timestamp is not None
        else datetime.now(timezone.utc).isoformat(timespec="seconds")
    )
    path = write_report(
        Path(args.html),
        profile.to_dict(),
        drift_doc=drift,
        attribution_doc=attrib.summary_dict(top=10),
        telemetry_doc=telemetry_summary(telemetry),
        bench_history=history or None,
        generated_at=stamp,
    )
    print(f"report -> {path}")
    return 0


def _cmd_diff_sessions(args: argparse.Namespace) -> int:
    result = diff_paths(args.old, args.new,
                        rel_threshold=args.rel_threshold)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(render_diff_report(result))
    return 1 if result.regressed else 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    telemetry = _replay_with_telemetry(args)
    win_profile = None
    if args.windows:
        store = _make_store(args)
        predictor = (
            load_predictor(args.sites) if args.sites
            else store.predictor(args.program)
        )
        win_profile = window_profile(
            store.source(args.program, args.dataset),
            windows=args.windows,
            by=args.by,
            predictor=predictor,
        )
    if args.json:
        doc = {
            "kind": "timeline",
            "program": telemetry.program,
            "dataset": telemetry.dataset,
            "allocator": telemetry.allocator_name,
            "interval": telemetry.interval,
            "sample_count": len(telemetry.samples),
            "totals": telemetry.totals(),
            "samples": telemetry.samples,
        }
        if win_profile is not None:
            doc["windows"] = win_profile.to_dict()
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(render_timeline(telemetry))
        if win_profile is not None:
            print()
            print(render_windows(win_profile))
    paths = export_timeline(telemetry, Path(args.out_dir))
    # With --json stdout is the document; the artifact notices move to
    # stderr so the output stays machine-readable.
    notice_stream = sys.stderr if args.json else sys.stdout
    for kind in sorted(paths):
        print(f"{kind:<8} -> {paths[kind]}", file=notice_stream)
    return 0


def _bench_scale(args: argparse.Namespace) -> float:
    """The bench scale: ``--scale``, else ``$REPRO_BENCH_SCALE``, else 1.0."""
    if args.scale is not None:
        return args.scale
    raw = os.environ.get("REPRO_BENCH_SCALE", "1.0")
    try:
        return float(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_BENCH_SCALE must be a number (workload scale factor), "
            f"got {raw!r}"
        )


def _cmd_bench_run(args: argparse.Namespace) -> int:
    if args.jobs < 1:
        raise ValueError(f"bench run: --jobs must be >= 1, got {args.jobs}")
    scale = _bench_scale(args)
    store = TraceStore(
        scale=scale, cache_dir=args.cache_dir, use_cache=not args.no_cache,
        streaming=args.jobs > 1, jobs=args.jobs,
        predictor_mode=args.predictor,
    )
    bench_store = BenchStore(args.bench_dir)
    session = run_session(
        store,
        seq=bench_store.next_seq(),
        programs=args.programs,
        allocators=args.allocators,
        repeats=args.repeats,
        extra_provenance={"replay_jobs": args.jobs,
                          "predictor": args.predictor},
    )
    # Attach the top-K site attribution per program so a regressed
    # session explains *which sites* paid.  Deterministic but ungated:
    # the comparator reads only the records.
    if "arena" in args.allocators:
        for program in args.programs or PROGRAM_ORDER:
            profile = attribute_sites(
                store.source(program, "test"),
                profile="arena",
                predictor=store.predictor(program),
            )
            session.attribution[program] = profile.summary_dict(top=10)
    path = bench_store.write(session)
    for rec in session.records:
        line = (
            f"{rec.name:<24} {rec.wall_seconds:8.3f}s"
            f"  instr/alloc {rec.instr_per_alloc:7.1f}"
            f"  heap {rec.max_heap_size:>11,}"
            f"  rss {rec.peak_rss_kb:>9,}KB"
        )
        if rec.allocator == "arena":
            line += (
                f"  capture {rec.arena_byte_pct:5.1f}%"
                f"  mispred {rec.mispredictions_total:,}"
            )
        print(line)
    sha = session.provenance.get("git_sha", "unknown")[:10]
    jobs_note = f", jobs {args.jobs}" if args.jobs > 1 else ""
    print(
        f"bench session {session.seq:04d} (sha {sha}, scale {scale}"
        f"{jobs_note}, {len(session.records)} benchmarks, "
        f"min of {args.repeats}) -> {path}"
    )
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    bench_store = BenchStore(args.bench_dir)
    old = bench_store.load(args.old if args.old is not None else "prev")
    new = bench_store.load(args.new if args.new is not None else "latest")
    result = compare_sessions(
        old, new,
        wall_tolerance=args.wall_tol,
        include_wall=not args.no_wall,
    )
    print(render_compare(result))
    return 0 if result.ok else 1


def _cmd_bench_history(args: argparse.Namespace) -> int:
    bench_store = BenchStore(args.bench_dir)
    sessions = bench_store.history()
    if args.json:
        payload = [
            {
                "seq": session.seq,
                "git_sha": session.provenance.get("git_sha", "unknown"),
                "scale": session.scale,
                "benchmarks": len(session.records),
                "total_wall_seconds": sum(
                    rec.wall_seconds for rec in session.records
                ),
                "created_at": session.provenance.get("created_at"),
            }
            for session in sessions
        ]
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if not sessions:
        print(f"no bench sessions under {bench_store.directory}")
        return 0
    print("seq   git sha     scale  benchmarks  total wall  recorded at")
    for session in sessions:
        prov = session.provenance
        total_wall = sum(rec.wall_seconds for rec in session.records)
        print(
            f"{session.seq:04d}  {prov.get('git_sha', 'unknown')[:10]:<10}"
            f"  {session.scale:<5g}  {len(session.records):>10}"
            f"  {total_wall:9.3f}s  {prov.get('created_at', '?')}"
        )
    return 0


def _parse_severities(specs: Optional[List[str]]) -> dict:
    severities = dict(DEFAULT_SEVERITIES)
    for spec in specs or []:
        rule, sep, level = spec.partition("=")
        if not sep or rule not in RULES or level not in SEVERITY_LEVELS:
            raise ValueError(
                f"bad --severity {spec!r}: expected RULE=LEVEL with RULE in "
                f"{sorted(RULES)} and LEVEL in {sorted(SEVERITY_LEVELS)}"
            )
        severities[rule] = level
    return severities


def _write_report(path: str, text: str, label: str) -> None:
    out = Path(path)
    if out.parent != Path(""):
        out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(text, encoding="utf-8")
    print(f"{label}: {out}", file=sys.stderr)


def _cmd_lint(args: argparse.Namespace) -> int:
    # Lint owns its full 0/1/2 exit-code contract, so every failure mode
    # (including ones main() would map to 1) is converted to 2 here.
    try:
        config = LintConfig(
            severities=_parse_severities(args.severity),
            fail_level=args.fail_level,
        )
        with TRACER.span("lint.scan", cat="static"):
            result = lint_paths([Path(p) for p in args.paths], config)
        renderer = {
            "text": render_lint_text,
            "json": render_lint_json,
            "sarif": render_lint_sarif,
        }[args.format]
        report = renderer(result, config)
        if args.output:
            _write_report(args.output, report, "lint report")
        else:
            print(report, end="")
        if args.sarif_out:
            _write_report(
                args.sarif_out, render_lint_sarif(result, config), "sarif"
            )
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if result.errors:
        return 2
    return 1 if result.failing(config) else 0


def _write_static_dbs(path: str, dbs: list) -> None:
    out = Path(path)
    if len(dbs) == 1 and out.suffix == ".json":
        if out.parent != Path(""):
            out.parent.mkdir(parents=True, exist_ok=True)
        dbs[0].save(out)
        print(f"static sites: {out}", file=sys.stderr)
        return
    out.mkdir(parents=True, exist_ok=True)
    for db in dbs:
        target = out / f"{db.program}_static_sites.json"
        db.save(target)
        print(f"static sites: {target}", file=sys.stderr)


def _cmd_audit_sites(args: argparse.Namespace) -> int:
    # Same 0/1/2 contract as lint: any failure to audit is exit 2, so CI
    # can distinguish "drift found" (1) from "audit broken" (2).
    try:
        source_root = (
            Path(args.source_root) if args.source_root is not None else None
        )
        audits = []
        dbs = []
        if args.sites_db is not None:
            if args.programs is not None and len(args.programs) != 1:
                raise ValueError("--sites-db audits exactly one program")
            if args.programs:
                program = args.programs[0]
            else:
                program = load_predictor(args.sites_db).program
                if program not in PROGRAM_ORDER:
                    raise ValueError(
                        f"cannot infer a workload from predictor program "
                        f"{program!r}; pass --programs"
                    )
            with TRACER.span("audit.static", cat="static", program=program):
                db = build_static_db(program, source_root)
            dbs.append(db)
            with TRACER.span("audit.diff", cat="static", program=program):
                audits.append(audit_predictor_file(db, args.sites_db))
        else:
            for program in args.programs or PROGRAM_ORDER:
                with TRACER.span(
                    "audit.static", cat="static", program=program
                ):
                    db = build_static_db(program, source_root)
                dbs.append(db)
                store = _make_store(args)
                with TRACER.span(
                    "audit.trace", cat="static", program=program
                ):
                    trace = store.trace(program, args.dataset)
                with TRACER.span(
                    "audit.diff", cat="static", program=program
                ):
                    audits.append(audit_trace(
                        db, trace,
                        f"trace:{args.dataset}@scale={args.scale:g}",
                    ))
        if args.static_out:
            _write_static_dbs(args.static_out, dbs)
        if args.json:
            print(render_audit_json(audits), end="")
        else:
            limit = None if args.max_unexercised < 0 else args.max_unexercised
            print(render_audit_text(audits, max_unexercised=limit), end="")
    except (StaticAnalysisError, StaticDBFormatError, AuditError,
            DatabaseFormatError, TraceFormatError, HeapError, OSError,
            ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0 if all(audit.ok for audit in audits) else 1


def _table_worker(
    key: str, scale: float, cache_dir: Optional[str], use_cache: bool,
    streaming: bool = False,
) -> tuple:
    """Child-process body of ``table --jobs N``: render one table.

    Returns the rendered text plus a :meth:`Metrics.to_dict` snapshot —
    workload runs, cache hits, and this worker's peak RSS — so the
    parent can merge it; without the snapshot ``--stream``'s peak-RSS
    note would report the parent process only and span/cache counters
    would under-count (exactly the bug ``warm(jobs=N)`` fixed in its
    own worker).
    """
    metrics = Metrics()
    store = TraceStore(scale=scale, cache_dir=cache_dir, use_cache=use_cache,
                       streaming=streaming, metrics=metrics)
    compute, render = _TABLES[key]
    text = render(compute(store))
    record_peak_rss(metrics)
    return text, metrics.to_dict()


def _cmd_table(args: argparse.Namespace) -> int:
    which = list(_TABLES) if args.which == "all" else [args.which]
    for key in which:
        if key not in _TABLES:
            raise ValueError(f"no table {key!r} (have 1-9 or 'all')")
    store = _make_store(args)
    parallel = args.jobs > 1 and len(which) > 1
    if parallel and store.cache is None:
        # Without the disk cache there is nowhere for the warm step to
        # publish traces, so every worker would re-execute all five
        # workloads per table — N x the serial work for no speedup.
        print(
            "table: --jobs needs the persistent trace cache to share "
            "workload executions across workers; cache disabled, "
            "rendering serially with one in-process store",
            file=sys.stderr,
        )
        parallel = False
    if parallel:
        # Publish the traces once through the disk cache, then render the
        # tables in parallel workers (each loads from the cache).  Output
        # order stays deterministic regardless of completion order.
        store.warm(jobs=args.jobs)
        worker = partial(
            _table_worker,
            scale=args.scale,
            cache_dir=args.cache_dir,
            use_cache=not args.no_cache,
            streaming=args.stream,
        )
        with ProcessPoolExecutor(max_workers=args.jobs) as pool:
            for text, worker_metrics in pool.map(worker, which):
                METRICS.merge(worker_metrics)
                print(text)
                print()
    else:
        if args.jobs > 1 and len(which) == 1 and not args.stream:
            print(
                "table: --jobs on a single table parallelizes within the "
                "trace, which needs the streamed path; add --stream",
                file=sys.stderr,
            )
        for key in which:
            compute, render = _TABLES[key]
            with TRACER.span("table.render", cat="table", table=key):
                text = render(compute(store))
            print(text)
            print()
    if args.stream:
        _report_peak_rss()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via repro-alloc
    sys.exit(main())
