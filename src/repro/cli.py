"""Command-line interface.

Mirrors the paper's workflow as subcommands::

    repro-alloc trace gawk train -o gawk-train.json.gz
    repro-alloc profile gawk-train.json.gz -o gawk.sites
    repro-alloc predict gawk.sites gawk-test.json.gz
    repro-alloc simulate gawk-test.json.gz --sites gawk.sites
    repro-alloc quantiles gawk-test.json.gz
    repro-alloc sites gawk-test.json.gz --top 10
    repro-alloc warm --jobs 4
    repro-alloc table all
    repro-alloc stats --program gawk
    repro-alloc timeline --program gawk --allocator arena

``trace`` runs a workload and stores its allocation trace; ``profile``
trains a short-lived site database from a trace; ``predict`` scores a
database against a trace (Table 4's columns); ``simulate`` replays a
trace against an allocator; ``warm`` populates the persistent trace
cache (optionally in parallel); ``table`` regenerates the paper's
tables; ``stats`` and ``timeline`` replay one workload with the
telemetry recorder attached and report per-site mispredictions or the
heap time series (see :mod:`repro.obs`).
"""

from __future__ import annotations

import argparse
import json
import sys
from concurrent.futures import ProcessPoolExecutor
from functools import partial
from pathlib import Path
from typing import List, Optional

from repro.alloc.base import AllocatorError
from repro.analysis import TraceStore, simulate_arena, simulate_bsd, simulate_firstfit
from repro.analysis import report as report_mod
from repro.analysis.compare import diff_traces, render_diff
from repro.analysis.inspect import lifetime_report, sites_report
from repro.analysis.metrics import METRICS
from repro.analysis import tables as tables_mod
from repro.core.database import load_predictor, save_predictor
from repro.core.predictor import (
    DEFAULT_THRESHOLD,
    TRUE_PREDICTION_ROUNDING,
    evaluate,
    train_site_predictor,
)
from repro.core.sites import FULL_CHAIN
from repro.obs import (
    DEFAULT_SAMPLE_INTERVAL,
    Telemetry,
    export_timeline,
    render_stats,
    render_timeline,
    telemetry_summary,
)
from repro.obs.export import DEFAULT_TELEMETRY_DIR
from repro.runtime.heap import HeapError
from repro.runtime.tracefile import TraceFormatError, load_trace, save_trace
from repro.workloads.registry import PROGRAM_ORDER, run_workload

__all__ = ["main"]


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (OSError, ValueError, TraceFormatError, AllocatorError,
            HeapError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-alloc",
        description="Lifetime-predicting allocation (Barrett & Zorn, PLDI'93)",
    )
    sub = parser.add_subparsers(required=True, metavar="command")

    trace = sub.add_parser("trace", help="run a workload, store its trace")
    trace.add_argument("program", choices=PROGRAM_ORDER)
    trace.add_argument("dataset", help="dataset name (train/test/...)")
    trace.add_argument("-o", "--output", required=True,
                       help="trace file (.json or .json.gz)")
    trace.add_argument("--scale", type=float, default=1.0,
                       help="input scale factor (default 1.0)")
    trace.set_defaults(handler=_cmd_trace)

    profile = sub.add_parser(
        "profile", help="train a short-lived site database from a trace"
    )
    profile.add_argument("trace", help="trace file from `trace`")
    profile.add_argument("-o", "--output", required=True,
                         help="site-database file")
    profile.add_argument("--threshold", type=int, default=DEFAULT_THRESHOLD,
                         help="short-lived cutoff in bytes (default 32768)")
    profile.add_argument("--chain-length", type=int, default=0,
                         help="sub-chain length; 0 = full chain (default)")
    profile.add_argument("--rounding", type=int,
                         default=TRUE_PREDICTION_ROUNDING,
                         help="size rounding in bytes (default 4)")
    profile.set_defaults(handler=_cmd_profile)

    predict = sub.add_parser(
        "predict", help="score a site database against a trace"
    )
    predict.add_argument("sites", help="site-database file from `profile`")
    predict.add_argument("trace", help="trace file to score against")
    predict.set_defaults(handler=_cmd_predict)

    simulate = sub.add_parser(
        "simulate", help="replay a trace against an allocator"
    )
    simulate.add_argument("trace", help="trace file to replay")
    simulate.add_argument("--allocator", default="arena",
                          choices=["arena", "firstfit", "bsd"])
    simulate.add_argument("--sites", help="site database (arena allocator)")
    simulate.add_argument("--arenas", type=int, default=16,
                          help="number of arenas (default 16)")
    simulate.add_argument("--arena-size", type=int, default=4096,
                          help="bytes per arena (default 4096)")
    simulate.add_argument("--telemetry-out", metavar="DIR", default=None,
                          help="also record heap telemetry during the "
                               "replay and export the time series here")
    simulate.add_argument("--interval", type=int,
                          default=DEFAULT_SAMPLE_INTERVAL,
                          help="telemetry sample interval in allocations "
                               f"(default {DEFAULT_SAMPLE_INTERVAL})")
    simulate.set_defaults(handler=_cmd_simulate)

    quantiles = sub.add_parser(
        "quantiles", help="lifetime quartiles of a stored trace"
    )
    quantiles.add_argument("trace", help="trace file to analyze")
    quantiles.add_argument("--threshold", type=int, default=DEFAULT_THRESHOLD,
                           help="short-lived cutoff in bytes (default 32768)")
    quantiles.set_defaults(handler=_cmd_quantiles)

    sites = sub.add_parser(
        "sites", help="highest-volume allocation sites of a stored trace"
    )
    sites.add_argument("trace", help="trace file to analyze")
    sites.add_argument("--top", type=int, default=15,
                       help="how many sites to list (default 15)")
    sites.add_argument("--threshold", type=int, default=DEFAULT_THRESHOLD,
                       help="short-lived cutoff in bytes (default 32768)")
    sites.set_defaults(handler=_cmd_sites)

    diff = sub.add_parser(
        "diff", help="attribute the self-vs-true prediction gap"
    )
    diff.add_argument("train", help="training trace file")
    diff.add_argument("test", help="test trace file")
    diff.add_argument("--threshold", type=int, default=DEFAULT_THRESHOLD,
                      help="short-lived cutoff in bytes (default 32768)")
    diff.add_argument("--top", type=int, default=10,
                      help="unpredictable sites to list (default 10)")
    diff.set_defaults(handler=_cmd_diff)

    warm = sub.add_parser(
        "warm", help="populate the persistent trace cache"
    )
    _add_store_options(warm, jobs=True)
    warm.add_argument("-v", "--verbose", action="store_true",
                      help="print per-stage wall times and cache counters")
    warm.add_argument("--metrics-json", metavar="PATH", default=None,
                      help="write the session's pipeline metrics "
                           "(timings + counters) to PATH as JSON")
    warm.set_defaults(handler=_cmd_warm)

    table = sub.add_parser("table", help="regenerate the paper's tables")
    table.add_argument("which", help="table number 1-9, or 'all'")
    _add_store_options(table, jobs=True)
    table.set_defaults(handler=_cmd_table)

    stats = sub.add_parser(
        "stats", help="per-site misprediction accounting for one workload"
    )
    _add_telemetry_options(stats)
    stats.add_argument("--top", type=int, default=15,
                       help="how many sites to list (default 15)")
    stats.add_argument("--json", action="store_true",
                       help="print the machine-readable summary instead "
                            "of the table")
    stats.set_defaults(handler=_cmd_stats)

    timeline = sub.add_parser(
        "timeline", help="heap telemetry time series for one workload"
    )
    _add_telemetry_options(timeline)
    timeline.add_argument("--out-dir", metavar="DIR",
                          default=str(DEFAULT_TELEMETRY_DIR),
                          help="where to write the JSONL/CSV/JSON series "
                               f"(default {DEFAULT_TELEMETRY_DIR})")
    timeline.set_defaults(handler=_cmd_timeline)

    return parser


def _add_store_options(
    sub: argparse.ArgumentParser, jobs: bool = False
) -> None:
    """The trace-store flags every store-backed subcommand shares.

    ``warm``/``table`` fan work out across processes and also take
    ``--jobs``; ``stats``/``timeline`` replay a single execution and
    only need the scale and cache knobs.
    """
    sub.add_argument("--scale", type=float, default=1.0,
                     help="workload scale factor (default 1.0)")
    sub.add_argument("--cache-dir", default=None, metavar="DIR",
                     help="trace cache directory (default $REPRO_CACHE_DIR "
                          "or ~/.cache/repro-alloc)")
    sub.add_argument("--no-cache", action="store_true",
                     help="bypass the persistent trace cache")
    if jobs:
        sub.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="worker processes (default 1: serial)")


def _add_telemetry_options(sub: argparse.ArgumentParser) -> None:
    """The replay-selection flags shared by ``stats`` and ``timeline``."""
    sub.add_argument("--program", required=True, choices=PROGRAM_ORDER,
                     help="workload to replay")
    sub.add_argument("--dataset", default="test",
                     help="dataset to replay (default test)")
    sub.add_argument("--allocator", default="arena",
                     choices=["arena", "firstfit", "bsd"])
    sub.add_argument("--sites", default=None,
                     help="site database for the arena allocator (default: "
                          "train on the program's train dataset)")
    sub.add_argument("--interval", type=int,
                     default=DEFAULT_SAMPLE_INTERVAL,
                     help="sample interval in allocations "
                          f"(default {DEFAULT_SAMPLE_INTERVAL})")
    _add_store_options(sub)


def _cmd_trace(args: argparse.Namespace) -> int:
    trace = run_workload(args.program, args.dataset, scale=args.scale)
    save_trace(trace, args.output)
    live = trace.live_stats()
    print(
        f"{args.program}/{args.dataset}: {trace.total_objects} objects, "
        f"{trace.total_bytes} bytes, max live {live.max_live_bytes} bytes "
        f"-> {args.output}"
    )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    trace = load_trace(args.trace)
    chain_length = FULL_CHAIN if args.chain_length == 0 else args.chain_length
    predictor = train_site_predictor(
        trace,
        threshold=args.threshold,
        chain_length=chain_length,
        size_rounding=args.rounding,
    )
    save_predictor(predictor, args.output)
    print(
        f"{trace.program}/{trace.dataset}: {predictor.site_count} "
        f"short-lived sites (threshold {args.threshold}) -> {args.output}"
    )
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    predictor = load_predictor(args.sites)
    trace = load_trace(args.trace)
    result = evaluate(predictor, trace)
    print(f"program:            {trace.program}/{trace.dataset}")
    print(f"total bytes:        {result.total_bytes}")
    print(f"actual short-lived: {result.actual_pct:.1f}%")
    print(f"predicted:          {result.predicted_pct:.1f}%")
    print(f"error bytes:        {result.error_pct:.2f}%")
    print(f"sites used:         {result.sites_used}/{result.total_sites}")
    print(f"new heap refs:      {result.new_ref_pct:.1f}%")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    trace = load_trace(args.trace)
    telemetry = (
        Telemetry(interval=args.interval)
        if args.telemetry_out is not None else None
    )
    if args.allocator == "firstfit":
        result = simulate_firstfit(trace, telemetry=telemetry)
    elif args.allocator == "bsd":
        result = simulate_bsd(trace, telemetry=telemetry)
    else:
        if not args.sites:
            raise ValueError("the arena allocator needs --sites")
        predictor = load_predictor(args.sites)
        result = simulate_arena(
            trace, predictor,
            num_arenas=args.arenas, arena_size=args.arena_size,
            telemetry=telemetry,
        )
    print(f"allocator:      {result.allocator}")
    print(f"max heap size:  {result.max_heap_size} bytes")
    print(f"instr/alloc:    {result.cost.per_alloc:.1f}")
    print(f"instr/free:     {result.cost.per_free:.1f}")
    if result.allocator.startswith("arena"):
        print(f"arena allocs:   {result.arena_alloc_pct:.1f}%")
        print(f"arena bytes:    {result.arena_byte_pct:.1f}%")
    if telemetry is not None:
        # The export notice goes to stderr so the measurement summary on
        # stdout is byte-identical with and without telemetry.
        paths = export_timeline(telemetry, Path(args.telemetry_out))
        for path in paths.values():
            print(f"telemetry: {path}", file=sys.stderr)
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    diff = diff_traces(
        load_trace(args.train), load_trace(args.test),
        threshold=args.threshold,
    )
    print(render_diff(diff, top=args.top))
    return 0


def _cmd_quantiles(args: argparse.Namespace) -> int:
    print(lifetime_report(load_trace(args.trace), threshold=args.threshold))
    return 0


def _cmd_sites(args: argparse.Namespace) -> int:
    print(sites_report(load_trace(args.trace), top=args.top,
                       threshold=args.threshold))
    return 0


_TABLES = {
    "1": (tables_mod.table1, report_mod.render_table1),
    "2": (tables_mod.table2, report_mod.render_table2),
    "3": (tables_mod.table3, report_mod.render_table3),
    "4": (tables_mod.table4, report_mod.render_table4),
    "5": (tables_mod.table5, report_mod.render_table5),
    "6": (tables_mod.table6, report_mod.render_table6),
    "7": (tables_mod.table7, report_mod.render_table7),
    "8": (tables_mod.table8, report_mod.render_table8),
    "9": (tables_mod.table9, report_mod.render_table9),
}


def _make_store(args: argparse.Namespace) -> TraceStore:
    return TraceStore(
        scale=args.scale,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
    )


def _cmd_warm(args: argparse.Namespace) -> int:
    store = _make_store(args)
    results = store.warm(jobs=args.jobs)
    for result in results:
        label = f"{result.program}/{result.dataset}"
        print(f"{label:<18} {result.source:<6} {result.seconds:6.2f}s")
    total = METRICS.timing("warm").seconds
    by_source = {
        source: sum(1 for r in results if r.source == source)
        for source in ("memory", "disk", "run")
    }
    where = store.cache.directory if store.cache is not None else "(no cache)"
    print(
        f"warmed {len(results)} executions in {total:.2f}s "
        f"({by_source['memory']} memory, {by_source['disk']} disk, "
        f"{by_source['run']} run) -> {where}"
    )
    if args.verbose:
        print()
        print(METRICS.report("pipeline metrics:"))
        print()
        print(METRICS.to_json())
    if args.metrics_json:
        path = Path(args.metrics_json)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(METRICS.to_json() + "\n", encoding="utf-8")
        print(f"metrics -> {path}", file=sys.stderr)
    return 0


def _replay_with_telemetry(args: argparse.Namespace) -> Telemetry:
    """Shared body of ``stats`` and ``timeline``: one instrumented replay.

    The trace comes through the same :class:`TraceStore` the tables use
    (so warmed caches are reused); the arena predictor defaults to true
    prediction — trained on the program's ``train`` execution — unless a
    saved site database is supplied.
    """
    store = _make_store(args)
    trace = store.trace(args.program, args.dataset)
    telemetry = Telemetry(interval=args.interval)
    if args.allocator == "firstfit":
        simulate_firstfit(trace, telemetry=telemetry)
    elif args.allocator == "bsd":
        simulate_bsd(trace, telemetry=telemetry)
    else:
        if args.sites:
            predictor = load_predictor(args.sites)
        else:
            predictor = store.predictor(args.program)
        simulate_arena(trace, predictor, telemetry=telemetry)
    if not telemetry.samples:
        raise ValueError(
            f"telemetry recorded zero samples for "
            f"{args.program}/{args.dataset} — empty trace?"
        )
    return telemetry


def _cmd_stats(args: argparse.Namespace) -> int:
    telemetry = _replay_with_telemetry(args)
    if args.json:
        print(json.dumps(telemetry_summary(telemetry, top=args.top),
                         indent=2, sort_keys=True))
    else:
        print(render_stats(telemetry, top=args.top))
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    telemetry = _replay_with_telemetry(args)
    print(render_timeline(telemetry))
    paths = export_timeline(telemetry, Path(args.out_dir))
    for kind in sorted(paths):
        print(f"{kind:<8} -> {paths[kind]}")
    return 0


def _table_worker(
    key: str, scale: float, cache_dir: Optional[str], use_cache: bool
) -> str:
    """Child-process body of ``table --jobs N``: render one table."""
    store = TraceStore(scale=scale, cache_dir=cache_dir, use_cache=use_cache)
    compute, render = _TABLES[key]
    return render(compute(store))


def _cmd_table(args: argparse.Namespace) -> int:
    which = list(_TABLES) if args.which == "all" else [args.which]
    for key in which:
        if key not in _TABLES:
            raise ValueError(f"no table {key!r} (have 1-9 or 'all')")
    store = _make_store(args)
    if args.jobs > 1 and len(which) > 1:
        # Publish the traces once through the disk cache, then render the
        # tables in parallel workers (each loads from the cache).  Output
        # order stays deterministic regardless of completion order.
        if store.cache is not None:
            store.warm(jobs=args.jobs)
        worker = partial(
            _table_worker,
            scale=args.scale,
            cache_dir=args.cache_dir,
            use_cache=not args.no_cache,
        )
        with ProcessPoolExecutor(max_workers=args.jobs) as pool:
            for text in pool.map(worker, which):
                print(text)
                print()
    else:
        for key in which:
            compute, render = _TABLES[key]
            print(render(compute(store)))
            print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via repro-alloc
    sys.exit(main())
