"""Deterministic reporters for lint findings and site audits.

All three lint formats (text, JSON, SARIF 2.1.0) and both audit formats
(text, JSON) are pure functions of their inputs: no timestamps, no
absolute paths, sorted keys and entries throughout — so two runs over
the same tree produce byte-identical reports, which both the CI gates
and the determinism tests rely on.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.static.audit import SiteAudit
from repro.static.lint import (
    DEFAULT_SEVERITIES,
    RULES,
    LintConfig,
    LintResult,
)

__all__ = [
    "render_lint_text",
    "render_lint_json",
    "render_lint_sarif",
    "render_audit_text",
    "render_audit_json",
    "SARIF_VERSION",
]

SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: alloclint severity -> SARIF result level.
_SARIF_LEVELS = {"info": "note", "warning": "warning", "error": "error"}


def _dumps(payload: object) -> str:
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


# ---------------------------------------------------------------------------
# lint


def render_lint_text(result: LintResult, config: LintConfig) -> str:
    lines: List[str] = []
    for finding in result.findings:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col + 1}: "
            f"{finding.rule} [{finding.severity}] {finding.message}"
        )
    for error in result.errors:
        lines.append(f"error: {error}")
    failing = len(result.failing(config))
    lines.append(
        f"alloclint: {result.files} files, {len(result.findings)} findings "
        f"({failing} failing), {result.suppressed} suppressed"
        + (f", {len(result.errors)} errors" if result.errors else "")
    )
    return "\n".join(lines) + "\n"


def render_lint_json(result: LintResult, config: LintConfig) -> str:
    return _dumps(result.to_dict(config))


def render_lint_sarif(result: LintResult, config: LintConfig) -> str:
    rules = [
        {
            "id": rule,
            "shortDescription": {"text": RULES[rule]},
            "defaultConfiguration": {
                "level": _SARIF_LEVELS[
                    DEFAULT_SEVERITIES.get(rule, "warning")
                ]
            },
        }
        for rule in sorted(RULES)
    ]
    results = [
        {
            "ruleId": finding.rule,
            "level": _SARIF_LEVELS[finding.severity],
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        for finding in result.findings
    ]
    for error in result.errors:
        results.append({
            "ruleId": "E000",
            "level": "error",
            "message": {"text": error},
        })
    payload = {
        "$schema": _SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "alloclint",
                        "informationUri": (
                            "https://example.invalid/repro-alloc/alloclint"
                        ),
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return _dumps(payload)


# ---------------------------------------------------------------------------
# audit


def _chain_str(chain: Sequence[str]) -> str:
    return " > ".join(chain)


def render_audit_text(
    audits: Sequence[SiteAudit],
    max_unexercised: Optional[int] = None,
) -> str:
    lines: List[str] = []
    for audit in audits:
        static_extra = " (truncated)" if audit.truncated else ""
        lines.append(
            f"{audit.program} [{audit.source}]: "
            f"{audit.static_sites} static sites{static_extra} over "
            f"{audit.static_contexts} contexts, "
            f"{audit.dynamic_sites} dynamic sites"
        )
        for entry in audit.dead:
            objects = entry.get("objects")
            count = "" if objects is None else f" ({objects} objects)"
            lines.append(
                f"  DEAD    {_chain_str(entry['chain'])} "
                f"size={entry['size']}{count}"
            )
        shown = audit.unexercised
        if max_unexercised is not None:
            shown = shown[:max_unexercised]
        for entry in shown:
            size = entry["size"]
            size_str = "*" if size is None else str(size)
            lines.append(
                f"  unexercised  {_chain_str(entry['chain'])} "
                f"size={size_str}"
            )
        hidden = len(audit.unexercised) - len(shown)
        if hidden:
            lines.append(f"  ... +{hidden} more unexercised")
        coll = audit.dynamic_collisions
        if coll:
            lines.append(
                f"  cce: {coll['colliding_chains']}/{coll['chains']} dynamic "
                f"chains collide ({audit.static_collision_groups} static "
                f"groups, {audit.unverified_collisions} unverified)"
            )
        lines.append(
            f"  result: {'ok' if audit.ok else 'DRIFT'} "
            f"({len(audit.dead)} dead, "
            f"{len(audit.unexercised)} unexercised)"
        )
    drifted = sum(1 for audit in audits if not audit.ok)
    lines.append(
        f"audit-sites: {len(audits)} audits, {drifted} with drift"
    )
    return "\n".join(lines) + "\n"


def render_audit_json(audits: Sequence[SiteAudit]) -> str:
    payload: Dict[str, object] = {
        "tool": "audit-sites",
        "audits": [audit.to_dict() for audit in audits],
        "drift": sum(1 for audit in audits if not audit.ok),
    }
    return _dumps(payload)
