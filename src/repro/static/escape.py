"""Flow-insensitive escape analysis: lifetime classes without a profile.

The trained predictors of :mod:`repro.core.predictor` need a profiling
run per workload before they pay off.  This module derives a *zero
profile* predictor from source alone: every allocation site of the
static site space (:mod:`repro.static.sitedb`) is classified as

* ``"short"`` — the object is provably freed, or provably dead, within
  its allocating region (possibly after being returned through wrappers
  to a caller that frees it);
* ``"escaping"`` — the object is stored into a longer-lived structure,
  captured by a closure, reachable from a global, or returned past the
  chain root;
* ``"unknown"`` — some flow the analysis cannot follow (dynamic
  dispatch, untracked containers, unresolved calls).

Only ``"short"`` sites are ever predicted short-lived; ``"escaping"``
and ``"unknown"`` are both conservative "no" answers, which is the
soundness stance the evaluation gates on.

The analysis runs in three layers:

1. **Per-region atoms.**  Each *region* — a ``def`` together with the
   ``heap.frame`` blocks nested in it, which share its local namespace —
   gets a name→roots alias map from the bindings
   :mod:`repro.static.astwalk` recorded, and every root (allocation,
   call result, parameter) accumulates *atoms* describing what the
   region does with the value: ``free``, ``store``, ``unk``, ``ret``.
   Argument flows resolve through the call graph's name resolution into
   callee *parameter summaries*, so a value passed to a callee that
   frees it picks up ``free``, not ``unk``; a callee that returns its
   argument aliases the flow back onto the caller's call result.  The
   summaries are computed as one monotone fixpoint over all regions.

2. **Context lift.**  The classifications must live in the *projected
   chain* space, so an :class:`_EscapeCollector` rides along with the
   call-graph projection (:class:`repro.static.callgraph._Projector`
   hooks) and records, per ``(caller_ctx, ctx)`` edge and folded size,
   the expanded atom set of every allocation — with ``ret`` atoms
   resolved against a *carry* describing where a returned value lands:
   ``("up", p)`` for values leaving the context ``p`` chain levels up,
   or the calling region's own usage atoms for untraced wrappers.

3. **Chain classification.**  For each enumerated static site the
   ``("up", p)`` atoms are resolved against the concrete chain using the
   recorded result-usage table, yielding the final class.

The emitted :class:`StaticEscapeDB` shares the trained DBs' key space
(cycle-pruned chain + folded size, wildcard ``None`` matching any size)
and wraps into a :class:`repro.core.predictor.StaticEscapePredictor`
that plugs unmodified into simulation, tables, and benchmarks.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.predictor import DEFAULT_THRESHOLD, StaticEscapePredictor
from repro.runtime.stackcap import CAPTURE_DEPTH
from repro.static.astwalk import AllocSite, CallSite, FuncUnit
from repro.static.callgraph import (
    _build_with_projector,
    _Projector,
    _Scope,
    _NOOP_METHODS,
)
from repro.static.sitedb import DEFAULT_MAX_SITES, _size_sort_key

__all__ = [
    "CLASS_SHORT",
    "CLASS_ESCAPING",
    "CLASS_UNKNOWN",
    "StaticEscapeDB",
    "build_escape_db",
    "ESCAPE_FORMAT_NAME",
    "ESCAPE_FORMAT_VERSION",
]

CLASS_SHORT = "short"
CLASS_ESCAPING = "escaping"
CLASS_UNKNOWN = "unknown"

ESCAPE_FORMAT_NAME = "repro-static-escape"
ESCAPE_FORMAT_VERSION = 1

#: Methods that store their argument into the receiver — the argument's
#: lifetime becomes the container's, so it escapes its region.
_STORING_METHODS = frozenset({
    "append", "add", "insert", "extend", "setdefault", "update", "push",
})

#: Bare-name builtins that retain a reference to an argument.
_STORING_BUILTINS = frozenset({"setattr", "vars", "globals"})


# ---------------------------------------------------------------------------
# layer 1: per-region alias maps and atom summaries


@dataclass
class _Region:
    """One analysis namespace: a def plus its nested frame blocks."""

    region_id: str
    units: List[FuncUnit] = field(default_factory=list)
    #: merged (name, ref) bindings of every member unit
    assigns: List[Tuple[str, tuple]] = field(default_factory=list)
    #: merged (ref, kind, aux) flows of every member unit
    flows: List[tuple] = field(default_factory=list)
    #: merged (member-unit, call-site) pairs
    calls: List[Tuple[FuncUnit, CallSite]] = field(default_factory=list)
    #: (line, col) -> (member-unit, call-site) for argument-flow lookup
    call_at: Dict[Tuple[int, int], Tuple[FuncUnit, CallSite]] = field(
        default_factory=dict
    )
    #: non-frame child units (closures) of any member
    closures: List[str] = field(default_factory=list)
    #: every root this region tracks
    roots: List[tuple] = field(default_factory=list)
    #: name -> set of roots it may alias
    aliases: Dict[str, Set[tuple]] = field(default_factory=dict)


class _RegionAnalysis:
    """Layers 1 of the escape analysis: region summaries over one scope."""

    def __init__(self, scope: _Scope):
        self.scope = scope
        self._parent: Dict[str, str] = {}
        for unit in scope.units.values():
            for child in unit.children:
                self._parent[child] = unit.unit_id
        self._region_of: Dict[str, str] = {}
        self.regions: Dict[str, _Region] = {}
        for unit_id in sorted(scope.units):
            self._region_of[unit_id] = self._find_region_root(unit_id)
        for unit_id in sorted(scope.units):
            region = self.regions.setdefault(
                self._region_of[unit_id], _Region(self._region_of[unit_id])
            )
            unit = scope.units[unit_id]
            region.units.append(unit)
            region.assigns.extend(unit.assigns)
            region.flows.extend(unit.flows)
            for call in unit.calls:
                region.calls.append((unit, call))
                if call.col >= 0:
                    region.call_at[(call.line, call.col)] = (unit, call)
            for child in unit.children:
                child_unit = scope.units.get(child)
                if child_unit is not None and not child_unit.is_frame:
                    region.closures.append(child)
        for region in self.regions.values():
            self._build_aliases(region)
        #: (region_id, root) -> atom set; the global fixpoint state.
        self._atoms: Dict[Tuple[str, tuple], FrozenSet] = {}
        self._run_fixpoint()

    # -- structure -----------------------------------------------------

    def _find_region_root(self, unit_id: str) -> str:
        seen = set()
        while (
            unit_id in self.scope.units
            and self.scope.units[unit_id].is_frame
            and unit_id in self._parent
            and unit_id not in seen
        ):
            seen.add(unit_id)
            unit_id = self._parent[unit_id]
        return unit_id

    def frame_depth(self, unit_id: str) -> int:
        """How many frame levels separate ``unit_id`` from its def."""
        depth = 0
        seen = set()
        while (
            unit_id in self.scope.units
            and self.scope.units[unit_id].is_frame
            and unit_id in self._parent
            and unit_id not in seen
        ):
            seen.add(unit_id)
            depth += 1
            unit_id = self._parent[unit_id]
        return depth

    def region_of(self, unit_id: str) -> str:
        return self._region_of.get(unit_id, unit_id)

    def _build_aliases(self, region: _Region) -> None:
        root_unit = self.scope.units.get(region.region_id)
        roots: List[tuple] = []
        if root_unit is not None:
            for param in root_unit.params:
                roots.append(("param", param))
        for unit in region.units:
            for alloc in unit.allocs:
                roots.append(("alloc", (alloc.line, alloc.col)))
            for call in unit.calls:
                if call.col >= 0:
                    roots.append(("call", (call.line, call.col)))
        region.roots = roots
        aliases: Dict[str, Set[tuple]] = {}
        if root_unit is not None:
            for param in root_unit.params:
                aliases.setdefault(param, set()).add(("param", param))
        edges: List[Tuple[str, str]] = []
        for name, ref in region.assigns:
            if ref[0] == "name":
                edges.append((name, ref[1]))
            else:
                aliases.setdefault(name, set()).add(ref)
        changed = True
        while changed:
            changed = False
            for dst, src in edges:
                srcs = aliases.get(src)
                if not srcs:
                    continue
                cur = aliases.setdefault(dst, set())
                if not srcs <= cur:
                    cur.update(srcs)
                    changed = True
        region.aliases = aliases

    # -- fixpoint ------------------------------------------------------

    def _run_fixpoint(self) -> None:
        changed = True
        while changed:
            changed = False
            fresh: Dict[Tuple[str, tuple], FrozenSet] = {}
            for region_id in sorted(self.regions):
                region = self.regions[region_id]
                for root in region.roots:
                    atoms = frozenset(self._compute_root(region, root))
                    key = (region_id, root)
                    fresh[key] = atoms
                    if atoms != self._atoms.get(key, frozenset()):
                        changed = True
            self._atoms = fresh

    def _names_of(self, region: _Region, root: tuple) -> Set[str]:
        return {
            name for name, roots in region.aliases.items() if root in roots
        }

    def _compute_root(self, region: _Region, root: tuple) -> Set[str]:
        names = self._names_of(region, root)
        out: Set = set()
        for ref, kind, aux in region.flows:
            if ref == root or (ref[0] == "name" and ref[1] in names):
                if kind == "arg":
                    out |= self._resolve_arg(region, aux)
                elif kind == "argf":
                    out |= self._field_arg_atoms(region, aux)
                elif kind == "store":
                    out.add(self._store_atom(region, aux))
                elif kind in ("free", "unk", "ret"):
                    out.add(kind)
        for unit, call in region.calls:
            if call.kind == "attr" and call.base in names:
                out |= self._receiver_atoms(region, unit, call)
        for child_id in region.closures:
            child = self.scope.units.get(child_id)
            if child is not None and names & set(child.escapes):
                out.add("store")
        return out

    def _opaque_base(
        self, region: _Region, unit: FuncUnit, call: CallSite
    ) -> bool:
        """True when the receiver of an attribute call is untrackable.

        ``self.heap.free(obj)`` has no simple-name base, and a plain-name
        base that is neither a module import, a scoped class, ``self``/
        ``cls``, nor a locally tracked value names an object the analysis
        never sees (typically the traced heap handle).  Resolving such
        calls through the bare-name fallback can land on a same-named
        workload method and build a summary cycle, so the caller should
        prefer the method-name heuristics instead.
        """
        if call.kind != "attr":
            return False
        base = call.base
        if base is None:
            return True
        if base in ("self", "cls", "super"):
            return False
        module = self.scope.unit_module.get(unit.unit_id)
        if module is not None and base in module.import_module:
            return False
        if base in self.scope.classes:
            return False
        if base in region.aliases:
            return False
        return True

    @staticmethod
    def _api_heuristic(name: str) -> Optional[Set[str]]:
        """Atoms for a method call on an opaque receiver, by name.

        Returns ``None`` when the name carries no heap-API meaning and
        normal call-graph resolution should be trusted instead.
        """
        if "free" in name.lower():
            return {"free"}
        if name in _STORING_METHODS:
            return {"store"}
        if name in _NOOP_METHODS:
            return set()
        return None

    def _store_atom(self, region: _Region, aux) -> str:
        """The atom for a ``store`` flow, given the receiver's name.

        A value stored into a field of ``self`` inside ``__init__``
        does not escape anywhere yet — its lifetime becomes the freshly
        constructed wrapper's, which the caller tracks as this
        constructor call's result.  That is exactly the alias-through-
        return relation, so it contributes ``ret``.  Every other store
        (into another object, a container, a global) is an escape.
        """
        if aux is None:
            return "store"
        root_unit = self.scope.units.get(region.region_id)
        if root_unit is None or root_unit.name != "__init__":
            return "store"
        if not root_unit.params:
            return "store"
        if ("param", root_unit.params[0]) in region.aliases.get(aux, ()):
            return "ret"
        return "store"

    @staticmethod
    def _field_arg_atoms_filter(atoms: Set[str]) -> Set[str]:
        """Project callee atoms for a field argument onto its owner.

        Under the one-level field abstraction an object and the handles
        stored in its fields form one lifetime group: a callee freeing
        ``x.field`` frees part of ``x``'s group, and one storing it
        escapes the group.  A callee *returning* the field hands out a
        reference the owner summary cannot follow — unknown.
        """
        out: Set[str] = set()
        for atom in atoms:
            if atom == "ret":
                out.add("unk")
            else:
                out.add(atom)
        return out

    def _field_arg_atoms(self, region: _Region, aux) -> Set[str]:
        return self._field_arg_atoms_filter(self._resolve_arg(region, aux))

    def _resolve_arg(self, region: _Region, aux) -> Set[str]:
        (pos, slot) = aux
        entry = region.call_at.get(pos)
        if entry is None:
            return {"unk"}
        unit, call = entry
        if self._opaque_base(region, unit, call):
            hint = self._api_heuristic(call.name)
            if hint is not None:
                return hint
        targets, fell_back = self.scope.resolve(unit, call)
        if fell_back:
            return {"unk"}
        if not targets:
            lowered = call.name.lower()
            if "free" in lowered:
                return {"free"}
            if call.name in _STORING_METHODS or call.name in _STORING_BUILTINS:
                return {"store"}
            return set()
        out: Set[str] = set()
        for target_id in targets:
            target = self.scope.units.get(target_id)
            if target is None:
                continue
            params = list(target.params)
            if (
                target.cls is not None
                and params
                and params[0] in ("self", "cls")
            ):
                params = params[1:]
            if isinstance(slot, int):
                pname = params[slot] if slot < len(params) else None
            elif isinstance(slot, str) and slot in params:
                pname = slot
            else:
                pname = None
            if pname is None:
                out.add("unk")
                continue
            summary = self._atoms.get(
                (self.region_of(target_id), ("param", pname)), frozenset()
            )
            for atom in summary:
                if atom == "ret":
                    # Callee returns its argument: the value re-emerges
                    # as this call's result; alias the result's atoms in.
                    out |= self._atoms.get(
                        (region.region_id, ("call", pos)), frozenset()
                    )
                else:
                    out.add(atom)
        return out

    def _receiver_atoms(
        self, region: _Region, unit: FuncUnit, call: CallSite
    ) -> Set[str]:
        if call.name == "free":
            return {"free"}
        targets, fell_back = self.scope.resolve(unit, call)
        if fell_back:
            return {"unk"}
        if not targets:
            # Builtin container/str methods never retain the receiver
            # beyond itself; appending *to* obj keeps obj local.
            if call.name in _NOOP_METHODS or call.name in _STORING_METHODS:
                return set()
            return set()
        out: Set[str] = set()
        for target_id in targets:
            target = self.scope.units.get(target_id)
            if target is None:
                continue
            if (
                target.cls is not None
                and target.params
                and target.params[0] in ("self", "cls")
            ):
                summary = self._atoms.get(
                    (self.region_of(target_id), ("param", target.params[0])),
                    frozenset(),
                )
                for atom in summary:
                    if atom == "ret" and call.col >= 0:
                        out |= self._atoms.get(
                            (
                                region.region_id,
                                ("call", (call.line, call.col)),
                            ),
                            frozenset(),
                        )
                    else:
                        out.add(atom)
            else:
                out.add("unk")
        return out

    # -- queries used by the collector ---------------------------------

    def alloc_atoms(self, unit_id: str, alloc: AllocSite) -> FrozenSet:
        return self._atoms.get(
            (self.region_of(unit_id), ("alloc", (alloc.line, alloc.col))),
            frozenset(),
        )

    def result_atoms(self, unit_id: str, call: CallSite) -> FrozenSet:
        if call.col < 0:
            return frozenset()
        return self._atoms.get(
            (self.region_of(unit_id), ("call", (call.line, call.col))),
            frozenset(),
        )


# ---------------------------------------------------------------------------
# layer 2: context lift via projection hooks


def _expand(atoms, carry: FrozenSet) -> Set:
    """Replace symbolic ``ret`` atoms with the closure's carry."""
    out: Set = set()
    for atom in atoms:
        if atom == "ret":
            out |= carry
        else:
            out.add(atom)
    return out


class _EscapeCollector(_Projector):
    """A projector that also records escape atoms along the closure.

    The *carry* threaded through the closure is a frozenset describing
    what happens to a value the current unit returns: ``("up", p)``
    when the return leaves the context ``p`` chain levels up (resolved
    later against the concrete chain), or concrete atoms when an
    untraced wrapper's return dissolves into its caller's usage.
    """

    def __init__(self, scope: _Scope, graph):
        super().__init__(scope, graph)
        self.analysis = _RegionAnalysis(scope)
        #: (caller_ctx, ctx) -> {folded size -> atom set}
        self.alloc_info: Dict[Tuple[str, str], Dict[Optional[int], Set]] = {}
        #: (ctx, callee ctx) -> atoms the calling context applies to the
        #: callee's return value.
        self.result_info: Dict[Tuple[str, str], Set] = {}

    def _root_carry(self, unit: FuncUnit) -> FrozenSet:
        return frozenset(
            {("up", 1 + self.analysis.frame_depth(unit.unit_id))}
        )

    def _carry_into(
        self, carry, unit: FuncUnit, call: CallSite, fell_back: bool
    ) -> FrozenSet:
        if fell_back or call.kind == "dynamic":
            return frozenset({"unk"})
        atoms = self.analysis.result_atoms(unit.unit_id, call)
        if not atoms:
            # The wrapper's result is discarded by this caller: a fresh
            # object returned here leaks (never freed), and the analysis
            # cannot tell leak from lost track — unknown either way.
            return frozenset({"unk"})
        return frozenset(_expand(atoms, carry))

    def _on_alloc(self, caller_ctx, ctx, unit, alloc, size, carry) -> None:
        atoms = _expand(self.analysis.alloc_atoms(unit.unit_id, alloc), carry)
        if not atoms:
            atoms = {"dead"}
        self.alloc_info.setdefault((caller_ctx, ctx), {}).setdefault(
            size, set()
        ).update(atoms)

    def _on_traced_call(
        self, ctx, unit, call, target, fell_back, carry
    ) -> None:
        if call.kind == "frame":
            return  # frame pushes return no value
        if fell_back or call.kind == "dynamic":
            atoms: Set = {"unk"}
        else:
            raw = self.analysis.result_atoms(unit.unit_id, call)
            atoms = _expand(raw, carry) if raw else {"unk"}
        self.result_info.setdefault((ctx, target.name), set()).update(atoms)


# ---------------------------------------------------------------------------
# layer 3: chain classification


def _classify_chain(
    chain: Tuple[str, ...],
    size: Optional[int],
    alloc_info,
    result_info,
) -> str:
    caller = chain[-2] if len(chain) > 1 else ""
    seed = alloc_info.get((caller, chain[-1]), {}).get(size)
    if seed is None:
        return CLASS_UNKNOWN
    final: Set = set()
    work: List[Tuple[int, FrozenSet]] = [(len(chain) - 1, frozenset(seed))]
    seen: Set = set()
    while work:
        level, atoms = work.pop()
        if (level, atoms) in seen:
            continue
        seen.add((level, atoms))
        for atom in atoms:
            if isinstance(atom, tuple) and atom[0] == "up":
                landing = level - atom[1]
                if landing < 0:
                    # Returned past the chain root: held by the harness
                    # for the rest of the run.
                    final.add("store")
                else:
                    usage = result_info.get(
                        (chain[landing], chain[landing + 1])
                    )
                    work.append(
                        (
                            landing,
                            frozenset(usage) if usage else frozenset({"unk"}),
                        )
                    )
            else:
                final.add(atom)
    if "unk" in final:
        return CLASS_UNKNOWN
    if "store" in final:
        return CLASS_ESCAPING
    return CLASS_SHORT


# ---------------------------------------------------------------------------
# the emitted database


@dataclass
class StaticEscapeDB:
    """Escape classifications over the static site space of one program."""

    program: str
    files: Tuple[str, ...]
    capture_depth: int
    threshold: int
    truncated: bool
    #: (cycle-pruned chain, folded size or None-wildcard) -> class
    sites: Dict[Tuple[Tuple[str, ...], Optional[int]], str] = field(
        default_factory=dict
    )

    def class_counts(self) -> Dict[str, int]:
        counts = {CLASS_SHORT: 0, CLASS_ESCAPING: 0, CLASS_UNKNOWN: 0}
        for cls in self.sites.values():
            counts[cls] += 1
        return counts

    def to_predictor(
        self, threshold: Optional[int] = None
    ) -> StaticEscapePredictor:
        return StaticEscapePredictor(
            classes=dict(self.sites),
            threshold=self.threshold if threshold is None else threshold,
            program=self.program,
        )

    # -- serialization (deterministic, golden-file friendly) ----------

    def to_dict(self) -> dict:
        ordered = sorted(
            self.sites.items(),
            key=lambda item: (item[0][0], _size_sort_key(item[0][1])),
        )
        return {
            "format": ESCAPE_FORMAT_NAME,
            "version": ESCAPE_FORMAT_VERSION,
            "program": self.program,
            "capture_depth": self.capture_depth,
            "threshold": self.threshold,
            "files": list(self.files),
            "truncated": self.truncated,
            "summary": self.class_counts(),
            "sites": [
                {
                    "chain": list(chain),
                    "size": size,
                    "class": cls,
                }
                for (chain, size), cls in ordered
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def save(self, path) -> None:
        Path(path).write_text(self.to_json(), encoding="utf-8")

    @classmethod
    def from_dict(cls, data: dict) -> "StaticEscapeDB":
        if (
            not isinstance(data, dict)
            or data.get("format") != ESCAPE_FORMAT_NAME
        ):
            raise ValueError(
                f"not a {ESCAPE_FORMAT_NAME} database (format="
                f"{data.get('format') if isinstance(data, dict) else data!r})"
            )
        sites: Dict[Tuple[Tuple[str, ...], Optional[int]], str] = {}
        for entry in data.get("sites", ()):
            sites[(tuple(entry["chain"]), entry["size"])] = entry["class"]
        return cls(
            program=data.get("program", ""),
            files=tuple(data.get("files", ())),
            capture_depth=int(data.get("capture_depth", CAPTURE_DEPTH)),
            threshold=int(data.get("threshold", DEFAULT_THRESHOLD)),
            truncated=bool(data.get("truncated", False)),
            sites=sites,
        )

    @classmethod
    def load(cls, path) -> "StaticEscapeDB":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))


def build_escape_db(
    program: str,
    source_root: Optional[Path] = None,
    max_sites: int = DEFAULT_MAX_SITES,
    threshold: int = DEFAULT_THRESHOLD,
) -> StaticEscapeDB:
    """Run the escape analysis over one program's sources.

    The site space and size folding come from the same projection pass
    that records the escape atoms, so the emitted keys match
    :func:`repro.static.sitedb.build_static_db` exactly.
    """
    graph, scope, projector = _build_with_projector(
        program, source_root, _EscapeCollector
    )
    sites, truncated = graph.enumerate_sites(max_sites=max_sites)
    classified: Dict[Tuple[Tuple[str, ...], Optional[int]], str] = {}
    for chain, size in sites:
        classified[(chain, size)] = _classify_chain(
            chain, size, projector.alloc_info, projector.result_info
        )
    return StaticEscapeDB(
        program=program,
        files=graph.files,
        capture_depth=CAPTURE_DEPTH,
        threshold=threshold,
        truncated=truncated,
        sites=classified,
    )
