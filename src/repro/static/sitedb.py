"""The static allocation-site database.

Serializes the result of :mod:`repro.static.callgraph` into the same
``(chain, size-class)`` key space the dynamic pipeline uses
(:mod:`repro.core.sites`, :mod:`repro.core.database`): a chain is a list
of traced function names rooted at ``"main"``, a size is an exact byte
count — or ``null``, the static wildcard for sizes that depend on
runtime values.  The database carries three layers:

* the **projected graph** (edges + per-edge alloc sizes), which is what
  :meth:`StaticSiteDB.covers` consults — exact even when enumeration is
  truncated;
* the **enumerated sites**, bounded simple-path chains for reporting and
  the golden-file tests;
* the **static CCE collision groups** — chains whose
  :func:`repro.core.cce.encrypt_chain` keys coincide, the compile-time
  analysis §5.1 of the paper says id assignment should perform.

The JSON is deterministic: no timestamps, sorted keys, sorted entries —
two runs over the same tree are byte-identical, which the CI audit job
and golden tests rely on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.cce import KEY_BITS, encrypt_chain
from repro.core.sites import prune_recursive_cycles
from repro.runtime.stackcap import CAPTURE_DEPTH
from repro.static.callgraph import (
    ProgramGraph,
    ROOT_CONTEXT,
    SIZE_WILDCARD,
    build_program_graph,
)

__all__ = [
    "StaticSiteDB",
    "StaticDBFormatError",
    "build_static_db",
    "FORMAT_NAME",
    "FORMAT_VERSION",
]

FORMAT_NAME = "repro-static-sites"
FORMAT_VERSION = 1

#: Default cap on enumerated sites; the five workloads stay well under.
DEFAULT_MAX_SITES = 50_000


class StaticDBFormatError(ValueError):
    """Raised for malformed static-site database files."""


def _size_sort_key(size: Optional[int]) -> Tuple[int, int]:
    return (0, 0) if size is None else (1, size)


@dataclass
class StaticSiteDB:
    """Static allocation sites + feasibility graph for one program."""

    program: str
    capture_depth: int
    root: str
    files: Tuple[str, ...]
    edges: Dict[str, Set[str]]
    alloc_sizes: Dict[Tuple[str, str], Set[Optional[int]]]
    sites: List[Tuple[Tuple[str, ...], Optional[int]]]
    truncated: bool
    unresolved_calls: int = 0
    collisions: List[Dict[str, object]] = field(default_factory=list)

    # -- queries -------------------------------------------------------

    def contexts(self) -> List[str]:
        names: Set[str] = {self.root}
        for src, dsts in self.edges.items():
            names.add(src)
            names.update(dsts)
        return [self.root] + sorted(names - {self.root})

    def context_sizes(self, ctx: str) -> Set[Optional[int]]:
        out: Set[Optional[int]] = set()
        for (_, target), sizes in self.alloc_sizes.items():
            if target == ctx:
                out.update(sizes)
        return out

    def covers(self, chain: Iterable[str], size: int) -> bool:
        """Is the dynamic ``(chain, size)`` site feasible in this DB?

        Chains are cycle-pruned into the key space first; feasibility is
        the edge-by-edge check of :meth:`ProgramGraph.covers`, so it
        remains exact even when :attr:`truncated` is set.
        """
        pruned = prune_recursive_cycles(tuple(chain))
        if not pruned or pruned[0] != self.root:
            return False
        for src, dst in zip(pruned, pruned[1:]):
            if dst not in self.edges.get(src, ()):
                return False
        sizes = self.context_sizes(pruned[-1])
        if not sizes:
            return False
        return SIZE_WILDCARD in sizes or size in sizes

    def matches_site(self, chain: Tuple[str, ...], size: int) -> bool:
        """Does any enumerated static site match this dynamic site?"""
        for static_chain, static_size in self.sites:
            if static_chain == chain and (
                static_size is None or static_size == size
            ):
                return True
        return False

    def static_chains(self) -> List[Tuple[str, ...]]:
        """Distinct enumerated chains, in site order."""
        seen: Set[Tuple[str, ...]] = set()
        out: List[Tuple[str, ...]] = []
        for chain, _ in self.sites:
            if chain not in seen:
                seen.add(chain)
                out.append(chain)
        return out

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "program": self.program,
            "capture_depth": self.capture_depth,
            "root": self.root,
            "files": list(self.files),
            "contexts": self.contexts(),
            "edges": [
                [src, dst]
                for src in sorted(self.edges)
                for dst in sorted(self.edges[src])
            ],
            "alloc_sizes": [
                {
                    "caller": caller,
                    "context": ctx,
                    "sizes": sorted(
                        self.alloc_sizes[(caller, ctx)], key=_size_sort_key
                    ),
                }
                for caller, ctx in sorted(self.alloc_sizes)
            ],
            "sites": [
                {"chain": list(chain), "size": size}
                for chain, size in self.sites
            ],
            "truncated": self.truncated,
            "unresolved_calls": self.unresolved_calls,
            "cce": {
                "key_bits": KEY_BITS,
                "collision_groups": self.collisions,
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def save(self, path: Path) -> None:
        Path(path).write_text(self.to_json(), encoding="utf-8")

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "StaticSiteDB":
        if not isinstance(data, dict) or data.get("format") != FORMAT_NAME:
            raise StaticDBFormatError(
                f"not a {FORMAT_NAME} database (format="
                f"{data.get('format') if isinstance(data, dict) else data!r})"
            )
        if data.get("version") != FORMAT_VERSION:
            raise StaticDBFormatError(
                f"unsupported {FORMAT_NAME} version {data.get('version')!r}"
            )
        try:
            edges: Dict[str, Set[str]] = {}
            for src, dst in data["edges"]:
                edges.setdefault(src, set()).add(dst)
            alloc_sizes: Dict[Tuple[str, str], Set[Optional[int]]] = {}
            for entry in data["alloc_sizes"]:
                alloc_sizes[(entry["caller"], entry["context"])] = set(
                    entry["sizes"]
                )
            sites = [
                (tuple(site["chain"]), site["size"])
                for site in data["sites"]
            ]
            return cls(
                program=data["program"],
                capture_depth=data["capture_depth"],
                root=data["root"],
                files=tuple(data["files"]),
                edges=edges,
                alloc_sizes=alloc_sizes,
                sites=sites,
                truncated=bool(data["truncated"]),
                unresolved_calls=int(data.get("unresolved_calls", 0)),
                collisions=list(data.get("cce", {}).get(
                    "collision_groups", []
                )),
            )
        except (KeyError, TypeError) as exc:
            raise StaticDBFormatError(
                f"malformed {FORMAT_NAME} database: {exc}"
            ) from exc

    @classmethod
    def load(cls, path: Path) -> "StaticSiteDB":
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise StaticDBFormatError(f"{path}: invalid JSON: {exc}") from exc
        return cls.from_dict(data)


def _collision_groups(
    chains: Iterable[Tuple[str, ...]]
) -> List[Dict[str, object]]:
    """Chains grouped by CCE key, keeping only the colliding groups."""
    buckets: Dict[int, List[Tuple[str, ...]]] = {}
    for chain in chains:
        buckets.setdefault(encrypt_chain(chain), []).append(chain)
    groups = []
    for key in sorted(buckets):
        group = sorted(set(buckets[key]))
        if len(group) > 1:
            groups.append({
                "key": key,
                "chains": [list(chain) for chain in group],
            })
    return groups


def build_static_db(
    program: str,
    source_root: Optional[Path] = None,
    max_sites: int = DEFAULT_MAX_SITES,
) -> StaticSiteDB:
    """Run the static analysis for ``program`` and package the result."""
    graph: ProgramGraph = build_program_graph(program, source_root)
    sites, truncated = graph.enumerate_sites(max_sites=max_sites)
    sites = sorted(
        sites, key=lambda item: (item[0], _size_sort_key(item[1]))
    )
    db = StaticSiteDB(
        program=program,
        capture_depth=CAPTURE_DEPTH,
        root=ROOT_CONTEXT,
        files=graph.files,
        edges=graph.edges,
        alloc_sizes=graph.alloc_sizes,
        sites=sites,
        truncated=truncated,
        unresolved_calls=len(graph.unresolved),
    )
    db.collisions = _collision_groups(db.static_chains())
    return db
