"""Static allocation-site analysis and contract linting.

The dynamic half of the reproduction discovers allocation sites by
running the workloads; this package recovers the same ``(chain, size)``
site abstraction *from source* and uses it two ways:

* :mod:`repro.static.astwalk` / :mod:`repro.static.callgraph` /
  :mod:`repro.static.sitedb` — the static site extractor: a bounded
  call-graph projection of each workload onto its traced function
  names, emitting a deterministic site database in the key space of
  :mod:`repro.core.sites`;
* :mod:`repro.static.audit` — trace-drift auditing: diffs static sites
  against a trace store or a saved predictor database (dead sites gate,
  unexercised sites inform, CCE collisions are cross-checked);
* :mod:`repro.static.lint` / :mod:`repro.static.reporters` — alloclint,
  the repo-contract rule engine (R001–R004) with text/JSON/SARIF
  output.

Both halves surface through the ``repro lint`` and ``repro audit-sites``
CLI subcommands; see DESIGN.md §9 for the rule catalogue.
"""

from repro.static.audit import AuditError, SiteAudit, audit_predictor_file, audit_trace
from repro.static.callgraph import (
    ProgramGraph,
    StaticAnalysisError,
    build_program_graph,
)
from repro.static.lint import (
    Finding,
    LintConfig,
    LintResult,
    lint_paths,
    lint_source,
)
from repro.static.sitedb import StaticDBFormatError, StaticSiteDB, build_static_db

__all__ = [
    "AuditError",
    "SiteAudit",
    "audit_predictor_file",
    "audit_trace",
    "ProgramGraph",
    "StaticAnalysisError",
    "build_program_graph",
    "Finding",
    "LintConfig",
    "LintResult",
    "lint_paths",
    "lint_source",
    "StaticDBFormatError",
    "StaticSiteDB",
    "build_static_db",
]
