"""Trace-drift auditing: static sites vs. dynamic reality.

The repo's dynamic artifacts — cached traces, saved predictor databases,
the committed bench baseline — are all keyed on allocation sites.  When
workload source changes, those artifacts silently keep referring to
chains that no longer exist.  This module diffs them against the static
site database of the *current* source and classifies the differences:

* **dead sites** — dynamic/stored sites that are statically infeasible
  in today's source.  This is drift (stale cache, stale DB, or an
  analyzer soundness bug) and gates the audit: any dead site fails it.
* **unexercised sites** — statically feasible sites never observed
  dynamically.  Expected at small scale and from the analyzer's
  deliberate over-approximation of dynamic dispatch; informational.
* **collision cross-check** — CCE key collisions observed among the
  dynamic chains (:func:`repro.core.cce.collision_report`) are verified
  against the statically predicted collision groups; a dynamically
  colliding chain the static enumeration never produced is counted as
  *unverified* (possible only under enumeration truncation or drift).

Predictor databases saved at a sub-chain length (``chain_length=N``)
store the last ``N`` raw callers rather than rooted pruned chains, so
they are audited by *suffix feasibility*: every adjacent pair must be a
projected edge and the innermost context must allocate the stored size
(sizes compared under the database's rounding).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.cce import collision_report, encrypt_chain
from repro.core.predictor import SitePredictor
from repro.core.sites import prune_recursive_cycles, round_size
from repro.core.database import load_predictor
from repro.runtime.events import Trace
from repro.static.callgraph import SIZE_WILDCARD
from repro.static.sitedb import StaticSiteDB

__all__ = ["SiteAudit", "AuditError", "audit_trace", "audit_predictor_file"]


class AuditError(Exception):
    """Raised when an audit cannot be performed at all (bad inputs)."""


@dataclass
class SiteAudit:
    """The outcome of auditing one dynamic source against one static DB."""

    program: str
    source: str
    static_sites: int
    static_contexts: int
    truncated: bool
    unresolved_calls: int
    dynamic_sites: int
    dead: List[Dict[str, object]] = field(default_factory=list)
    unexercised: List[Dict[str, object]] = field(default_factory=list)
    dynamic_collisions: Dict[str, object] = field(default_factory=dict)
    static_collision_groups: int = 0
    unverified_collisions: int = 0

    @property
    def ok(self) -> bool:
        """Audits gate on drift only: dead sites fail, noise does not."""
        return not self.dead

    def to_dict(self) -> Dict[str, object]:
        return {
            "program": self.program,
            "source": self.source,
            "static": {
                "sites": self.static_sites,
                "contexts": self.static_contexts,
                "truncated": self.truncated,
                "unresolved_calls": self.unresolved_calls,
                "collision_groups": self.static_collision_groups,
            },
            "dynamic": {
                "sites": self.dynamic_sites,
                "collisions": self.dynamic_collisions,
            },
            "dead_sites": self.dead,
            "unexercised_sites": self.unexercised,
            "unverified_collisions": self.unverified_collisions,
            "ok": self.ok,
        }


def _chain_size_sort_key(
    entry: Tuple[Tuple[str, ...], Optional[int]]
) -> Tuple[Tuple[str, ...], int, int]:
    chain, size = entry
    return (chain, 0 if size is None else 1, size or 0)


def _base_audit(db: StaticSiteDB, source: str) -> SiteAudit:
    return SiteAudit(
        program=db.program,
        source=source,
        static_sites=len(db.sites),
        static_contexts=len(db.contexts()),
        truncated=db.truncated,
        unresolved_calls=db.unresolved_calls,
        dynamic_sites=0,
        static_collision_groups=len(db.collisions),
    )


def audit_trace(db: StaticSiteDB, trace: Trace, source: str) -> SiteAudit:
    """Audit a dynamic trace against the static database."""
    audit = _base_audit(db, source)
    counts: Dict[Tuple[Tuple[str, ...], int], int] = {}
    for obj_id in range(trace.total_objects):
        key = (
            prune_recursive_cycles(trace.chain_of(obj_id)),
            trace.size_of(obj_id),
        )
        counts[key] = counts.get(key, 0) + 1
    audit.dynamic_sites = len(counts)

    dyn_by_chain: Dict[Tuple[str, ...], set] = {}
    for chain, size in counts:
        dyn_by_chain.setdefault(chain, set()).add(size)

    audit.dead = [
        {"chain": list(chain), "size": size, "objects": counts[(chain, size)]}
        for chain, size in sorted(counts, key=_chain_size_sort_key)
        if not db.covers(chain, size)
    ]
    audit.unexercised = [
        {"chain": list(chain), "size": size}
        for chain, size in db.sites
        if chain not in dyn_by_chain
        or (size is not None and size not in dyn_by_chain[chain])
    ]

    report = collision_report(dyn_by_chain)
    audit.dynamic_collisions = {
        "chains": report.chains,
        "distinct_keys": report.distinct_keys,
        "colliding_chains": report.colliding_chains,
        "worst_bucket": report.worst_bucket,
        "collision_rate": report.collision_rate,
    }
    static_chains = set(db.static_chains())
    buckets: Dict[int, List[Tuple[str, ...]]] = {}
    for chain in dyn_by_chain:
        buckets.setdefault(encrypt_chain(chain), []).append(chain)
    unverified = 0
    for group in buckets.values():
        if len(group) > 1:
            unverified += sum(
                1 for chain in group if chain not in static_chains
            )
    audit.unverified_collisions = unverified
    return audit


def _covers_subchain(
    db: StaticSiteDB, chain: Tuple[str, ...], size: int, size_rounding: int
) -> bool:
    """Suffix feasibility for length-N predictor keys (see module doc)."""
    if not chain:
        return False
    contexts = set(db.contexts())
    if chain[0] not in contexts:
        return False
    for src, dst in zip(chain, chain[1:]):
        if dst not in db.edges.get(src, ()):
            return False
    sizes = db.context_sizes(chain[-1])
    if not sizes:
        return False
    if SIZE_WILDCARD in sizes or size in sizes:
        return True
    return any(
        s is not None and round_size(s, size_rounding) == size for s in sizes
    )


def _covers_rounded(
    db: StaticSiteDB, chain: Tuple[str, ...], size: int, size_rounding: int
) -> bool:
    if db.covers(chain, size):
        return True
    if size_rounding <= 1:
        return False
    sizes = db.context_sizes(chain[-1]) if chain else set()
    return any(
        s is not None and round_size(s, size_rounding) == size for s in sizes
    )


def audit_predictor_file(db: StaticSiteDB, path: str) -> SiteAudit:
    """Audit a saved predictor database (``core.database``) at ``path``.

    Only ``kind="site"`` databases carry chains; auditing a CCE or
    size-only database raises :class:`AuditError`.
    """
    predictor = load_predictor(path)
    if not isinstance(predictor, SitePredictor):
        raise AuditError(
            f"{path}: only site-kind predictor databases carry call chains "
            f"(got {type(predictor).__name__})"
        )
    if predictor.program not in ("?", db.program):
        raise AuditError(
            f"{path}: predictor is for program {predictor.program!r}, "
            f"static DB is for {db.program!r}"
        )
    audit = _base_audit(db, f"sites-db:{path}")
    audit.dynamic_sites = len(predictor.sites)
    rounding = predictor.size_rounding
    full = predictor.chain_length is None
    dead = []
    for chain, size in sorted(predictor.sites, key=_chain_size_sort_key):
        feasible = (
            _covers_rounded(db, chain, size, rounding)
            if full
            else _covers_subchain(db, chain, size, rounding)
        )
        if not feasible:
            dead.append({"chain": list(chain), "size": size, "objects": None})
    audit.dead = dead
    chains = sorted({chain for chain, _ in predictor.sites})
    report = collision_report(chains)
    audit.dynamic_collisions = {
        "chains": report.chains,
        "distinct_keys": report.distinct_keys,
        "colliding_chains": report.colliding_chains,
        "worst_bucket": report.worst_bucket,
        "collision_rate": report.collision_rate,
    }
    return audit
