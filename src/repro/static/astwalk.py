"""AST indexing for the static allocation-site analyzer.

The dynamic runtime (:mod:`repro.runtime.heap`) defines what an
allocation-site chain *is*: the stack of :func:`~repro.runtime.heap.traced`
function names (plus explicit :meth:`TracedHeap.frame` pushes) above a
``malloc``.  This module recovers the raw material for that abstraction
from source, without importing or executing any workload code:

* every function-like unit — ``def``, method, ``lambda``, nested ``def``,
  and each ``with heap.frame("name")`` block (modelled as a child unit
  that pushes its frame name) — becomes a :class:`FuncUnit`;
* every call inside a unit becomes a :class:`CallSite` classified by how
  its callee is written (plain name, attribute, or dynamic — subscripted
  operator tables, called parameters);
* every ``*.malloc(size)`` / ``*.realloc(obj, size)`` becomes an
  :class:`AllocSite` carrying the size expression for later constant
  folding;
* function references that *escape* without being called (bound methods
  stored in dispatch dicts, allocator callbacks like perl's
  ``self.xalloc``, lambdas passed as arguments) are recorded so the call
  graph can over-approximate indirect dispatch.

Everything here is per-module and syntactic; cross-module name
resolution, constant folding, and the traced-call-graph projection live
in :mod:`repro.static.callgraph`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "AllocSite",
    "CallSite",
    "FuncUnit",
    "ModuleIndex",
    "index_module",
    "TRACED_DECORATOR",
    "ALLOC_METHODS",
]

#: The decorator that pushes a function's name onto the traced call chain.
TRACED_DECORATOR = "traced"

#: Heap methods that record an allocation event: method name -> index of
#: the size argument in the call's positional arguments.
ALLOC_METHODS = {"malloc": 0, "realloc": 1}


@dataclass(frozen=True)
class AllocSite:
    """One syntactic ``malloc``/``realloc`` call.

    ``size_expr`` is the argument AST (folded later); ``line``/``col``
    locate the call for lint findings and audit reports.
    """

    kind: str
    size_expr: Optional[ast.expr]
    line: int
    col: int


@dataclass(frozen=True)
class CallSite:
    """One syntactic call, classified by callee shape.

    ``kind`` is ``"name"`` (``foo(...)``), ``"attr"`` (``x.foo(...)``,
    with ``base`` the receiver's name when it is a simple name), or
    ``"dynamic"`` (anything else: ``table[key](...)``, calls on call
    results, called parameters).  ``callable_args`` are names/unit ids of
    function references passed as arguments — the receiver may invoke
    them, so the graph adds caller->argument edges.  ``arg_exprs`` keeps
    the positional argument ASTs for interprocedural size folding.
    """

    kind: str
    name: str
    base: Optional[str]
    callable_args: Tuple[str, ...]
    line: int
    arg_exprs: Tuple[ast.expr, ...] = ()


@dataclass
class FuncUnit:
    """A function-like unit: def, method, lambda, or frame block."""

    unit_id: str
    name: str
    module: str
    cls: Optional[str]
    traced: bool
    is_frame: bool
    line: int
    #: Positional parameter names, in order (``self``/``cls`` included for
    #: methods — the call-graph layer aligns arguments accordingly).
    params: Tuple[str, ...] = ()
    calls: List[CallSite] = field(default_factory=list)
    allocs: List[AllocSite] = field(default_factory=list)
    escapes: List[str] = field(default_factory=list)
    children: List[str] = field(default_factory=list)


@dataclass
class ModuleIndex:
    """Everything the call-graph layer needs to know about one module."""

    path: str
    units: Dict[str, FuncUnit] = field(default_factory=dict)
    #: Module-level ``NAME = <expr>`` assignments, for constant folding.
    const_exprs: Dict[str, ast.expr] = field(default_factory=dict)
    #: ``from X import name [as alias]``: alias -> (module, original name).
    import_from: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    #: ``import X [as alias]``: alias -> module.  Calls through these are
    #: stdlib/no-op for chain purposes.
    import_module: Dict[str, str] = field(default_factory=dict)
    #: class name -> {method name -> unit id}
    classes: Dict[str, Dict[str, str]] = field(default_factory=dict)
    #: class name -> string value of a class-level ``name = "..."`` attr
    #: (how workload entry classes are recognized).
    class_name_attr: Dict[str, str] = field(default_factory=dict)
    #: class name -> base class names (syntactic).
    class_bases: Dict[str, List[str]] = field(default_factory=dict)


def _decorator_is_traced(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id == TRACED_DECORATOR
    if isinstance(node, ast.Attribute):
        return node.attr == TRACED_DECORATOR
    return False


def _callable_ref_name(node: ast.expr) -> Optional[str]:
    """The bare name of a function reference argument, if it looks like one.

    ``self.xalloc`` -> ``"xalloc"``; ``compile_pattern`` -> its own name.
    Non-reference expressions return ``None``; whether the name really
    denotes a known function is decided at resolution time.
    """
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


class _UnitWalker(ast.NodeVisitor):
    """Collects calls, allocations, and escapes for one :class:`FuncUnit`.

    Nested lambdas/defs and ``with *.frame("x")`` blocks spawn child
    units; the walker does not descend into them itself.
    """

    def __init__(self, indexer: "_ModuleIndexer", unit: FuncUnit):
        self.indexer = indexer
        self.unit = unit

    # -- nested scopes -------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        child = self.indexer.add_function(node, self.unit.cls, parent=self.unit)
        self.unit.escapes.append(child.unit_id)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Lambda(self, node: ast.Lambda) -> None:
        child = self.indexer.add_lambda(node, self.unit)
        self.unit.escapes.append(child.unit_id)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        # Classes defined inside functions: index their methods as units
        # so name resolution still sees them; rare, but cheap.
        self.indexer.add_class(node)

    # -- frame blocks --------------------------------------------------

    def visit_With(self, node: ast.With) -> None:
        frame_names: List[str] = []
        for item in node.items:
            ctx = item.context_expr
            if (
                isinstance(ctx, ast.Call)
                and isinstance(ctx.func, ast.Attribute)
                and ctx.func.attr == "frame"
                and ctx.args
                and isinstance(ctx.args[0], ast.Constant)
                and isinstance(ctx.args[0].value, str)
            ):
                frame_names.append(ctx.args[0].value)
            else:
                self.visit(ctx)
        if not frame_names:
            for stmt in node.body:
                self.visit(stmt)
            return
        # Innermost frame owns the body; outer frames nest around it.
        owner = self.unit
        for frame_name in frame_names:
            child = self.indexer.add_frame(frame_name, owner, node.lineno)
            owner = child
        walker = _UnitWalker(self.indexer, owner)
        for stmt in node.body:
            walker.visit(stmt)

    # -- calls and allocations ----------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        callable_args: List[str] = []
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(arg, ast.Lambda):
                child = self.indexer.add_lambda(arg, self.unit)
                self.unit.escapes.append(child.unit_id)
                callable_args.append(child.unit_id)
            else:
                ref = _callable_ref_name(arg)
                if ref is not None:
                    callable_args.append(ref)

        if isinstance(func, ast.Attribute) and func.attr in ALLOC_METHODS:
            size_index = ALLOC_METHODS[func.attr]
            size_expr = (
                node.args[size_index] if len(node.args) > size_index else None
            )
            self.unit.allocs.append(
                AllocSite(
                    kind=func.attr,
                    size_expr=size_expr,
                    line=node.lineno,
                    col=node.col_offset,
                )
            )
            self.visit(func.value)
        elif isinstance(func, ast.Name):
            self.unit.calls.append(
                CallSite(
                    kind="name",
                    name=func.id,
                    base=None,
                    callable_args=tuple(callable_args),
                    line=node.lineno,
                    arg_exprs=tuple(node.args),
                )
            )
        elif isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name):
                base = func.value.id
            elif (
                isinstance(func.value, ast.Call)
                and isinstance(func.value.func, ast.Name)
                and func.value.func.id == "super"
            ):
                base = "super"
            else:
                base = None
            self.unit.calls.append(
                CallSite(
                    kind="attr",
                    name=func.attr,
                    base=base,
                    callable_args=tuple(callable_args),
                    line=node.lineno,
                    arg_exprs=tuple(node.args),
                )
            )
            self.visit(func.value)
        else:
            self.unit.calls.append(
                CallSite(
                    kind="dynamic",
                    name="",
                    base=None,
                    callable_args=tuple(callable_args),
                    line=node.lineno,
                )
            )
            self.visit(func)
        # Arguments may contain nested calls/lambdas of their own; the
        # lambdas already created above are deduplicated by the indexer.
        for arg in node.args:
            if not isinstance(arg, ast.Lambda):
                self.visit(arg)
        for kw in node.keywords:
            if not isinstance(kw.value, ast.Lambda):
                self.visit(kw.value)

    # -- escaping references -------------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load):
            self.unit.escapes.append(node.attr)
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.unit.escapes.append(node.id)


class _ModuleIndexer:
    """Builds a :class:`ModuleIndex` from one parsed module."""

    def __init__(self, path: str, tree: ast.Module):
        self.index = ModuleIndex(path=path)
        self._tree = tree
        self._frame_seq = 0

    def run(self) -> ModuleIndex:
        for node in self._tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.add_function(node, cls=None, parent=None)
            elif isinstance(node, ast.ClassDef):
                self.add_class(node)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    self.index.const_exprs[target.id] = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    self.index.const_exprs[node.target.id] = node.value
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.index.import_from[local] = (node.module, alias.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self.index.import_module[local] = alias.name
        return self.index

    # -- unit constructors --------------------------------------------

    def _register(self, unit: FuncUnit) -> FuncUnit:
        self.index.units[unit.unit_id] = unit
        return unit

    def add_function(
        self,
        node: ast.FunctionDef,
        cls: Optional[str],
        parent: Optional[FuncUnit],
    ) -> FuncUnit:
        qual = f"{cls}.{node.name}" if cls else node.name
        unit_id = f"{self.index.path}::{qual}@{node.lineno}"
        if unit_id in self.index.units:
            return self.index.units[unit_id]
        traced = any(_decorator_is_traced(dec) for dec in node.decorator_list)
        params = tuple(
            a.arg for a in node.args.posonlyargs + node.args.args
        )
        unit = self._register(
            FuncUnit(
                unit_id=unit_id,
                name=node.name,
                module=self.index.path,
                cls=cls,
                traced=traced,
                is_frame=False,
                line=node.lineno,
                params=params,
            )
        )
        if parent is not None:
            parent.children.append(unit_id)
        walker = _UnitWalker(self, unit)
        for stmt in node.body:
            walker.visit(stmt)
        return unit

    def add_lambda(self, node: ast.Lambda, parent: FuncUnit) -> FuncUnit:
        unit_id = (
            f"{self.index.path}::<lambda>@{node.lineno}:{node.col_offset}"
        )
        if unit_id in self.index.units:
            return self.index.units[unit_id]
        params = tuple(
            a.arg for a in node.args.posonlyargs + node.args.args
        )
        unit = self._register(
            FuncUnit(
                unit_id=unit_id,
                name="<lambda>",
                module=self.index.path,
                cls=parent.cls,
                traced=False,
                is_frame=False,
                line=node.lineno,
                params=params,
            )
        )
        parent.children.append(unit_id)
        _UnitWalker(self, unit).visit(node.body)
        return unit

    def add_frame(
        self, frame_name: str, parent: FuncUnit, line: int
    ) -> FuncUnit:
        self._frame_seq += 1
        unit_id = f"{self.index.path}::<frame:{frame_name}>@{line}#{self._frame_seq}"
        unit = self._register(
            FuncUnit(
                unit_id=unit_id,
                name=frame_name,
                module=self.index.path,
                cls=parent.cls,
                traced=True,
                is_frame=True,
                line=line,
            )
        )
        parent.children.append(unit_id)
        # The frame push is modelled as a call from the parent into the
        # frame unit, so chains gain the frame name exactly where the
        # runtime would push it.
        parent.calls.append(
            CallSite(
                kind="frame", name=unit_id, base=None,
                callable_args=(), line=line,
            )
        )
        return unit

    def add_class(self, node: ast.ClassDef) -> None:
        methods: Dict[str, str] = {}
        bases = [
            base.id if isinstance(base, ast.Name) else
            base.attr if isinstance(base, ast.Attribute) else "?"
            for base in node.bases
        ]
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                unit = self.add_function(item, cls=node.name, parent=None)
                methods[item.name] = unit.unit_id
            elif isinstance(item, ast.Assign) and len(item.targets) == 1:
                target = item.targets[0]
                if (
                    isinstance(target, ast.Name)
                    and target.id == "name"
                    and isinstance(item.value, ast.Constant)
                    and isinstance(item.value.value, str)
                ):
                    self.index.class_name_attr[node.name] = item.value.value
        self.index.classes[node.name] = methods
        self.index.class_bases[node.name] = bases


def index_module(path: str, source: str) -> ModuleIndex:
    """Parse ``source`` and index it under the (relative) ``path`` label.

    Raises :class:`SyntaxError` on unparsable source — callers decide
    whether that is a hard error (lint exit code 2) or a skip.
    """
    tree = ast.parse(source, filename=path)
    return _ModuleIndexer(path, tree).run()
