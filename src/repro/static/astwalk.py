"""AST indexing for the static allocation-site analyzer.

The dynamic runtime (:mod:`repro.runtime.heap`) defines what an
allocation-site chain *is*: the stack of :func:`~repro.runtime.heap.traced`
function names (plus explicit :meth:`TracedHeap.frame` pushes) above a
``malloc``.  This module recovers the raw material for that abstraction
from source, without importing or executing any workload code:

* every function-like unit — ``def``, method, ``lambda``, nested ``def``,
  and each ``with heap.frame("name")`` block (modelled as a child unit
  that pushes its frame name) — becomes a :class:`FuncUnit`;
* every call inside a unit becomes a :class:`CallSite` classified by how
  its callee is written (plain name, attribute, or dynamic — subscripted
  operator tables, called parameters);
* every ``*.malloc(size)`` / ``*.realloc(obj, size)`` becomes an
  :class:`AllocSite` carrying the size expression for later constant
  folding;
* function references that *escape* without being called (bound methods
  stored in dispatch dicts, allocator callbacks like perl's
  ``self.xalloc``, lambdas passed as arguments) are recorded so the call
  graph can over-approximate indirect dispatch;
* name bindings and value flows (returned, stored, freed, passed as an
  argument) are recorded per unit so :mod:`repro.static.escape` can run
  its flow-insensitive lifetime classification without re-walking the
  AST.  Values are referenced positionally: ``("name", id)``,
  ``("alloc", (line, col))``, ``("call", (line, col))``.

Everything here is per-module and syntactic; cross-module name
resolution, constant folding, and the traced-call-graph projection live
in :mod:`repro.static.callgraph`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "AllocSite",
    "CallSite",
    "FuncUnit",
    "ModuleIndex",
    "index_module",
    "TRACED_DECORATOR",
    "ALLOC_METHODS",
]

#: The decorator that pushes a function's name onto the traced call chain.
TRACED_DECORATOR = "traced"

#: Heap methods that record an allocation event: method name -> index of
#: the size argument in the call's positional arguments.
ALLOC_METHODS = {"malloc": 0, "realloc": 1}


@dataclass(frozen=True)
class AllocSite:
    """One syntactic ``malloc``/``realloc`` call.

    ``size_expr`` is the argument AST (folded later); ``line``/``col``
    locate the call for lint findings and audit reports.
    """

    kind: str
    size_expr: Optional[ast.expr]
    line: int
    col: int


@dataclass(frozen=True)
class CallSite:
    """One syntactic call, classified by callee shape.

    ``kind`` is ``"name"`` (``foo(...)``), ``"attr"`` (``x.foo(...)``,
    with ``base`` the receiver's name when it is a simple name), or
    ``"dynamic"`` (anything else: ``table[key](...)``, calls on call
    results, called parameters).  ``callable_args`` are names/unit ids of
    function references passed as arguments — the receiver may invoke
    them, so the graph adds caller->argument edges.  ``arg_exprs`` keeps
    the positional argument ASTs for interprocedural size folding.
    """

    kind: str
    name: str
    base: Optional[str]
    callable_args: Tuple[str, ...]
    line: int
    arg_exprs: Tuple[ast.expr, ...] = ()
    #: Column offset of the call expression.  Together with ``line`` it
    #: identifies the call site for value-flow references; synthetic
    #: frame call sites keep the ``-1`` default.
    col: int = -1


@dataclass
class FuncUnit:
    """A function-like unit: def, method, lambda, or frame block."""

    unit_id: str
    name: str
    module: str
    cls: Optional[str]
    traced: bool
    is_frame: bool
    line: int
    #: Positional parameter names, in order (``self``/``cls`` included for
    #: methods — the call-graph layer aligns arguments accordingly).
    params: Tuple[str, ...] = ()
    calls: List[CallSite] = field(default_factory=list)
    allocs: List[AllocSite] = field(default_factory=list)
    escapes: List[str] = field(default_factory=list)
    children: List[str] = field(default_factory=list)
    #: Name bindings for the escape analysis: ``(name, ref)`` pairs where
    #: ``ref`` is a value reference (see module docstring) bound to a
    #: local name by assignment or unpacking.
    assigns: List[Tuple[str, tuple]] = field(default_factory=list)
    #: Value flows for the escape analysis: ``(ref, kind, aux)`` triples.
    #: ``kind`` is ``"ret"`` (returned), ``"store"`` (written into an
    #: attribute/subscript/container or a global), ``"free"`` (consumed by
    #: ``realloc``), ``"arg"`` (passed to a call; ``aux`` is
    #: ``((line, col), position-or-kwname)``), or ``"unk"`` (flows
    #: somewhere the analysis cannot follow).
    flows: List[tuple] = field(default_factory=list)
    #: Names declared ``global``/``nonlocal`` — assignments through them
    #: make a value reachable from outside the unit.
    global_names: List[str] = field(default_factory=list)


@dataclass
class ModuleIndex:
    """Everything the call-graph layer needs to know about one module."""

    path: str
    units: Dict[str, FuncUnit] = field(default_factory=dict)
    #: Module-level ``NAME = <expr>`` assignments, for constant folding.
    const_exprs: Dict[str, ast.expr] = field(default_factory=dict)
    #: ``from X import name [as alias]``: alias -> (module, original name).
    import_from: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    #: ``import X [as alias]``: alias -> module.  Calls through these are
    #: stdlib/no-op for chain purposes.
    import_module: Dict[str, str] = field(default_factory=dict)
    #: class name -> {method name -> unit id}
    classes: Dict[str, Dict[str, str]] = field(default_factory=dict)
    #: class name -> string value of a class-level ``name = "..."`` attr
    #: (how workload entry classes are recognized).
    class_name_attr: Dict[str, str] = field(default_factory=dict)
    #: class name -> base class names (syntactic).
    class_bases: Dict[str, List[str]] = field(default_factory=dict)


def _decorator_is_traced(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id == TRACED_DECORATOR
    if isinstance(node, ast.Attribute):
        return node.attr == TRACED_DECORATOR
    return False


def _callable_ref_name(node: ast.expr) -> Optional[str]:
    """The bare name of a function reference argument, if it looks like one.

    ``self.xalloc`` -> ``"xalloc"``; ``compile_pattern`` -> its own name.
    Non-reference expressions return ``None``; whether the name really
    denotes a known function is decided at resolution time.
    """
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _value_ref(node: ast.expr) -> Optional[tuple]:
    """A trackable value reference for ``node``, or ``None``.

    References identify the producing construct positionally so the
    escape analysis can connect flows back to allocation and call sites:
    ``("name", id)`` for a plain name load, ``("alloc", (line, col))``
    for a ``malloc``/``realloc`` call, ``("call", (line, col))`` for any
    other call.  Expressions that cannot evaluate to the tracked heap
    reference itself (arithmetic, attribute/subscript reads, constants,
    comprehensions) return ``None`` — they produce fresh values.
    """
    if isinstance(node, ast.Name):
        return ("name", node.id)
    if isinstance(node, ast.Call):
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in ALLOC_METHODS
        ):
            return ("alloc", (node.lineno, node.col_offset))
        return ("call", (node.lineno, node.col_offset))
    if isinstance(node, ast.NamedExpr):
        return _value_ref(node.value)
    return None


class _UnitWalker(ast.NodeVisitor):
    """Collects calls, allocations, and escapes for one :class:`FuncUnit`.

    Nested lambdas/defs and ``with *.frame("x")`` blocks spawn child
    units; the walker does not descend into them itself.
    """

    def __init__(self, indexer: "_ModuleIndexer", unit: FuncUnit):
        self.indexer = indexer
        self.unit = unit

    # -- nested scopes -------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        child = self.indexer.add_function(node, self.unit.cls, parent=self.unit)
        self.unit.escapes.append(child.unit_id)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Lambda(self, node: ast.Lambda) -> None:
        child = self.indexer.add_lambda(node, self.unit)
        self.unit.escapes.append(child.unit_id)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        # Classes defined inside functions: index their methods as units
        # so name resolution still sees them; rare, but cheap.
        self.indexer.add_class(node)

    # -- frame blocks --------------------------------------------------

    def visit_With(self, node: ast.With) -> None:
        frame_names: List[str] = []
        for item in node.items:
            ctx = item.context_expr
            if (
                isinstance(ctx, ast.Call)
                and isinstance(ctx.func, ast.Attribute)
                and ctx.func.attr == "frame"
                and ctx.args
                and isinstance(ctx.args[0], ast.Constant)
                and isinstance(ctx.args[0].value, str)
            ):
                frame_names.append(ctx.args[0].value)
            else:
                self.visit(ctx)
        if not frame_names:
            for stmt in node.body:
                self.visit(stmt)
            return
        # Innermost frame owns the body; outer frames nest around it.
        owner = self.unit
        for frame_name in frame_names:
            child = self.indexer.add_frame(frame_name, owner, node.lineno)
            owner = child
        walker = _UnitWalker(self.indexer, owner)
        for stmt in node.body:
            walker.visit(stmt)

    # -- value flows ---------------------------------------------------

    def _flow(self, ref: tuple, kind: str, aux=None) -> None:
        self.unit.flows.append((ref, kind, aux))

    def _flow_value(self, node: Optional[ast.expr], kind: str) -> None:
        """Record that ``node``'s value flows out of the unit as ``kind``.

        Conditional expressions and ``and``/``or`` chains forward the
        flow to every operand that may be the result.  A returned tuple
        literal is transparent (callers unpack it, so its elements are
        themselves returned); any other container literal keeps its
        elements alive with itself (``store`` when the container is
        being stored, ``unk`` otherwise).
        """
        if node is None:
            return
        ref = _value_ref(node)
        if ref is not None:
            self._flow(ref, kind)
            return
        if isinstance(node, ast.IfExp):
            self._flow_value(node.body, kind)
            self._flow_value(node.orelse, kind)
        elif isinstance(node, ast.BoolOp):
            for operand in node.values:
                self._flow_value(operand, kind)
        elif isinstance(node, ast.Starred):
            self._flow_value(node.value, kind)
        elif isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            if kind == "ret" and isinstance(node, ast.Tuple):
                elt_kind = "ret"
            elif kind == "store":
                elt_kind = "store"
            else:
                elt_kind = "unk"
            for elt in node.elts:
                self._flow_value(elt, elt_kind)

    def _bind(self, target: ast.expr, value: ast.expr) -> None:
        """Record bindings/flows for one assignment ``target = value``."""
        if isinstance(value, ast.IfExp):
            self._bind(target, value.body)
            self._bind(target, value.orelse)
            return
        if isinstance(value, ast.BoolOp):
            for operand in value.values:
                self._bind(target, operand)
            return
        if isinstance(target, ast.Name):
            ref = _value_ref(value)
            if ref is None:
                self._flow_value(value, "store")
            elif target.id in self.unit.global_names:
                self._flow(ref, "store")
            else:
                self.unit.assigns.append((target.id, ref))
        elif isinstance(target, (ast.Tuple, ast.List)):
            if isinstance(value, ast.Tuple) and len(value.elts) == len(
                target.elts
            ):
                for t, v in zip(target.elts, value.elts):
                    self._bind(t, v)
                return
            ref = _value_ref(value)
            if ref is None:
                self._flow_value(value, "unk")
                return
            for elt in target.elts:
                inner = elt.value if isinstance(elt, ast.Starred) else elt
                if isinstance(inner, ast.Name):
                    if inner.id in self.unit.global_names:
                        self._flow(ref, "store")
                    else:
                        self.unit.assigns.append((inner.id, ref))
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            base = target.value
            ref = _value_ref(value)
            if ref is not None and isinstance(base, ast.Name):
                # Keep the receiver's name: storing into a field of a
                # known object (``self.handle = handle``) is a different
                # fate than storing into an arbitrary structure.
                self._flow(ref, "store", base.id)
            else:
                self._flow_value(value, "store")

    def _arg_flow(self, arg: ast.expr, key: tuple, slot) -> None:
        if isinstance(arg, ast.Starred):
            self._flow_value(arg.value, "unk")
            return
        if isinstance(arg, ast.IfExp):
            self._arg_flow(arg.body, key, slot)
            self._arg_flow(arg.orelse, key, slot)
            return
        if isinstance(arg, ast.BoolOp):
            for operand in arg.values:
                self._arg_flow(operand, key, slot)
            return
        ref = _value_ref(arg)
        if ref is not None:
            self._flow(ref, "arg", (key, slot))
        elif isinstance(arg, ast.Attribute) and isinstance(
            arg.value, ast.Name
        ):
            # ``f(x.field)`` passes a piece of ``x``: record a field
            # argument flow on ``x`` so a callee that frees the field
            # (``heap.free(cell.node)``) is visible to x's summary.
            self._flow(("name", arg.value.id), "argf", (key, slot))
        elif isinstance(arg, (ast.Tuple, ast.List, ast.Set)):
            self._flow_value(arg, "unk")

    def _record_arg_flows(self, node: ast.Call) -> None:
        key = (node.lineno, node.col_offset)
        for pos, arg in enumerate(node.args):
            self._arg_flow(arg, key, pos)
        for kw in node.keywords:
            self._arg_flow(kw.value, key, kw.arg)

    # -- statements that bind or leak values ---------------------------
    # Each visitor reproduces generic_visit's child traversal order
    # exactly, so the calls/escapes the golden site DB depends on are
    # recorded in the same sequence as before.

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self.visit(target)
        for target in node.targets:
            self._bind(target, node.value)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.visit(node.target)
        if node.annotation is not None:
            self.visit(node.annotation)
        if node.value is not None:
            self._bind(node.target, node.value)
            self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.visit(node.target)
        self._flow_value(node.value, "store")
        self.visit(node.value)

    def visit_NamedExpr(self, node: ast.NamedExpr) -> None:
        self.visit(node.target)
        self._bind(node.target, node.value)
        self.visit(node.value)

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None:
            self._flow_value(node.value, "ret")
            self.visit(node.value)

    def visit_Yield(self, node: ast.Yield) -> None:
        if node.value is not None:
            self._flow_value(node.value, "unk")
            self.visit(node.value)

    def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
        self._flow_value(node.value, "unk")
        self.visit(node.value)

    def visit_Global(self, node: ast.Global) -> None:
        self.unit.global_names.extend(node.names)

    visit_Nonlocal = visit_Global  # type: ignore[assignment]

    # -- calls and allocations ----------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        callable_args: List[str] = []
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(arg, ast.Lambda):
                child = self.indexer.add_lambda(arg, self.unit)
                self.unit.escapes.append(child.unit_id)
                callable_args.append(child.unit_id)
            else:
                ref = _callable_ref_name(arg)
                if ref is not None:
                    callable_args.append(ref)

        if isinstance(func, ast.Attribute) and func.attr in ALLOC_METHODS:
            size_index = ALLOC_METHODS[func.attr]
            size_expr = (
                node.args[size_index] if len(node.args) > size_index else None
            )
            self.unit.allocs.append(
                AllocSite(
                    kind=func.attr,
                    size_expr=size_expr,
                    line=node.lineno,
                    col=node.col_offset,
                )
            )
            if func.attr == "realloc" and node.args:
                old = _value_ref(node.args[0])
                if old is not None:
                    self._flow(old, "free")
            for pos, arg in enumerate(node.args):
                if pos == size_index or (func.attr == "realloc" and pos == 0):
                    continue
                self._flow_value(arg, "store")
            for kw in node.keywords:
                self._flow_value(kw.value, "store")
            self.visit(func.value)
        elif isinstance(func, ast.Name):
            self.unit.calls.append(
                CallSite(
                    kind="name",
                    name=func.id,
                    base=None,
                    callable_args=tuple(callable_args),
                    line=node.lineno,
                    arg_exprs=tuple(node.args),
                    col=node.col_offset,
                )
            )
            self._record_arg_flows(node)
        elif isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name):
                base = func.value.id
            elif (
                isinstance(func.value, ast.Call)
                and isinstance(func.value.func, ast.Name)
                and func.value.func.id == "super"
            ):
                base = "super"
            else:
                base = None
            self.unit.calls.append(
                CallSite(
                    kind="attr",
                    name=func.attr,
                    base=base,
                    callable_args=tuple(callable_args),
                    line=node.lineno,
                    arg_exprs=tuple(node.args),
                    col=node.col_offset,
                )
            )
            self._record_arg_flows(node)
            self.visit(func.value)
        else:
            self.unit.calls.append(
                CallSite(
                    kind="dynamic",
                    name="",
                    base=None,
                    callable_args=tuple(callable_args),
                    line=node.lineno,
                    col=node.col_offset,
                )
            )
            self._record_arg_flows(node)
            self.visit(func)
        # Arguments may contain nested calls/lambdas of their own; the
        # lambdas already created above are deduplicated by the indexer.
        for arg in node.args:
            if not isinstance(arg, ast.Lambda):
                self.visit(arg)
        for kw in node.keywords:
            if not isinstance(kw.value, ast.Lambda):
                self.visit(kw.value)

    # -- escaping references -------------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load):
            self.unit.escapes.append(node.attr)
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.unit.escapes.append(node.id)


class _ModuleIndexer:
    """Builds a :class:`ModuleIndex` from one parsed module."""

    def __init__(self, path: str, tree: ast.Module):
        self.index = ModuleIndex(path=path)
        self._tree = tree
        self._frame_seq = 0

    def run(self) -> ModuleIndex:
        for node in self._tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.add_function(node, cls=None, parent=None)
            elif isinstance(node, ast.ClassDef):
                self.add_class(node)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    self.index.const_exprs[target.id] = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    self.index.const_exprs[node.target.id] = node.value
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.index.import_from[local] = (node.module, alias.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self.index.import_module[local] = alias.name
        return self.index

    # -- unit constructors --------------------------------------------

    def _register(self, unit: FuncUnit) -> FuncUnit:
        self.index.units[unit.unit_id] = unit
        return unit

    def add_function(
        self,
        node: ast.FunctionDef,
        cls: Optional[str],
        parent: Optional[FuncUnit],
    ) -> FuncUnit:
        qual = f"{cls}.{node.name}" if cls else node.name
        unit_id = f"{self.index.path}::{qual}@{node.lineno}"
        if unit_id in self.index.units:
            return self.index.units[unit_id]
        traced = any(_decorator_is_traced(dec) for dec in node.decorator_list)
        params = tuple(
            a.arg for a in node.args.posonlyargs + node.args.args
        )
        unit = self._register(
            FuncUnit(
                unit_id=unit_id,
                name=node.name,
                module=self.index.path,
                cls=cls,
                traced=traced,
                is_frame=False,
                line=node.lineno,
                params=params,
            )
        )
        if parent is not None:
            parent.children.append(unit_id)
        walker = _UnitWalker(self, unit)
        for stmt in node.body:
            walker.visit(stmt)
        return unit

    def add_lambda(self, node: ast.Lambda, parent: FuncUnit) -> FuncUnit:
        unit_id = (
            f"{self.index.path}::<lambda>@{node.lineno}:{node.col_offset}"
        )
        if unit_id in self.index.units:
            return self.index.units[unit_id]
        params = tuple(
            a.arg for a in node.args.posonlyargs + node.args.args
        )
        unit = self._register(
            FuncUnit(
                unit_id=unit_id,
                name="<lambda>",
                module=self.index.path,
                cls=parent.cls,
                traced=False,
                is_frame=False,
                line=node.lineno,
                params=params,
            )
        )
        parent.children.append(unit_id)
        _UnitWalker(self, unit).visit(node.body)
        return unit

    def add_frame(
        self, frame_name: str, parent: FuncUnit, line: int
    ) -> FuncUnit:
        self._frame_seq += 1
        unit_id = f"{self.index.path}::<frame:{frame_name}>@{line}#{self._frame_seq}"
        unit = self._register(
            FuncUnit(
                unit_id=unit_id,
                name=frame_name,
                module=self.index.path,
                cls=parent.cls,
                traced=True,
                is_frame=True,
                line=line,
            )
        )
        parent.children.append(unit_id)
        # The frame push is modelled as a call from the parent into the
        # frame unit, so chains gain the frame name exactly where the
        # runtime would push it.
        parent.calls.append(
            CallSite(
                kind="frame", name=unit_id, base=None,
                callable_args=(), line=line,
            )
        )
        return unit

    def add_class(self, node: ast.ClassDef) -> None:
        methods: Dict[str, str] = {}
        bases = [
            base.id if isinstance(base, ast.Name) else
            base.attr if isinstance(base, ast.Attribute) else "?"
            for base in node.bases
        ]
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                unit = self.add_function(item, cls=node.name, parent=None)
                methods[item.name] = unit.unit_id
            elif isinstance(item, ast.Assign) and len(item.targets) == 1:
                target = item.targets[0]
                if (
                    isinstance(target, ast.Name)
                    and target.id == "name"
                    and isinstance(item.value, ast.Constant)
                    and isinstance(item.value.value, str)
                ):
                    self.index.class_name_attr[node.name] = item.value.value
        self.index.classes[node.name] = methods
        self.index.class_bases[node.name] = bases


def index_module(path: str, source: str) -> ModuleIndex:
    """Parse ``source`` and index it under the (relative) ``path`` label.

    Raises :class:`SyntaxError` on unparsable source — callers decide
    whether that is a hard error (lint exit code 2) or a skip.
    """
    tree = ast.parse(source, filename=path)
    return _ModuleIndexer(path, tree).run()
